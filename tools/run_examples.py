#!/usr/bin/env python
"""Smoke-run every script in ``examples/`` so documented examples cannot rot.

Two stages, mirroring what a reader would do:

1. **compile** — byte-compile every ``examples/*.py`` (catches syntax rot
   and Python-version drift instantly);
2. **run** — execute each script as a subprocess with
   ``REPRO_EXAMPLES_SMOKE=1`` set, which the heavier examples read to shrink
   their parameters (smaller pools, fewer generations/restarts, one mesh) so
   the whole sweep finishes in about a minute.  A non-zero exit, a crash or
   a per-script timeout fails the gate.

CI runs this as the ``examples`` job; locally::

    python tools/run_examples.py            # smoke parameters
    python tools/run_examples.py --full     # the examples' real parameters
    python tools/run_examples.py quickstart # only matching scripts

Exits non-zero when any script fails to compile or run.
"""

from __future__ import annotations

import argparse
import os
import py_compile
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Per-script wall-clock budget, generous even for shared CI runners.
TIMEOUT_SECONDS = 600


def main(argv=None) -> int:
    """Compile and smoke-run the example scripts; report pass/fail per script."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "patterns",
        nargs="*",
        help="only run scripts whose filename contains one of these substrings",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run with the examples' real parameters (no smoke shrinking)",
    )
    args = parser.parse_args(argv)

    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    if args.patterns:
        scripts = [
            script
            for script in scripts
            if any(pattern in script.name for pattern in args.patterns)
        ]
    if not scripts:
        print(f"run_examples: no example scripts matched in {EXAMPLES_DIR}")
        return 1

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if not args.full:
        env["REPRO_EXAMPLES_SMOKE"] = "1"

    failures = []
    for script in scripts:
        try:
            py_compile.compile(str(script), doraise=True)
        except py_compile.PyCompileError as error:
            print(f"FAIL  {script.name} (compile)\n{error}")
            failures.append(script.name)
            continue
        start = time.perf_counter()
        try:
            completed = subprocess.run(
                [sys.executable, str(script)],
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                text=True,
                timeout=TIMEOUT_SECONDS,
            )
        except subprocess.TimeoutExpired:
            print(f"FAIL  {script.name} (timeout after {TIMEOUT_SECONDS}s)")
            failures.append(script.name)
            continue
        elapsed = time.perf_counter() - start
        if completed.returncode != 0:
            print(f"FAIL  {script.name} (exit {completed.returncode}, {elapsed:.1f}s)")
            output = (completed.stdout + completed.stderr).strip()
            if output:
                print("\n".join(f"      {line}" for line in output.splitlines()[-25:]))
            failures.append(script.name)
        else:
            print(f"ok    {script.name} ({elapsed:.1f}s)")

    if failures:
        print(f"\nrun_examples: {len(failures)} of {len(scripts)} script(s) failed: "
              f"{', '.join(failures)}")
        return 1
    print(f"\nrun_examples: all {len(scripts)} example script(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
