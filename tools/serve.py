#!/usr/bin/env python
"""Run a resident mapping-service daemon on a Unix socket.

Starts a :class:`~repro.service.daemon.MappingDaemon` (persistent result
store + warm evaluation contexts + worker pool) and serves it over a
Unix-domain socket until interrupted, so sweep scripts in other processes
can submit :class:`~repro.service.daemon.EvalJob`s through
:class:`~repro.service.client.ServiceClient` and share one warm cache.

    PYTHONPATH=src python tools/serve.py --socket /tmp/repro.sock \\
        --store ~/.cache/repro-store --workers 4

Stop with Ctrl-C (or a client's ``shutdown()``); the daemon drains queued
jobs, shuts its worker pool down and leaves the store directory intact for
the next run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import MappingDaemon, ResultStore, SharedArrayBackend  # noqa: E402
from repro.service.client import ServiceServer  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        description="Serve mapping evaluation jobs from a resident daemon."
    )
    parser.add_argument(
        "--socket",
        default="/tmp/repro-service.sock",
        help="Unix socket path to listen on (default: %(default)s).",
    )
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "Directory of the persistent result store; omitted = a "
            "temporary store that dies with the daemon."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "Worker processes for pricing store misses; omitted = price "
            "inline in the daemon."
        ),
    )
    parser.add_argument(
        "--transport",
        choices=SharedArrayBackend.TRANSPORTS,
        default="auto",
        help="Batch transport of the worker pool (default: %(default)s).",
    )
    parser.add_argument(
        "--byte-budget",
        type=int,
        default=None,
        help="Optional store size cap in bytes (oldest entries evicted).",
    )
    parser.add_argument(
        "--max-contexts",
        type=int,
        default=8,
        help="Resident evaluation contexts kept warm (default: %(default)s).",
    )
    return parser


def main(argv=None) -> int:
    """Entry point: build the daemon, bind the socket, serve until stopped."""
    args = build_parser().parse_args(argv)
    store = None
    if args.store is not None:
        store = ResultStore(args.store, byte_budget=args.byte_budget)
    backend = None
    if args.workers is not None:
        backend = SharedArrayBackend(
            n_workers=args.workers, transport=args.transport
        )
    daemon = MappingDaemon(
        store=store, backend=backend, max_contexts=args.max_contexts
    )
    server = ServiceServer(daemon, args.socket)
    print(f"mapping service listening on {args.socket}")
    if store is not None:
        print(f"store: {store.root} ({store.disk_entries()} entries)")
    try:
        while server._running:
            time.sleep(0.2)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        daemon.close()
        if backend is not None:
            backend.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
