#!/usr/bin/env python
"""Plot the per-PR benchmark trajectory from ``BENCH_*.json`` sample files.

The CI ``bench-trajectory`` job (and any local run with
``REPRO_BENCH_RECORD=1``) appends one JSON object per bench run to
``BENCH_<name>.json``; this tool turns each of those files into **one
figure** — a grid of small multiples, one panel per numeric metric (never a
dual-axis chart), sample index on the x-axis — so a perf regression shows up
as a visible step in the trajectory.

Zero hard dependencies: with matplotlib installed each figure is written to
``PLOT_<name>.png``; without it the tool falls back to an ASCII rendering of
the same panels (sparkline + first/min/max/last), so the trajectory stays
readable in CI logs and dependency-free containers.

Usage (from the repository root)::

    python tools/plot_bench.py                 # all BENCH_*.json in the cwd
    python tools/plot_bench.py --dir artifacts # ... in a downloaded artifact
    python tools/plot_bench.py --format ascii  # force the text rendering

Exits 0 even when no sample files exist (printing a hint) so it can run
unconditionally after a bench job; exits 2 on malformed sample files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Single-series line color (categorical slot 1 of the default palette) and
#: recessive text/grid inks — one hue per panel, no cycling.
SERIES_COLOR = "#2a78d6"
TEXT_SECONDARY = "#52514e"
SURFACE = "#fcfcfb"

#: Eight-level block ramp used by the ASCII sparklines.
SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def load_samples(path: Path) -> list:
    """The sample list of one ``BENCH_*.json`` file (validated shape)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, list) or not all(isinstance(s, dict) for s in data):
        raise ValueError(f"{path}: expected a JSON list of sample objects")
    return data


def numeric_series(samples: list) -> dict:
    """``{metric: [(sample_index, value), ...]}`` for every numeric field.

    The ``bench`` discriminator groups heterogeneous samples sharing one
    file (e.g. ``BENCH_eval_engine.json`` holds pricing and annealing
    samples); metrics are namespaced by it.  Booleans and non-numeric
    fields are skipped.
    """
    import math

    series: dict = {}
    for index, sample in enumerate(samples):
        bench = sample.get("bench", "")
        for key, value in sample.items():
            if key == "bench" or isinstance(value, bool):
                continue
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                continue
            label = f"{bench}: {key}" if bench else key
            series.setdefault(label, []).append((index, float(value)))
    return series


def sparkline(values: list, width: int = 32) -> str:
    """A fixed-width block-character rendering of a value sequence."""
    if len(values) > width:
        # Keep the most recent samples — the end of the trajectory is what
        # a regression check looks at.
        values = values[-width:]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return SPARK_LEVELS[4] * len(values)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[1 + round((value - low) / span * (top - 1))]
        for value in values
    )


def render_ascii(name: str, series: dict) -> str:
    """The text fallback: one sparkline row per metric."""
    lines = [f"{name} — {max(len(v) for v in series.values())} sample(s)"]
    label_width = max(len(label) for label in series)
    for label in sorted(series):
        values = [value for _, value in series[label]]
        lines.append(
            f"  {label:<{label_width}}  {sparkline(values)}  "
            f"first {values[0]:,.3g}  min {min(values):,.3g}  "
            f"max {max(values):,.3g}  last {values[-1]:,.3g}"
        )
    return "\n".join(lines)


def render_png(name: str, series: dict, out_path: Path) -> None:
    """One figure per bench file: a grid of single-metric panels."""
    import math

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    labels = sorted(series)
    ncols = min(3, len(labels))
    nrows = math.ceil(len(labels) / ncols)
    fig, axes = plt.subplots(
        nrows,
        ncols,
        figsize=(4.5 * ncols, 2.8 * nrows),
        squeeze=False,
        facecolor=SURFACE,
    )
    for panel, label in enumerate(labels):
        axis = axes[panel // ncols][panel % ncols]
        xs = [index for index, _ in series[label]]
        ys = [value for _, value in series[label]]
        axis.plot(xs, ys, color=SERIES_COLOR, linewidth=2, marker="o", markersize=4)
        # Direct-label the last point only (selective labelling).
        axis.annotate(
            f"{ys[-1]:,.3g}",
            (xs[-1], ys[-1]),
            textcoords="offset points",
            xytext=(4, 4),
            fontsize=8,
            color=TEXT_SECONDARY,
        )
        axis.set_title(label, fontsize=9, color=TEXT_SECONDARY)
        axis.set_facecolor(SURFACE)
        axis.grid(True, linewidth=0.4, alpha=0.35)
        axis.tick_params(labelsize=7, colors=TEXT_SECONDARY)
        for spine in axis.spines.values():
            spine.set_visible(False)
    for panel in range(len(labels), nrows * ncols):
        axes[panel // ncols][panel % ncols].set_visible(False)
    fig.suptitle(f"{name} trajectory (sample index = recorded run)", fontsize=11)
    fig.tight_layout(rect=(0, 0, 1, 0.96))
    fig.savefig(out_path, dpi=150)
    plt.close(fig)


def main(argv=None) -> int:
    """Render every ``BENCH_*.json`` trajectory found in the sample dir."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=".",
        help="directory holding BENCH_*.json sample files (default: cwd)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory PNG figures are written to (default: the sample dir)",
    )
    parser.add_argument(
        "--format",
        choices=("auto", "png", "ascii"),
        default="auto",
        help="auto uses matplotlib when importable, else the ASCII fallback",
    )
    args = parser.parse_args(argv)

    sample_dir = Path(args.dir)
    out_dir = Path(args.out) if args.out is not None else sample_dir
    files = sorted(sample_dir.glob("BENCH_*.json"))
    if not files:
        print(
            f"plot_bench: no BENCH_*.json files in {sample_dir.resolve()} — "
            f"record some with REPRO_BENCH_RECORD=1 (see docs/benchmarks.md)"
        )
        return 0

    use_png = args.format == "png"
    if args.format == "auto":
        try:
            import matplotlib  # noqa: F401

            use_png = True
        except ImportError:
            print("plot_bench: matplotlib not importable, using the ASCII fallback\n")

    status = 0
    for path in files:
        name = path.stem
        try:
            series = numeric_series(load_samples(path))
        except (ValueError, json.JSONDecodeError) as error:
            print(f"plot_bench: skipping {path.name}: {error}")
            status = 2
            continue
        if not series:
            print(f"plot_bench: {path.name} has no numeric samples, skipping")
            continue
        if use_png:
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"PLOT_{name.removeprefix('BENCH_')}.png"
            render_png(name, series, out_path)
            print(f"plot_bench: {path.name} -> {out_path}")
        else:
            print(render_ascii(name, series))
            print()
    return status


if __name__ == "__main__":
    sys.exit(main())
