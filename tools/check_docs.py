#!/usr/bin/env python
"""Documentation gate for CI: docstrings + intra-doc links.

Two checks, zero third-party dependencies:

1. **Docstring coverage** — every public module, class, function and public
   method reachable from ``repro.eval`` and ``repro.search`` (the documented
   API surface of docs/api.md) must carry a docstring.  Public means: listed
   in ``__all__`` (for module members) or not underscore-prefixed (for
   methods of public classes); dunder methods and inherited members are
   exempt.

2. **Link integrity** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point to an existing file, and fragment links
   (``path#anchor`` or ``#anchor``) must match a heading in the target file
   (GitHub-style slugs).

3. **Engine guide coverage** — every search engine shipped in
   ``repro.search`` (every exported ``Searcher`` subclass) must have a
   section heading in ``docs/search.md`` naming its registry identifier, so
   a new engine cannot land undocumented.

4. **Topology guide coverage** — every topology class exported by
   ``repro.noc`` must have a section heading in ``docs/topologies.md``, and
   every registered routing spec (``repro.noc.routing.available_routings``)
   must appear in the guide's spec table, so a new topology or routing
   cannot land undocumented.

Exits non-zero with a list of violations; run from the repository root:

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Packages whose public API must be fully documented.
PACKAGES = [
    "repro.eval",
    "repro.search",
    "repro.noc",
    "repro.service",
    "repro.scenario",
    "repro.codesign",
]

#: Markdown files whose relative links are verified.
DOC_FILES = sorted(Path(REPO_ROOT, "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


# ----------------------------------------------------------------------
# Docstring coverage
# ----------------------------------------------------------------------
def _public_modules(package_name: str):
    package = importlib.import_module(package_name)
    yield package
    package_path = Path(package.__file__).parent
    for module_file in sorted(package_path.glob("*.py")):
        if module_file.stem.startswith("_"):
            continue
        yield importlib.import_module(f"{package_name}.{module_file.stem}")


def check_docstrings() -> list:
    problems = []
    for package_name in PACKAGES:
        for module in _public_modules(package_name):
            if not (module.__doc__ or "").strip():
                problems.append(f"{module.__name__}: missing module docstring")
            exported = getattr(module, "__all__", None)
            if exported is None:
                problems.append(f"{module.__name__}: missing __all__")
                continue
            for name in exported:
                member = getattr(module, name, None)
                if member is None:
                    problems.append(f"{module.__name__}.{name}: in __all__ but undefined")
                    continue
                if not (inspect.isclass(member) or inspect.isfunction(member)):
                    continue  # constants and aliases need no docstring
                if not (inspect.getdoc(member) or "").strip():
                    problems.append(f"{module.__name__}.{name}: missing docstring")
                if inspect.isclass(member):
                    problems.extend(_check_methods(module.__name__, member))
    return problems


def _check_methods(module_name: str, cls: type) -> list:
    problems = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        func = None
        if inspect.isfunction(member):
            func = member
        elif isinstance(member, (classmethod, staticmethod)):
            func = member.__func__
        elif isinstance(member, property):
            func = member.fget
        if func is None:
            continue
        if not (inspect.getdoc(func) or "").strip():
            problems.append(f"{module_name}.{cls.__name__}.{name}: missing docstring")
    return problems


# ----------------------------------------------------------------------
# Intra-doc links
# ----------------------------------------------------------------------
def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"[`*]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: str) -> set:
    return {_slugify(match) for match in _HEADING_RE.findall(markdown)}


def check_links() -> list:
    problems = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"{doc.relative_to(REPO_ROOT)}: file missing")
            continue
        text = doc.read_text()
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (doc.parent / path_part).resolve() if path_part else doc
            label = f"{doc.relative_to(REPO_ROOT)} -> {target}"
            if path_part and not resolved.exists():
                problems.append(f"{label}: target does not exist")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved.read_text()):
                    problems.append(f"{label}: no heading for anchor #{fragment}")
    return problems


# ----------------------------------------------------------------------
# Engine guide coverage
# ----------------------------------------------------------------------
def check_engine_sections() -> list:
    """Every shipped search engine needs a section in docs/search.md."""
    import repro.search as search_package
    from repro.search.base import Searcher

    guide = REPO_ROOT / "docs" / "search.md"
    if not guide.exists():
        return ["docs/search.md: file missing (the search-engine guide)"]
    headings = [heading.lower() for heading in _HEADING_RE.findall(guide.read_text())]
    problems = []
    for name in search_package.__all__:
        member = getattr(search_package, name, None)
        if (
            not inspect.isclass(member)
            or not issubclass(member, Searcher)
            or member is Searcher
        ):
            continue
        engine = member.name.lower()
        if not any(engine in heading for heading in headings):
            problems.append(
                f"docs/search.md: no section heading names engine "
                f"{member.name!r} ({member.__name__})"
            )
    return problems


# ----------------------------------------------------------------------
# Topology guide coverage
# ----------------------------------------------------------------------
def check_topology_sections() -> list:
    """Every shipped topology and routing spec needs docs/topologies.md cover."""
    import repro.noc as noc_package
    from repro.noc.routing import available_routings
    from repro.noc.topology import Topology

    guide = REPO_ROOT / "docs" / "topologies.md"
    if not guide.exists():
        return ["docs/topologies.md: file missing (the topology & routing guide)"]
    text = guide.read_text()
    headings = _HEADING_RE.findall(text)
    problems = []
    for name in noc_package.__all__:
        member = getattr(noc_package, name, None)
        if (
            not inspect.isclass(member)
            or not issubclass(member, Topology)
            or member is Topology
        ):
            continue
        if not any(member.__name__ in heading for heading in headings):
            problems.append(
                f"docs/topologies.md: no section heading names topology "
                f"{member.__name__!r}"
            )
    for spec in available_routings():
        if f"`{spec}`" not in text:
            problems.append(
                f"docs/topologies.md: routing spec `{spec}` missing from the "
                f"spec table"
            )
    if "validate_deadlock_free" not in text:
        problems.append(
            "docs/topologies.md: no deadlock-validation guidance "
            "(validate_deadlock_free is never mentioned)"
        )
    return problems


# ----------------------------------------------------------------------
# Bounded-repair contract coverage
# ----------------------------------------------------------------------
def check_repair_sections() -> list:
    """The bounded-repair contract must stay documented end to end.

    ``repro.eval.repair`` is already swept by the docstring check (it lives
    under the ``repro.eval`` package); this check pins the prose half: the
    architecture guide must explain the drift/resync contract under a
    "bounded repair" heading, and the API guide must document the ``repair``
    gate and every :class:`~repro.eval.repair.RepairPolicy` knob, so a new
    knob cannot land undocumented.
    """
    import dataclasses

    from repro.eval.repair import RepairPolicy

    problems = []
    architecture = REPO_ROOT / "docs" / "architecture.md"
    if not architecture.exists():
        problems.append("docs/architecture.md: file missing")
    else:
        headings = _HEADING_RE.findall(architecture.read_text())
        if not any("bounded repair" in heading.lower() for heading in headings):
            problems.append(
                "docs/architecture.md: no section heading names 'bounded "
                "repair' (the CDCM incremental-rescheduling contract)"
            )
    api = REPO_ROOT / "docs" / "api.md"
    if not api.exists():
        problems.append("docs/api.md: file missing")
    else:
        text = api.read_text()
        if "`repair`" not in text:
            problems.append(
                "docs/api.md: the `repair` gate of CdcmEvaluationContext is "
                "undocumented"
            )
        for knob in dataclasses.fields(RepairPolicy):
            if f"`{knob.name}`" not in text:
                problems.append(
                    f"docs/api.md: RepairPolicy knob `{knob.name}` is "
                    f"undocumented"
                )
    return problems


# ----------------------------------------------------------------------
# Mapping-service contract coverage
# ----------------------------------------------------------------------
def check_service_sections() -> list:
    """The mapping-service contracts must stay documented end to end.

    ``repro.service`` modules are swept by the docstring check; this check
    pins the prose half: ``docs/service.md`` must keep a section per
    contract (store key, daemon lifecycle, shared-memory transport,
    bit-identity, the ComparisonConfig pin), the architecture guide must
    cover the service data flow, and the API guide must document the
    ``backend`` knob of ``ComparisonConfig`` and every ``EvalJob`` field,
    so a new knob cannot land undocumented.
    """
    import dataclasses

    from repro.service.daemon import EvalJob

    problems = []
    guide = REPO_ROOT / "docs" / "service.md"
    if not guide.exists():
        return ["docs/service.md: file missing (the mapping-service guide)"]
    text = guide.read_text()
    headings = [heading.lower() for heading in _HEADING_RE.findall(text)]
    required = {
        "store": "the result-store key anatomy",
        "daemon": "the daemon lifecycle",
        "shared-memory": "the shared-memory transport",
        "bit-identity": "the bit-identity contract",
        "comparisonconfig": "the reproduction pin",
    }
    for needle, what in required.items():
        if not any(needle in heading for heading in headings):
            problems.append(
                f"docs/service.md: no section heading names {needle!r} ({what})"
            )
    for symbol in ("ResultStore", "MappingDaemon", "SharedArrayBackend",
                   "ServiceBackend", "tools/serve.py"):
        if symbol not in text:
            problems.append(f"docs/service.md: {symbol} is never mentioned")
    architecture = REPO_ROOT / "docs" / "architecture.md"
    if architecture.exists():
        arch_headings = _HEADING_RE.findall(architecture.read_text())
        if not any(
            "service" in heading.lower() for heading in arch_headings
        ):
            problems.append(
                "docs/architecture.md: no section heading names the mapping "
                "service (its data flow is undocumented)"
            )
    api = REPO_ROOT / "docs" / "api.md"
    if api.exists():
        api_text = api.read_text()
        if "`ComparisonConfig.backend`" not in api_text:
            problems.append(
                "docs/api.md: the `ComparisonConfig.backend` pin is "
                "undocumented"
            )
        for field in dataclasses.fields(EvalJob):
            if f"`{field.name}" not in api_text and field.name not in api_text:
                problems.append(
                    f"docs/api.md: EvalJob field `{field.name}` is "
                    f"undocumented"
                )
    return problems


# ----------------------------------------------------------------------
# Dynamic-scenario contract coverage
# ----------------------------------------------------------------------
def check_scenario_sections() -> list:
    """The dynamic-scenario contracts must stay documented end to end.

    ``repro.scenario`` modules are swept by the docstring check; this check
    pins the prose half: ``docs/scenarios.md`` must keep a section per
    contract (the event model, the fault/certify/remap data flow, the
    determinism contract, the ComparisonConfig pin), name the load-bearing
    symbols, and the architecture guide must place the scenario layer — so
    a new event kind or runner knob cannot land undocumented.
    """
    problems = []
    guide = REPO_ROOT / "docs" / "scenarios.md"
    if not guide.exists():
        return ["docs/scenarios.md: file missing (the dynamic-scenario guide)"]
    text = guide.read_text()
    headings = [heading.lower() for heading in _HEADING_RE.findall(text)]
    required = {
        "event model": "the typed event vocabulary and script hashing",
        "fault": "the fault/certify/remap data flow",
        "determinism": "the replay determinism contract",
        "comparisonconfig": "the scenario-free reproduction pin",
    }
    for needle, what in required.items():
        if not any(needle in heading for heading in headings):
            problems.append(
                f"docs/scenarios.md: no section heading names {needle!r} "
                f"({what})"
            )
    for symbol in (
        "ScenarioScript",
        "FabricManager",
        "RegionObjective",
        "ScenarioRunner",
        "validate_deadlock_free",
        "IrregularTopology.from_crg",
        "tests/scenario_harness.py",
    ):
        if symbol not in text:
            problems.append(f"docs/scenarios.md: {symbol} is never mentioned")

    from repro.scenario.events import EVENT_TYPES

    for kind in EVENT_TYPES:
        if f"`{kind}`" not in text:
            problems.append(
                f"docs/scenarios.md: event kind `{kind}` is undocumented"
            )
    architecture = REPO_ROOT / "docs" / "architecture.md"
    if architecture.exists():
        arch_headings = _HEADING_RE.findall(architecture.read_text())
        if not any(
            "scenario" in heading.lower() for heading in arch_headings
        ):
            problems.append(
                "docs/architecture.md: no section heading names the "
                "dynamic-scenario layer (its data flow is undocumented)"
            )
    return problems


def check_codesign_sections() -> list:
    """The routing×mapping co-design contracts must stay documented.

    ``repro.codesign`` modules are swept by the docstring check; this check
    pins the prose half: ``docs/codesign.md`` must keep a section per
    contract (the genome model, the certification gate, reference-point
    selection, the ComparisonConfig pin), name the load-bearing symbols,
    and ``docs/search.md`` must cover the ``nsga3`` and ``codesign``
    engines — so a new gate policy or engine knob cannot land undocumented.
    """
    problems = []
    guide = REPO_ROOT / "docs" / "codesign.md"
    if not guide.exists():
        return ["docs/codesign.md: file missing (the co-design guide)"]
    text = guide.read_text()
    headings = [heading.lower() for heading in _HEADING_RE.findall(text)]
    required = {
        "genome": "the (routing table, mapping) genome model",
        "certification gate": "the certify-before-price contract",
        "reference-point": "the NSGA-III niching behind the 3-key front",
        "comparisonconfig": "the reproduction pin",
    }
    for needle, what in required.items():
        if not any(needle in heading for heading in headings):
            problems.append(
                f"docs/codesign.md: no section heading names {needle!r} "
                f"({what})"
            )
    for symbol in (
        "SynthesizedRouting",
        "TableSynthesizer",
        "CodesignSearch",
        "register_synthesized",
        "validate_deadlock_free",
        "max_link_utilisation",
    ):
        if symbol not in text:
            problems.append(f"docs/codesign.md: {symbol} is never mentioned")
    search_guide = REPO_ROOT / "docs" / "search.md"
    if search_guide.exists():
        search_headings = [
            heading.lower()
            for heading in _HEADING_RE.findall(search_guide.read_text())
        ]
        for engine in ("nsga3", "codesign"):
            if not any(engine in heading for heading in search_headings):
                problems.append(
                    f"docs/search.md: no section heading names engine "
                    f"{engine!r}"
                )
    return problems


def main() -> int:
    problems = (
        check_docstrings()
        + check_links()
        + check_engine_sections()
        + check_topology_sections()
        + check_repair_sections()
        + check_service_sections()
        + check_scenario_sections()
        + check_codesign_sections()
    )
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("check_docs: all docstrings present, all intra-doc links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
