#!/usr/bin/env python3
"""Cross-run weight sweeps through the mapping service (`repro.service`).

This example demonstrates the service layer end to end:

1. **cold sweep** — a `MappingDaemon` over a persistent `ResultStore` prices
   a candidate population once for a three-point energy/time weight sweep;
   scalarisation weights live outside the store key, so jobs 2 and 3 already
   answer from the store;
2. **warm re-run** — a *fresh* daemon over the same store directory (the
   "next day's" process) repeats the identical sweep and re-prices zero
   candidates: hit rate 1.0, and the costs are bit-identical to the cold
   pass;
3. **the transport** — the same population priced through
   `SharedArrayBackend`, which ships the batch to pool workers as one
   shared-memory index array instead of pickled mappings, bit-identical to
   serial pricing by construction.

Run with:  python examples/service_sweep.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os
import tempfile
import time

from repro import (
    CdcmEvaluationContext,
    EvalJob,
    MappingDaemon,
    Mapping,
    Mesh,
    Platform,
    ResultStore,
    SerialBackend,
    SharedArrayBackend,
)
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 2005

SWEEP = (
    {"energy": 1.0, "time": 0.0},
    {"energy": 0.5, "time": 0.5},
    {"energy": 0.0, "time": 1.0},
)


def run_sweep(daemon, cdcg, platform, population):
    """Submit one job per sweep point; return the results and elapsed time."""
    start = time.perf_counter()
    results = [
        daemon.run(
            EvalJob(
                application=cdcg,
                platform=platform,
                mappings=population,
                model="cdcm",
                weights=weights,
                label=f"sweep-{i}",
            )
        )
        for i, weights in enumerate(SWEEP)
    ]
    return results, time.perf_counter() - start


def main() -> None:
    side = 4 if SMOKE else 8
    platform = Platform(mesh=Mesh(side, side))
    spec = TgffSpec(
        name="service-sweep",
        num_cores=(side * side) - 4,
        num_packets=20 if SMOKE else 96,
        total_bits=40_000 if SMOKE else 240_000,
    )
    cdcg = TgffLikeGenerator(SEED).generate(spec)
    population = [
        Mapping.random(sorted(cdcg.cores()), platform.num_tiles, rng=SEED + i)
        for i in range(8 if SMOKE else 24)
    ]
    print(
        f"application: {cdcg.num_cores} cores, {cdcg.num_packets} packets "
        f"on a {side}x{side} mesh; {len(population)} candidates, "
        f"{len(SWEEP)}-point weight sweep\n"
    )

    with tempfile.TemporaryDirectory(prefix="repro-example-store-") as root:
        # --- 1. cold sweep: the store starts empty --------------------
        with MappingDaemon(store=ResultStore(root)) as daemon:
            cold, cold_s = run_sweep(daemon, cdcg, platform, population)
        priced = sum(r.priced for r in cold)
        print(
            f"cold sweep: {cold_s:.2f}s, priced {priced} candidates "
            f"(jobs 2+ reuse job 1's vectors: "
            f"{[r.priced for r in cold]})"
        )

        # --- 2. warm re-run: a fresh daemon, the same store ----------
        with MappingDaemon(store=ResultStore(root)) as daemon:
            warm, warm_s = run_sweep(daemon, cdcg, platform, population)
        print(
            f"warm sweep: {warm_s:.2f}s, priced "
            f"{sum(r.priced for r in warm)} candidates, "
            f"hit rate {warm[-1].hit_rate:.2f}, "
            f"speedup {cold_s / warm_s:.1f}x"
        )
        assert all(r.priced == 0 for r in warm)
        assert [list(r.costs) for r in warm] == [list(r.costs) for r in cold]
        print(f"balanced-weights winner: cost {min(warm[1].costs):,.0f}\n")

    # --- 3. the shared-memory transport ------------------------------
    serial = SerialBackend().evaluate_metrics(
        CdcmEvaluationContext(cdcg, platform, cache_size=0), population
    )
    with SharedArrayBackend(n_workers=2, min_batch_size=2) as pool:
        pooled = pool.evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), population
        )
        print(
            f"shared-memory pool: {pool.shm_batches} shm batch(es), "
            f"{pool.pickle_batches} pickle fallback(s)"
        )
    assert pooled == serial, "transport must never change a vector"
    print("pool vectors bit-identical to serial: OK")


if __name__ == "__main__":
    main()
