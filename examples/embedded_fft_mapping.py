#!/usr/bin/env python3
"""Map the embedded applications (FFT, Romberg, image pipelines) onto a 3x3 NoC.

The paper's Section 5 evaluates, among others, an 8-point FFT, a distributed
Romberg integration and two image applications.  This example maps each of
them onto a 3x3 mesh with three strategies — random placement, the greedy
constructive heuristic, and simulated annealing driven by the CDCM objective —
and reports execution time, total energy and contention for each, showing how
much headroom a timing-aware search recovers on real dataflow structures.

Run with:  python examples/embedded_fft_mapping.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os

from repro import FRWFramework, Mesh, Platform
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.workloads.embedded import embedded_applications

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")


def evaluate(framework: FRWFramework, mapping, label: str) -> None:
    report = framework.evaluate(mapping)
    print(
        f"    {label:<22} texec = {report.execution_time:9.1f} ns   "
        f"ENoC = {report.total_energy:12.1f} pJ   "
        f"contention = {report.total_contention_delay:9.1f} ns"
    )


def main() -> None:
    schedule = AnnealingSchedule(
        cooling_factor=0.93, max_evaluations=500 if SMOKE else 4_000
    )

    applications = embedded_applications()
    if SMOKE:
        applications = dict(list(applications.items())[:2])
    for name, cdcg in applications.items():
        # Pick the smallest of a few standard mesh sizes that fits the app.
        mesh = next(
            m
            for m in (Mesh(3, 3), Mesh(4, 3), Mesh(4, 4))
            if m.num_tiles >= cdcg.num_cores
        )
        platform = Platform(mesh=mesh)
        framework = FRWFramework(cdcg, platform)
        print(
            f"{name}: {cdcg.num_cores} cores, {cdcg.num_packets} packets, "
            f"{cdcg.total_bits():,} bits"
        )

        random_mapping = framework.initial_mapping(seed=1)
        evaluate(framework, random_mapping, "random placement")

        greedy_mapping = framework.greedy_mapping()
        evaluate(framework, greedy_mapping, "greedy constructive")

        outcome = framework.map(
            model="cdcm",
            searcher=SimulatedAnnealing(schedule),
            seed=1,
            initial=random_mapping,
        )
        evaluate(framework, outcome.mapping, "CDCM annealing")
        print()


if __name__ == "__main__":
    main()
