#!/usr/bin/env python3
"""Energy/time Pareto fronts for an embedded workload — CWM vs CDCM.

This example demonstrates the vector-valued objective API end to end on the
image-encoder workload:

1. **one pricing pass, many scalarisations** — a candidate pool (random
   mappings plus search-optimised ones) is priced once through the shared
   `CdcmEvaluationContext`; the memoised `MetricVector`s then feed every
   weight vector of the sweep for free (watch the context's `cache_info()`);
2. **weight-sweep front** — `weight_sweep_front` sweeps convex energy/time
   weight combinations over the pool and assembles the non-dominated front
   of the winners (the *supported* points of the pool's exhaustive front);
3. **CWM vs CDCM fronts** — mappings found by searching under the CWM
   objective (dynamic energy only, blind to contention) are priced under the
   full CDCM model and their front is compared against the CDCM-swept front:
   the CWM front is never better, and typically strictly worse on the time
   axis — Figure 2's blind spot, now as a front-vs-front picture.

Run with:  python examples/pareto_front_sweep.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os

from repro import Mesh, Platform
from repro.analysis.pareto import (
    front_to_rows,
    pareto_front,
    weight_grid,
    weight_sweep_front,
)
from repro.core.mapping import Mapping
from repro.core.objective import cwm_objective
from repro.eval.context import CdcmEvaluationContext
from repro.graphs.convert import cdcg_to_cwg
from repro.search.annealing import FAST_SCHEDULE, SimulatedAnnealing
from repro.workloads.embedded import image_encoder

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 42
POOL_SIZE = 40 if SMOKE else 200
SWEEP_WEIGHTS = 5 if SMOKE else 9
#: The front axes.  Total ``energy`` folds static leakage (proportional to
#: texec) into the energy term, which correlates the two axes; the crisper
#: engineering trade-off is communication (dynamic) energy vs makespan.
FRONT_KEYS = ("dynamic_energy", "time")


def print_front(label, front):
    energy_key, time_key = FRONT_KEYS
    print(f"\n{label} ({len(front)} point(s)):")
    print(f"  {'EDyNoC (pJ)':>12} {'texec (ns)':>10}  selecting weights")
    for row in front_to_rows(front, keys=FRONT_KEYS):
        weights = row.get("weights")
        weight_label = (
            " ".join(f"{key}={value:.3f}" for key, value in weights.items())
            if weights
            else "-"
        )
        print(
            f"  {row[energy_key]:>12.1f} {row[time_key]:>10.1f}  {weight_label}"
        )


def main() -> None:
    cdcg = image_encoder()
    cwg = cdcg_to_cwg(cdcg)
    platform = Platform(mesh=Mesh(4, 3))
    context = CdcmEvaluationContext(cdcg, platform)
    print(
        f"application: {cdcg.name} ({cdcg.num_cores} cores, "
        f"{cdcg.num_packets} packets) on a {platform.mesh}"
    )

    # A candidate pool: random mappings plus annealing-optimised ones, one
    # short run per sweep weight vector.  Every run prices through a
    # ScalarisedObjective view over the SAME context, so revisited candidates
    # are answered from the shared metric-vector memo.
    pool = [
        Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED + i)
        for i in range(POOL_SIZE)
    ]
    engine = SimulatedAnnealing(FAST_SCHEDULE, restarts=1 if SMOKE else 2)
    view = context.scalarised({"energy": 1.0})
    for index, weights in enumerate(weight_grid(SWEEP_WEIGHTS, FRONT_KEYS)):
        weights = {key: value for key, value in weights.items() if value}
        result = engine.search(
            view.with_weights(weights), pool[index], rng=SEED + index
        )
        pool.append(result.best_mapping)

    # 2. Sweep nine convex energy/time weight vectors over ONE pricing pass.
    before = context.cache_info().misses
    sweep = weight_sweep_front(
        context, pool, weights=SWEEP_WEIGHTS, keys=FRONT_KEYS
    )
    priced = context.cache_info().misses - before
    exhaustive = pareto_front(context, pool, keys=FRONT_KEYS)
    print(
        f"\nswept {SWEEP_WEIGHTS} weight vectors over {len(pool)} candidates "
        f"with {priced} new pricing passes "
        f"(memo: {context.cache_info().hits} hits)"
    )
    print_front("CDCM weight-sweep front", sweep.front)
    print(
        f"pool's exhaustive front has {len(exhaustive)} point(s); the sweep "
        f"recovered {len(sweep.front)} supported point(s)"
    )

    # 3. The CWM blind spot, front vs front: optimise under CWM (energy only),
    # price the results under the full CDCM model.
    cwm_engine = SimulatedAnnealing(FAST_SCHEDULE)
    cwm_candidates = []
    for restart in range(2 if SMOKE else 4):
        outcome = cwm_engine.search(
            cwm_objective(cwg, platform),
            Mapping.random(cdcg.cores(), platform.num_tiles, rng=restart),
            rng=SEED + restart,
        )
        cwm_candidates.append(outcome.best_mapping)
    cwm_front = pareto_front(context, cwm_candidates, keys=FRONT_KEYS)
    print_front("CWM-searched mappings, CDCM-priced front", cwm_front)

    best_cdcm_time = min(p.metrics["time"] for p in sweep.front)
    best_cwm_time = min(p.metrics["time"] for p in cwm_front)
    print(
        f"\nbest texec — CDCM front: {best_cdcm_time:.1f} ns, "
        f"CWM-searched: {best_cwm_time:.1f} ns "
        f"({(best_cwm_time - best_cdcm_time) / best_cdcm_time:+.1%} vs CDCM)"
    )
    print(
        "the CWM objective cannot see contention, so its mappings cannot "
        "trade energy for execution time — the CDCM front can."
    )


if __name__ == "__main__":
    main()
