#!/usr/bin/env python3
"""Parallel genetic mapping search on a 16x16 torus with ProcessPoolBackend.

This example demonstrates the parallel half of the evaluation engine
(`repro.eval.parallel`) end to end on a large NoC:

1. **sharded warm-up** — a 16x16 torus sits exactly at the eager/lazy route
   table threshold; `warm_route_table` forces the eager build and shards it
   by source row across the pool, then registers the result process-wide so
   every later evaluation (and every forked worker) reuses it;
2. **pooled GA pricing** — each GA generation is priced as one
   `evaluate_batch` call fanned out over `ProcessPoolBackend(n_workers=4)`,
   first under the cheap CWM objective, then under the expensive
   contention-aware CDCM objective where the pool actually pays off;
3. **determinism** — the same seeded search is repeated serially and the
   results are asserted identical: `n_workers` changes wall-clock time, never
   the answer.

Run with:  python examples/parallel_ga_sweep.py
(add --workers N to change the pool size; set REPRO_EXAMPLES_SMOKE=1 for the
tiny-parameter CI smoke configuration)
"""

import os
import sys
import time

from repro import Platform, Torus
from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective, cwm_objective
from repro.eval.parallel import ProcessPoolBackend, SerialBackend, warm_route_table
from repro.graphs.convert import cdcg_to_cwg
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 2005


def main() -> None:
    n_workers = 2 if SMOKE else 4
    if "--workers" in sys.argv:
        n_workers = int(sys.argv[sys.argv.index("--workers") + 1])

    torus = Torus(16, 16)
    platform = Platform(mesh=torus)
    spec = TgffSpec(
        name="parallel-sweep",
        num_cores=96,
        num_packets=160,
        total_bits=320_000,
    )
    cdcg = TgffLikeGenerator(42).generate(spec)
    cwg = cdcg_to_cwg(cdcg)
    print(
        f"application: {cdcg.num_cores} cores, {cdcg.num_packets} packets "
        f"on a {torus} ({platform.num_tiles} tiles)\n"
    )

    with ProcessPoolBackend(n_workers=n_workers, min_batch_size=2) as pool:
        # 1. Warm the shared route table in parallel, sharded by source row.
        start = time.perf_counter()
        table = warm_route_table(platform, backend=pool)
        print(
            f"route table: {platform.num_tiles ** 2:,} pairs warmed in "
            f"{time.perf_counter() - start:.2f}s across {n_workers} workers "
            f"(precomputed={table.is_precomputed})"
        )

        # 2. Pooled GA under both models.
        params = GeneticParameters(
            population_size=16, generations=2 if SMOKE else 3
        )
        initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED)

        for label, objective_factory in (
            ("cwm", lambda: cwm_objective(cwg, platform)),
            ("cdcm", lambda: cdcm_objective(cdcg, platform)),
        ):
            start = time.perf_counter()
            pooled = GeneticSearch(params, backend=pool).search(
                objective_factory(), initial, rng=SEED
            )
            pooled_elapsed = time.perf_counter() - start

            start = time.perf_counter()
            serial = GeneticSearch(params, backend=SerialBackend()).search(
                objective_factory(), initial, rng=SEED
            )
            serial_elapsed = time.perf_counter() - start

            # 3. Same seed, same answer — regardless of n_workers.
            assert pooled.best_cost == serial.best_cost
            assert pooled.best_mapping == serial.best_mapping
            print(
                f"{label:<5} GA: best {pooled.best_cost:,.1f} in "
                f"{pooled.evaluations} evaluations | "
                f"pooled {pooled_elapsed:.2f}s vs serial {serial_elapsed:.2f}s "
                f"({serial_elapsed / pooled_elapsed:.2f}x)"
            )

    print(
        "\npooled and serial runs returned identical mappings — "
        "n_workers trades wall-clock time only."
    )


if __name__ == "__main__":
    main()
