#!/usr/bin/env python3
"""Fault-tolerant mapping: a link-failure storm survived by incremental remap.

The paper maps applications onto a healthy NoC once, offline.  The dynamic
scenario engine (`repro.scenario`) extends that story to fabrics that change
at run time: links fail and come back, and the mapping system has to keep
every live application placed on a *certified* fabric.  This example drives
a link-failure storm over a 6x6 mesh carrying three applications and shows
the pipeline end to end:

1. a deterministic `ScenarioScript` describes the storm — three application
   arrivals followed by perimeter link failures and repairs;
2. after every fault the degraded fabric is rebuilt
   (`IrregularTopology.from_crg`), re-routed with table routing and
   re-certified deadlock-free **before** any traffic is priced on it;
3. the `ScenarioRunner` then remaps *incrementally*: only cores on dead
   tiles or on rerouted flows are re-searched (any registry engine), while
   every surviving placement stays pinned;
4. the same storm replayed with `remap="full"` re-places every application
   from scratch after each event — same verdicts, strictly more tiles
   searched, and no better a final mapping.

Run with:  python examples/fault_tolerant_remap.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os
import time

from repro.scenario import (
    ApplicationArrival,
    LinkFailure,
    LinkRepair,
    ScenarioRunner,
    ScenarioScript,
)

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 20050307

#: The storm: all failed links sit on the mesh perimeter, so every degraded
#: fabric re-certifies (an interior failure forces detour turns that close a
#: channel-dependency cycle under deterministic table routing — the runner
#: would reject it rather than run traffic on an uncertified fabric).
EVENTS = (
    ApplicationArrival("north", 8, 30, 40_000, seed=3),
    ApplicationArrival("south", 8, 30, 40_000, seed=5),
    ApplicationArrival("east", 6, 20, 25_000, seed=7),
    LinkFailure(0, 1),
    LinkFailure(30, 31),
    LinkRepair(0, 1),
    LinkFailure(4, 5),
    LinkFailure(33, 34),
    LinkRepair(30, 31),
    LinkFailure(17, 23),
)


def replay(script: ScenarioScript, remap: str):
    engine_kwargs = {"samples": 6} if SMOKE else None
    runner = ScenarioRunner(
        script,
        remap=remap,
        engine="random" if SMOKE else "annealing",
        engine_kwargs=engine_kwargs,
    )
    start = time.perf_counter()
    trace = runner.run()
    elapsed = time.perf_counter() - start
    return trace, elapsed


def main() -> None:
    script = ScenarioScript(
        name="fault-tolerant-remap",
        topology="mesh:6x6",
        seed=SEED,
        events=EVENTS,
    )
    print(
        f"scenario: {script.name} on mesh:6x6, {len(script.events)} events, "
        f"script hash {script.content_hash()[:12]}"
    )

    trace, elapsed = replay(script, "incremental")
    print("\nincremental replay (only the touched region is re-searched):")
    for record in trace.records:
        apps = ", ".join(sorted({l.split(":", 1)[0] for l in record.remapped}))
        print(
            f"  [{record.index}] {record.kind:<14} "
            f"{record.outcome.describe():<55} "
            f"searched {record.searched_tiles:>3} tiles"
            + (f", remapped {apps}" if apps else "")
        )

    full, full_elapsed = replay(script, "full")
    print(
        f"\n{'mode':<14} {'tiles searched':>15} {'final cost':>14} "
        f"{'seconds':>9}"
    )
    print(
        f"{'incremental':<14} {trace.total_searched_tiles:>15,} "
        f"{trace.final_cost:>14,.1f} {elapsed:>9.3f}"
    )
    print(
        f"{'full':<14} {full.total_searched_tiles:>15,} "
        f"{full.final_cost:>14,.1f} {full_elapsed:>9.3f}"
    )
    saved = 1 - trace.total_searched_tiles / full.total_searched_tiles
    print(
        f"\nincremental remapping searched {saved:.0%} fewer tiles and kept "
        "every surviving placement pinned;"
    )
    print(
        "both replays are deterministic and agree on every event verdict -- "
        "see docs/scenarios.md and tests/scenario_harness.py."
    )


if __name__ == "__main__":
    main()
