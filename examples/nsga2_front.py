#!/usr/bin/env python3
"""NSGA-II population-front search vs. the scalarisation weight sweep.

PR 3 made the paper's energy/time trade-off first-class and built fronts by
sweeping K scalarisation weight vectors over a priced candidate pool
(`examples/pareto_front_sweep.py`).  That recovers only the *supported*
points — the ones some convex weight combination selects.  This example runs
the population-front engine on the same image-encoder workload and compares
the two approaches head on:

1. **NSGA-II** (`repro.search.nsga2.NSGA2Search`) evolves a population
   directly on the vector objective — non-dominated sorting, crowding
   selection, GA operators — and returns the final front in
   `SearchResult.front`;
2. **weight sweep** (`repro.analysis.pareto.weight_sweep_front`) sweeps
   convex energy/time weights over a random pool priced with the *same
   evaluation budget*, through the *same* shared context;
3. the fronts are compared by **hypervolume under a shared reference** and
   by per-point dominance — NSGA-II matches or beats the sweep, and finds
   trade-off points the sweep structurally cannot.

Run with:  python examples/nsga2_front.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os

from repro import Mesh, Platform
from repro.analysis.pareto import front_to_rows, hypervolume, weight_sweep_front
from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext
from repro.search.nsga2 import NSGA2Search, Nsga2Parameters
from repro.workloads.embedded import image_encoder

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 42
#: The crisper engineering trade-off: communication energy vs makespan (total
#: ``energy`` folds static leakage, which correlates the axes).
FRONT_KEYS = ("dynamic_energy", "time")
SWEEP_WEIGHTS = 5 if SMOKE else 11
PARAMS = Nsga2Parameters(
    population_size=12 if SMOKE else 32,
    generations=6 if SMOKE else 30,
)


def print_front(label, front):
    energy_key, time_key = FRONT_KEYS
    print(f"\n{label} ({len(front)} point(s)):")
    print(f"  {'EDyNoC (pJ)':>12} {'texec (ns)':>10}")
    for row in front_to_rows(front, keys=FRONT_KEYS):
        print(f"  {row[energy_key]:>12.1f} {row[time_key]:>10.1f}")


def main() -> None:
    cdcg = image_encoder()
    platform = Platform(mesh=Mesh(4, 3))
    context = CdcmEvaluationContext(cdcg, platform)
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED)
    print(
        f"application: {cdcg.name} ({cdcg.num_cores} cores, "
        f"{cdcg.num_packets} packets) on a {platform.mesh}"
    )

    # 1. One NSGA-II run prices the whole front.
    engine = NSGA2Search(PARAMS, keys=FRONT_KEYS)
    result = engine.search(context, initial, rng=SEED)
    print(
        f"\nNSGA-II: population {PARAMS.population_size}, "
        f"{PARAMS.generations} generations, {result.evaluations} evaluations"
    )
    print_front("NSGA-II front", result.front)

    # 2. The PR 3 baseline with the same evaluation budget: sweep convex
    # weight vectors over a random pool of equal size, through the same
    # context (so both approaches share the memo and the pricing model).
    pool = [
        Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED + index)
        for index in range(result.evaluations)
    ]
    sweep = weight_sweep_front(context, pool, weights=SWEEP_WEIGHTS, keys=FRONT_KEYS)
    print(
        f"\nweight sweep: {SWEEP_WEIGHTS} weight vectors over "
        f"{len(pool)} random candidates (same budget)"
    )
    print_front("weight-sweep front", sweep.front)

    # 3. Compare under a SHARED reference (the componentwise maximum over
    # both fronts) — hypervolumes under different references do not compare.
    union = list(result.front) + list(sweep.front)
    reference = {key: max(p.metrics[key] for p in union) for key in FRONT_KEYS}
    nsga2_hv = hypervolume(result.front, reference=reference, keys=FRONT_KEYS)
    sweep_hv = hypervolume(sweep.front, reference=reference, keys=FRONT_KEYS)
    print(
        f"\nhypervolume (shared reference): NSGA-II {nsga2_hv:,.0f} vs "
        f"weight sweep {sweep_hv:,.0f}"
        + (f"  ({nsga2_hv / sweep_hv:.2f}x)" if sweep_hv > 0 else "")
    )

    dominated = sum(
        1
        for theirs in sweep.front
        if any(
            mine.metrics.dominates(theirs.metrics, FRONT_KEYS)
            for mine in result.front
        )
    )
    print(
        f"{dominated}/{len(sweep.front)} sweep point(s) are strictly "
        f"dominated by the NSGA-II front"
    )
    print(
        "the sweep can only select supported (convex-hull) points; NSGA-II "
        "optimises the front itself and keeps the unsupported knees."
    )


if __name__ == "__main__":
    main()
