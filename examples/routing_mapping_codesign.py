#!/usr/bin/env python3
"""Routing×mapping co-design on a hub-hotspot workload.

The paper fixes deterministic XY routing and searches mappings.  On hotspot
traffic — every worker streaming results into one hub core — that leaves
energy×time×congestion on the table: wherever the mapping puts the hub, XY
delivers **all** column traffic to the hub through the same final links, so
the busiest link saturates no matter how cleverly the cores are placed.
This example frees the routing too:

1. build the ``hub_gather_scatter`` workload (`repro.workloads`) — waves of
   small HUB→worker commands and large worker→HUB results;
2. show the static per-link picture under XY: the total gathered volume
   funnels through the hub's few incoming links (`repro.codesign.link_loads`);
3. run :class:`~repro.codesign.engine.CodesignSearch` — NSGA-III over
   *(synthesized routing table, mapping)* genomes, every table certified
   deadlock-free **before** pricing — against a budget-matched fixed-XY
   mapping-only NSGA-II;
4. compare the two fronts by hypervolume under a shared reference and
   re-certify every routing on the co-design front.

Run with:  python examples/routing_mapping_codesign.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os

from repro import Mesh, Platform
from repro.analysis.pareto import hypervolume
from repro.codesign import CodesignParameters, CodesignSearch, link_loads
from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext
from repro.eval.route_table import get_route_table
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.deadlock import validate_deadlock_free
from repro.search.nsga2 import NSGA2Search, Nsga2Parameters
from repro.workloads import hub_gather_scatter

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 20050307
FRONT_KEYS = ("energy", "time", "max_link_utilisation")
PARAMS = CodesignParameters(
    population_size=8 if SMOKE else 16,
    generations=3 if SMOKE else 10,
)


def busiest_links(cwg, mapping, platform, count=3):
    """The *count* most loaded directed links (bits) under the platform routing."""
    loads = link_loads(cwg, mapping, get_route_table(platform))
    ranked = sorted(loads.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:count], sum(loads.values())


def main() -> None:
    cdcg = hub_gather_scatter()
    platform = Platform(mesh=Mesh(4, 3))
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED)
    print(
        f"application: {cdcg.name} ({cdcg.num_cores} cores, "
        f"{cdcg.num_packets} packets) on a {platform.mesh} with XY routing"
    )

    # 1. The static hotspot picture under XY: the gathered volume converges
    # on the hub tile's incoming links.
    cwg = cdcg_to_cwg(cdcg)
    top, total = busiest_links(cwg, initial, platform)
    print(f"\nstatic link loads under XY (random mapping, {total:,.0f} bits total):")
    for (src, dst), bits in top:
        print(f"  link {src:>2} -> {dst:<2}  {bits:>10,.0f} bits ({bits / total:.0%})")

    # 2. Co-design: routing tables and mappings evolved together.  Every
    # child's table passes the deadlock-certification gate before pricing.
    engine = CodesignSearch(cdcg, platform, PARAMS, keys=FRONT_KEYS)
    result = engine.search(initial=initial, rng=SEED)
    print(
        f"\nco-design: population {PARAMS.population_size}, "
        f"{PARAMS.generations} generations, {result.evaluations} evaluations"
    )
    print(
        f"deadlock gate: {result.tables_certified} certified, "
        f"{result.tables_repaired} repaired, {result.tables_rejected} rejected"
    )

    # Every routing on the front re-certifies — the gate's contract.
    for routing in result.front_routings:
        assert validate_deadlock_free(
            platform.mesh, routing, raise_on_cycle=False
        ).deadlock_free
    print(f"front: {len(result.front)} point(s), all routings re-certified")

    # 3. The budget-matched baseline: mapping-only NSGA-II on fixed XY, same
    # population, generations and therefore evaluation count.
    context = CdcmEvaluationContext(cdcg, platform)
    baseline = NSGA2Search(
        Nsga2Parameters(
            population_size=PARAMS.population_size,
            generations=PARAMS.generations,
        ),
        keys=FRONT_KEYS,
    ).search(context, initial, rng=SEED)
    assert baseline.evaluations == result.evaluations
    print(
        f"\nfixed-XY baseline: mapping-only NSGA-II, same budget "
        f"({baseline.evaluations} evaluations), {len(baseline.front)} point(s)"
    )

    # 4. Shared-reference hypervolume — the only fair cross-front comparison.
    union = list(result.front) + list(baseline.front)
    reference = {key: max(p.metrics[key] for p in union) for key in FRONT_KEYS}
    codesign_hv = hypervolume(result.front, reference=reference, keys=FRONT_KEYS)
    baseline_hv = hypervolume(baseline.front, reference=reference, keys=FRONT_KEYS)
    print(
        f"hypervolume (shared reference): co-design {codesign_hv:,.0f} vs "
        f"fixed-XY {baseline_hv:,.0f}"
        + (f"  ({codesign_hv / baseline_hv:.2f}x)" if baseline_hv > 0 else
           "  (baseline front fully dominated)")
    )

    best_congestion = min(p.metrics["max_link_utilisation"] for p in result.front)
    xy_congestion = min(p.metrics["max_link_utilisation"] for p in baseline.front)
    print(
        f"best max_link_utilisation: co-design {best_congestion:.3f} vs "
        f"fixed-XY {xy_congestion:.3f}"
    )
    print(
        "\nfreeing the routing lets the search spread the gather volume over "
        "all minimal paths into the hub — capacity XY structurally cannot use."
    )


if __name__ == "__main__":
    main()
