#!/usr/bin/env python3
"""Describe your own application, map it, and save/reload it as JSON.

This example shows the full user workflow for a custom system: a small
producer/consumer streaming pipeline with a feedback packet, described
packet-by-packet as a CDCG.  It is mapped onto a 2x3 mesh with the CDCM
objective, the resulting placement is printed tile by tile, and the
application model is round-tripped through the JSON serialisation so it can
be version-controlled next to your design files.

Run with:  python examples/custom_application.py
"""

import tempfile
from pathlib import Path

from repro import CDCG, FRWFramework, Mesh, NocParameters, Platform, TECH_0_07UM
from repro.graphs.io import load_cdcg_json, save_json
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing


def build_application() -> CDCG:
    """A sensor-fusion style pipeline: two sensors feed a fusion core, the
    fused frame is filtered and sent to an actuator, which acknowledges back
    to the sensors for the next round."""
    cdcg = CDCG("sensor-fusion")
    for round_index in range(3):
        prefix = f"r{round_index}"
        cdcg.add_packet(f"{prefix}_cam", "camera", "fusion", 12.0, 16_384)
        cdcg.add_packet(f"{prefix}_lidar", "lidar", "fusion", 18.0, 8_192)
        cdcg.add_packet(f"{prefix}_fused", "fusion", "filter", 25.0, 20_480)
        cdcg.add_packet(f"{prefix}_clean", "filter", "actuator", 15.0, 4_096)
        cdcg.add_packet(f"{prefix}_ack", "actuator", "camera", 3.0, 128)
        cdcg.add_dependence(f"{prefix}_cam", f"{prefix}_fused")
        cdcg.add_dependence(f"{prefix}_lidar", f"{prefix}_fused")
        cdcg.add_dependence(f"{prefix}_fused", f"{prefix}_clean")
        cdcg.add_dependence(f"{prefix}_clean", f"{prefix}_ack")
        if round_index > 0:
            previous_ack = f"r{round_index - 1}_ack"
            cdcg.add_dependence(previous_ack, f"{prefix}_cam")
            cdcg.add_dependence(previous_ack, f"{prefix}_lidar")
    cdcg.validate()
    return cdcg


def main() -> None:
    cdcg = build_application()
    print(f"application: {cdcg}")

    platform = Platform(
        mesh=Mesh(2, 3),
        parameters=NocParameters(routing_cycles=3, link_cycles=1, flit_width=32),
        technology=TECH_0_07UM,
    )
    print(platform.describe())
    print()

    framework = FRWFramework(cdcg, platform)
    outcome = framework.map(
        model="cdcm",
        searcher=SimulatedAnnealing(
            AnnealingSchedule(cooling_factor=0.93, max_evaluations=3_000)
        ),
        seed=7,
    )
    report = framework.evaluate(outcome.mapping)

    print("best CDCM mapping:")
    for tile in range(platform.num_tiles):
        core = outcome.mapping.core_at(tile)
        x, y = platform.mesh.position_of(tile)
        print(f"  tile tau{tile} ({x},{y}): {core if core else '(empty)'}")
    print()
    print(report.energy.describe())
    print(f"contention: {report.total_contention_delay:.1f} ns")

    # Round-trip the application model through JSON.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sensor_fusion.cdcg.json"
        save_json(cdcg, path)
        restored = load_cdcg_json(path)
        check = framework.evaluate(outcome.mapping)
        restored_report = FRWFramework(restored, platform).evaluate(outcome.mapping)
        assert restored_report.total_energy == check.total_energy
        print(f"\nround-tripped application through {path.name}: OK")


if __name__ == "__main__":
    main()
