#!/usr/bin/env python3
"""Mapping search on an irregular NoC fabric with table-backed routing.

The paper evaluates mappings on regular 2D meshes but notes that other
topologies "can be equally treated"; the pluggable topology redesign makes
that concrete.  This example maps the image-encoder workload onto two
12-tile platforms and compares them end to end:

1. the paper-style **4x3 mesh** with deterministic XY routing;
2. an **irregular fabric** (`repro.noc.IrregularTopology`) — a ring of four
   hub tiles, each hub serving two leaf tiles — routed by the table-backed
   BFS shortest-path routing (`"table"` spec), which works on any topology;
3. the fabric/routing pair is **gated against wormhole deadlock**
   (`Platform.validate_deadlock_free`, the channel-dependency-graph check)
   before anything is priced on it;
4. the same seeded simulated-annealing search runs on both platforms through
   the same contention-aware CDCM pricing, showing the whole engine stack is
   topology-agnostic.

Run with:  python examples/irregular_topology_mapping.py
(set REPRO_EXAMPLES_SMOKE=1 for the tiny-parameter CI smoke configuration)
"""

import os

from repro import IrregularTopology, Mesh, Platform
from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.workloads.embedded import image_encoder

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")

SEED = 42
SCHEDULE = AnnealingSchedule(
    cooling_factor=0.85 if SMOKE else 0.95,
    max_evaluations=800 if SMOKE else 8_000,
    stall_plateaus=5 if SMOKE else 15,
)

#: Four hub tiles in a ring (0-1-2-3), each hub serving two leaves — a
#: hierarchical fabric no mesh spec can express.  Edges are bidirectional.
HUB_RING_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 0),      # the hub ring
    (0, 4), (0, 5),                      # leaves of hub 0
    (1, 6), (1, 7),                      # leaves of hub 1
    (2, 8), (2, 9),                      # leaves of hub 2
    (3, 10), (3, 11),                    # leaves of hub 3
]


def run(label: str, platform: Platform, cdcg) -> float:
    context = CdcmEvaluationContext(cdcg, platform)
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED)
    engine = SimulatedAnnealing(schedule=SCHEDULE)
    result = engine.search(context, initial, rng=SEED)
    print(
        f"  {label:<28} best energy {result.best_cost:>12,.1f} pJ   "
        f"texec {result.metric('time'):>8,.1f} ns   "
        f"({result.evaluations} evaluations)"
    )
    return result.best_cost


def main() -> None:
    cdcg = image_encoder()
    print(
        f"application: {cdcg.name} ({cdcg.num_cores} cores, "
        f"{cdcg.num_packets} packets)"
    )

    # 1. The paper-style mesh baseline.
    mesh_platform = Platform(mesh=Mesh(4, 3))

    # 2. The irregular fabric, routed by BFS next-hop tables ("table" spec).
    fabric = IrregularTopology(HUB_RING_EDGES, name="hub-ring")
    irregular_platform = Platform(mesh=fabric, routing="table")

    # 3. Gate the new fabric/routing pair before pricing anything on it:
    # a cyclic channel-dependency graph would mean the modelled network can
    # deadlock in ways the contention scheduler does not represent.
    report = irregular_platform.validate_deadlock_free()
    print(f"deadlock gate: {fabric} with table routing -> {report.describe()}")

    # 4. The same seeded search on both platforms, same pricing model.
    print("\nsimulated annealing (identical seeds and schedule):")
    mesh_cost = run(f"{mesh_platform.mesh} / xy", mesh_platform, cdcg)
    fabric_cost = run(f"{fabric} / table", irregular_platform, cdcg)

    ratio = fabric_cost / mesh_cost
    print(
        f"\nthe hub-ring fabric prices at {ratio:.2f}x the mesh's "
        f"communication energy for this workload -- "
        + (
            "hub hops are expensive; a mesh suits this traffic better."
            if ratio > 1
            else "its short hub routes suit this traffic pattern."
        )
    )
    print(
        "every registered engine (greedy through NSGA-II) accepts the same "
        "irregular platform unchanged; see docs/topologies.md."
    )


if __name__ == "__main__":
    main()
