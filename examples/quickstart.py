#!/usr/bin/env python3
"""Quickstart: map an application onto a mesh NoC and compare CWM with CDCM.

This walks through the library's core workflow on the paper's own worked
example (Figures 1-5):

1. build the application model (a CDCG: packets, computation times,
   dependences);
2. describe the target platform (2x2 mesh, wormhole XY routing, technology);
3. search for mappings with the CWM and the CDCM objectives;
4. evaluate both mappings under the full CDCM model and print what the CWM
   abstraction cannot see: execution time, contention and static energy.

Run with:  python examples/quickstart.py
"""

from repro import FRWFramework
from repro.analysis.figures import figure4_diagram, figure5_diagram
from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_mappings,
    paper_example_platform,
)


def main() -> None:
    # 1. The application: 4 cores, 6 packets, explicit dependences.
    cdcg = paper_example_cdcg()
    print(f"application: {cdcg}")
    for packet in cdcg.packets:
        print(
            f"  packet {packet.name}: {packet.source}->{packet.target}, "
            f"{packet.bits} bits after {packet.computation_time:g} ns of computation"
        )

    # 2. The platform: 2x2 mesh, XY routing, tr=2/tl=1 cycles, 1-bit flits.
    platform = paper_example_platform()
    print()
    print(platform.describe())

    # 3. Search for mappings.  Both models explore the same space; they only
    #    differ in what they can measure.
    framework = FRWFramework(cdcg, platform)
    cwm_outcome = framework.map(model="cwm", method="exhaustive", seed=1)
    cdcm_outcome = framework.map(model="cdcm", method="exhaustive", seed=1)
    print()
    print(f"CWM search:  best dynamic energy  = {cwm_outcome.cost:8.1f} pJ")
    print(f"CDCM search: best total energy    = {cdcm_outcome.cost:8.1f} pJ")

    # 4. Judge both mappings with the full CDCM model.
    print()
    for name, mapping in (("CWM", cwm_outcome.mapping), ("CDCM", cdcm_outcome.mapping)):
        report = framework.evaluate(mapping)
        print(
            f"{name:5s} mapping: texec = {report.execution_time:6.1f} ns, "
            f"ENoC = {report.total_energy:6.1f} pJ "
            f"(dynamic {report.dynamic_energy:5.1f} + static {report.static_energy:4.1f}), "
            f"contention = {report.total_contention_delay:4.1f} ns"
        )

    # The two reference mappings of the paper, for comparison.
    print()
    print("reference mappings from Figure 1(c, d):")
    for name, mapping in paper_example_mappings().items():
        report = framework.evaluate(mapping)
        print(
            f"  mapping ({name}): texec = {report.execution_time:5.1f} ns, "
            f"ENoC = {report.total_energy:5.1f} pJ"
        )

    # Bonus: the paper's timing diagrams (Figures 4 and 5), as ASCII charts.
    print()
    print(figure4_diagram(width=88))
    print()
    print(figure5_diagram(width=88))


if __name__ == "__main__":
    main()
