#!/usr/bin/env python3
"""Sweep NoC sizes for one Table-1 benchmark and compare CWM vs CDCM mappings.

The paper observes "a slight trend of energy consumption saving and execution
time reduction when the NoC size increases" (Table 2).  This example takes a
single generated benchmark and maps it onto progressively larger meshes,
running the full CWM-vs-CDCM comparison on each and printing the
execution-time reduction (ETR) and the energy savings for both technology
presets, so the trend can be inspected directly.

Run with:  python examples/large_noc_sweep.py
(add --full to include a 6x6 mesh; the CDCM search cost grows with both the
packet count and the number of tiles.  Set REPRO_EXAMPLES_SMOKE=1 for the
tiny-parameter CI smoke configuration.)
"""

import os
import sys

from repro import Mesh, Platform
from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.energy.technology import TECH_0_07UM, TECH_0_35UM
from repro.search.annealing import AnnealingSchedule
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec


SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0", "false")


def main() -> None:
    full = "--full" in sys.argv and not SMOKE

    # One medium benchmark, reused across all NoC sizes.
    spec = TgffSpec(
        name="sweep-benchmark",
        num_cores=12,
        num_packets=60,
        total_bits=120_000,
        computation_scale=0.5,
    )
    cdcg = TgffLikeGenerator(42).generate(spec)
    print(
        f"benchmark: {cdcg.num_cores} cores, {cdcg.num_packets} packets, "
        f"{cdcg.total_bits():,} bits\n"
    )

    # use_delta=True: sweeps care about throughput, not bit-stable table rows,
    # so let the CWM annealer price moves incrementally (see repro.eval).
    config = ComparisonConfig(
        annealing_schedule=AnnealingSchedule(
            cooling_factor=0.92,
            max_evaluations=800 if SMOKE else 5_000,
            stall_plateaus=10,
        ),
        use_delta=True,
    )

    meshes = [Mesh(3, 4)] if SMOKE else [Mesh(3, 4), Mesh(4, 4), Mesh(5, 4)]
    if full:
        meshes.append(Mesh(6, 6))

    header = (
        f"{'NoC':<8} {'ETR':>8} {'ECS 0.35um':>12} {'ECS 0.07um':>12} "
        f"{'CWM texec (ns)':>15} {'CDCM texec (ns)':>16}"
    )
    print(header)
    print("-" * len(header))
    for mesh in meshes:
        platform = Platform(mesh=mesh)
        comparison = compare_models(cdcg, platform, config, seed=7)
        print(
            f"{mesh.width}x{mesh.height:<6} "
            f"{comparison.execution_time_reduction:>8.1%} "
            f"{comparison.energy_saving(TECH_0_35UM.name):>12.2%} "
            f"{comparison.energy_saving(TECH_0_07UM.name):>12.1%} "
            f"{comparison.cwm_mapping_time:>15.1f} "
            f"{comparison.cdcm_mapping_time:>16.1f}"
        )


if __name__ == "__main__":
    main()
