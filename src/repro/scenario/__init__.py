"""Dynamic scenarios: fault-injected fabrics and incremental remapping.

This package is the scenario layer of the mapping system: deterministic,
seeded event scripts (:mod:`repro.scenario.events`) replayed against a
shared NoC fabric by the :class:`~repro.scenario.runner.ScenarioRunner`.
Faults rebuild the degraded fabric through
:meth:`~repro.noc.topology.IrregularTopology.from_crg`, re-derive table
routing and re-certify deadlock freedom before any traffic is priced
(:mod:`repro.scenario.fabric`); applications are then remapped
incrementally — only the region an event touched is re-searched, by any
registry engine (:mod:`repro.scenario.remap`).

See docs/scenarios.md for the event model, the fault/certify/remap data
flow and the determinism contract, and ``tests/scenario_harness.py`` for
the conformance invariants every runner configuration must satisfy.
"""

from repro.scenario.events import (
    ApplicationArrival,
    ApplicationDeparture,
    EVENT_TYPES,
    LinkFailure,
    LinkRepair,
    RouterFailure,
    ScenarioEvent,
    ScenarioScript,
    event_from_dict,
    random_script,
)
from repro.scenario.fabric import (
    FAULT_EVENT_KINDS,
    FabricManager,
    FabricView,
    ScenarioOutcome,
    degraded_topology_from_crg,
)
from repro.scenario.remap import RegionObjective, affected_cores, remap_region
from repro.scenario.runner import (
    DEFAULT_REGION_SCHEDULE,
    REMAP_MODES,
    SCENARIO_MODELS,
    ScenarioEventRecord,
    ScenarioRunner,
    ScenarioTrace,
)

__all__ = [
    "ScenarioEvent",
    "ApplicationArrival",
    "ApplicationDeparture",
    "LinkFailure",
    "LinkRepair",
    "RouterFailure",
    "EVENT_TYPES",
    "event_from_dict",
    "ScenarioScript",
    "random_script",
    "FAULT_EVENT_KINDS",
    "ScenarioOutcome",
    "FabricView",
    "FabricManager",
    "degraded_topology_from_crg",
    "affected_cores",
    "RegionObjective",
    "remap_region",
    "REMAP_MODES",
    "SCENARIO_MODELS",
    "DEFAULT_REGION_SCHEDULE",
    "ScenarioEventRecord",
    "ScenarioTrace",
    "ScenarioRunner",
]
