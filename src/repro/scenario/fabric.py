"""Degraded-fabric management: apply faults, rebuild, re-certify.

The fault half of the scenario engine.  A :class:`FabricManager` owns the
healthy base :class:`~repro.noc.platform.Platform` and the current fault
state (failed undirected links, failed routers).  Every fault event is
*previewed* before it is committed:

1. the surviving communication resource graph is rebuilt — failed routers
   drop out together with every link through them, failed links drop both
   directions — and compacted to dense tile indices so
   :meth:`~repro.noc.topology.IrregularTopology.from_crg` accepts it;
2. :class:`~repro.noc.routing.TableRouting` next hops are re-derived for the
   degraded fabric (the table is keyed by the new topology's
   ``cache_token``, so repeated fault states share tables);
3. the routing/topology pair is re-certified with
   :func:`~repro.noc.deadlock.validate_deadlock_free` **before** any traffic
   is priced on it.

A fabric that disconnects, loses every link, or fails certification is not a
crash: the preview carries a rejected :class:`ScenarioOutcome` (with the
witness cycle translated back to base tile indices) and the committed fault
state stays unchanged — the invariant the conformance harness pins is that
the *active* fabric is certified after every applied fault.

Because failed routers are compacted away, every :class:`FabricView` carries
the base↔local tile translation; the scenario runner keeps all placements in
stable base indices and translates only at the pricing boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.graphs.crg import CRG
from repro.noc.deadlock import DeadlockReport
from repro.noc.platform import Platform
from repro.scenario.events import (
    LinkFailure,
    LinkRepair,
    RouterFailure,
    ScenarioEvent,
)
from repro.utils.errors import ConfigurationError, GraphValidationError

#: Normalised undirected link identity: ``(min_tile, max_tile)``.
Link = Tuple[int, int]

#: The fault events :class:`FabricManager` knows how to preview.
FAULT_EVENT_KINDS = (LinkFailure.kind, LinkRepair.kind, RouterFailure.kind)


@dataclass(frozen=True)
class ScenarioOutcome:
    """First-class verdict of applying one scenario event.

    Every event — applied or rejected — produces one of these; fault events
    additionally carry the certification verdict of the fabric they tried to
    install.  A failed certification or a disconnecting fault is a rejected
    outcome, never an exception.

    Attributes
    ----------
    status:
        ``"applied"`` or ``"rejected"``.
    reason:
        Why a rejected event was rejected (``"deadlock"``,
        ``"disconnected"``, ``"no-capacity"``, ``"unknown-application"``,
        ...); empty for applied events.
    deadlock_free:
        Certification verdict of the fabric the event tried to install
        (``True`` for events that did not touch the fabric).
    num_channels, num_dependencies:
        Size of the analysed channel dependency graph.
    cycle:
        Witness cycle in *base* tile indices when certification failed.
    """

    status: str
    reason: str = ""
    deadlock_free: bool = True
    num_channels: int = 0
    num_dependencies: int = 0
    cycle: Tuple[Link, ...] = ()

    @property
    def applied(self) -> bool:
        """Whether the event took effect (``status == "applied"``)."""
        return self.status == "applied"

    def token(self) -> Tuple:
        """Stable hashable identity used by the trace digest."""
        return (
            self.status,
            self.reason,
            self.deadlock_free,
            self.num_channels,
            self.num_dependencies,
            self.cycle,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.applied:
            return (
                f"applied (deadlock-free, {self.num_channels} channels, "
                f"{self.num_dependencies} dependencies)"
            )
        return f"rejected ({self.reason})"


@dataclass(frozen=True)
class FabricView:
    """One certified (or rejected) snapshot of the fabric.

    Attributes
    ----------
    platform:
        The platform to price traffic on.  The healthy base platform when no
        faults are active; otherwise an
        :class:`~repro.noc.topology.IrregularTopology` over the surviving
        tiles with table routing.
    to_local / to_base:
        Tile translation between stable base indices and the compacted
        indices of the degraded topology (identity when healthy).
    certification:
        The :class:`~repro.noc.deadlock.DeadlockReport` of the platform.
    failed_links, failed_routers:
        The fault state this view realises.
    """

    platform: Platform
    to_local: Dict[int, int]
    to_base: Dict[int, int]
    certification: DeadlockReport
    failed_links: FrozenSet[Link]
    failed_routers: FrozenSet[int]

    @property
    def degraded(self) -> bool:
        """Whether any fault is active."""
        return bool(self.failed_links or self.failed_routers)

    @property
    def alive_tiles(self) -> List[int]:
        """Surviving tiles in base indices, ascending."""
        return sorted(self.to_local)

    def route_base(self, source: int, target: int) -> Tuple[int, ...]:
        """Route between two base tiles, returned in base indices.

        Both endpoints must be alive in this view (callers translate
        placements, which never reference dead tiles).
        """
        local = self.platform.route(self.to_local[source], self.to_local[target])
        return tuple(self.to_base[tile] for tile in local)


class FabricManager:
    """Owns the fault state and builds certified views of the fabric.

    Fault events are applied in two phases so a runner can veto a
    structurally valid fabric for its own reasons (e.g. insufficient
    capacity for the live placements): :meth:`preview` builds and certifies
    the would-be fabric without changing anything, :meth:`commit` installs
    a previewed state.  Views are memoised by fault state, so repair
    sequences that revisit earlier states rebuild nothing.
    """

    def __init__(self, base_platform: Platform) -> None:
        self._base = base_platform
        self._failed_links: FrozenSet[Link] = frozenset()
        self._failed_routers: FrozenSet[int] = frozenset()
        base_crg = base_platform.topology.to_crg()
        self._positions = {tile.index: tile.position for tile in base_crg.tiles}
        self._base_links = sorted(
            (link.source, link.target) for link in base_crg.links
        )
        self._undirected = {
            (min(a, b), max(a, b)) for a, b in self._base_links
        }
        self._views: Dict[Tuple[FrozenSet[Link], FrozenSet[int]], FabricView] = {}

    @property
    def base_platform(self) -> Platform:
        """The healthy platform the manager was built around."""
        return self._base

    @property
    def failed_links(self) -> FrozenSet[Link]:
        """Currently failed undirected links, as ``(min, max)`` pairs."""
        return self._failed_links

    @property
    def failed_routers(self) -> FrozenSet[int]:
        """Currently failed routers (base tile indices)."""
        return self._failed_routers

    def current_view(self) -> FabricView:
        """The view of the currently committed fault state."""
        return self._view_for(self._failed_links, self._failed_routers)

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def preview(
        self, event: ScenarioEvent
    ) -> Tuple[Optional[FabricView], ScenarioOutcome]:
        """Build and certify the fabric *event* would install; commit nothing.

        Returns
        -------
        (view, outcome)
            The certified view and an applied outcome on success; ``(None,
            rejected outcome)`` when the event is a no-op against the
            current fault state, disconnects the fabric, or fails
            certification.
        """
        state = self._next_state(event)
        if isinstance(state, ScenarioOutcome):
            return None, state
        links, routers = state
        view, outcome = self._build_view(links, routers)
        if view is None:
            return None, outcome
        return view, outcome

    def commit(self, view: FabricView) -> None:
        """Install a previewed view's fault state as the current one."""
        self._failed_links = view.failed_links
        self._failed_routers = view.failed_routers

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_state(self, event: ScenarioEvent):
        """Fault state *event* asks for, or a rejected outcome if a no-op."""
        links, routers = self._failed_links, self._failed_routers
        if isinstance(event, LinkFailure):
            if event.link not in self._undirected:
                return _rejected("unknown-link")
            if event.link in links:
                return _rejected("link-already-failed")
            return links | {event.link}, routers
        if isinstance(event, LinkRepair):
            if event.link not in links:
                return _rejected("link-not-failed")
            return links - {event.link}, routers
        if isinstance(event, RouterFailure):
            if not self._base.topology.contains(event.tile):
                return _rejected("unknown-router")
            if event.tile in routers:
                return _rejected("router-already-failed")
            return links, routers | {event.tile}
        raise ConfigurationError(
            f"{type(self).__name__} cannot apply event kind "
            f"{event.kind!r}; fault kinds are {FAULT_EVENT_KINDS}"
        )

    def _view_for(
        self, links: FrozenSet[Link], routers: FrozenSet[int]
    ) -> FabricView:
        view, outcome = self._build_view(links, routers)
        if view is None:  # pragma: no cover - committed states always build
            raise ConfigurationError(
                f"committed fault state failed to rebuild: {outcome.describe()}"
            )
        return view

    def _build_view(
        self, links: FrozenSet[Link], routers: FrozenSet[int]
    ) -> Tuple[Optional[FabricView], ScenarioOutcome]:
        """Rebuild, re-route and re-certify the fabric of one fault state."""
        key = (links, routers)
        cached = self._views.get(key)
        if cached is not None:
            return cached, _applied(cached.certification)

        if not links and not routers:
            platform = self._base
            identity = {tile: tile for tile in platform.topology.tiles()}
            certification = platform.validate_deadlock_free(raise_on_cycle=False)
            view = FabricView(
                platform=platform,
                to_local=identity,
                to_base=dict(identity),
                certification=certification,
                failed_links=links,
                failed_routers=routers,
            )
            self._views[key] = view
            return view, _applied(certification)

        alive = [
            tile
            for tile in self._base.topology.tiles()
            if tile not in routers
        ]
        if not alive:
            return None, _rejected("disconnected")
        to_local = {base: local for local, base in enumerate(alive)}
        to_base = {local: base for base, local in to_local.items()}

        crg = CRG(f"degraded-{len(links)}l-{len(routers)}r")
        for base_tile in alive:
            x, y = self._positions[base_tile]
            crg.add_tile(to_local[base_tile], x, y)
        for source, target in self._base_links:
            if source in routers or target in routers:
                continue
            if (min(source, target), max(source, target)) in links:
                continue
            crg.add_link(to_local[source], to_local[target])

        try:
            topology = degraded_topology_from_crg(crg)
        except (ConfigurationError, GraphValidationError):
            return None, _rejected("disconnected")

        platform = self._base.with_topology(topology).with_routing("table")
        certification = platform.validate_deadlock_free(raise_on_cycle=False)
        if not certification:
            witness = tuple(
                (to_base[a], to_base[b]) for a, b in certification.cycle
            )
            return None, ScenarioOutcome(
                status="rejected",
                reason="deadlock",
                deadlock_free=False,
                num_channels=certification.num_channels,
                num_dependencies=certification.num_dependencies,
                cycle=witness,
            )
        view = FabricView(
            platform=platform,
            to_local=to_local,
            to_base=to_base,
            certification=certification,
            failed_links=links,
            failed_routers=routers,
        )
        self._views[key] = view
        return view, _applied(certification)


def degraded_topology_from_crg(crg: CRG):
    """Build the degraded topology through ``IrregularTopology.from_crg``.

    Kept as a module-level seam so tests can assert degraded fabrics really
    travel through the public ``from_crg`` constructor (and monkeypatch it).
    """
    from repro.noc.topology import IrregularTopology

    return IrregularTopology.from_crg(crg)


def _applied(certification: DeadlockReport) -> ScenarioOutcome:
    return ScenarioOutcome(
        status="applied",
        deadlock_free=certification.deadlock_free,
        num_channels=certification.num_channels,
        num_dependencies=certification.num_dependencies,
    )


def _rejected(reason: str) -> ScenarioOutcome:
    return ScenarioOutcome(status="rejected", reason=reason)


__all__ = [
    "Link",
    "FAULT_EVENT_KINDS",
    "ScenarioOutcome",
    "FabricView",
    "FabricManager",
    "degraded_topology_from_crg",
]
