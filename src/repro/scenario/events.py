"""Typed scenario events and seeded, content-addressed scenario scripts.

A *scenario* is a deterministic sequence of lifecycle and fault events played
against one NoC fabric: applications arrive and depart, links fail and come
back, routers die.  This module defines the event vocabulary — small frozen
dataclasses with a stable ``token()`` identity — and the
:class:`ScenarioScript` container that fixes the base topology, the event
sequence and the seed every downstream decision (placement search, engine
randomness) is derived from.

Scripts are *content-addressed*: :meth:`ScenarioScript.content_hash` digests
the topology identity (:func:`~repro.noc.topology.topology_cache_token`),
the seed and every event token with
:func:`~repro.utils.hashing.stable_digest`, so two processes agree on the
digest of the same scenario and any edit to any event changes it.  They are
also *replayable as data*: :meth:`ScenarioScript.to_dict` /
:meth:`ScenarioScript.from_dict` round-trip through plain JSON-able
structures, which is how the conformance harness prints failing fuzz cases
(see ``tests/scenario_harness.py``).

:func:`random_script` generates seeded fuzz scripts — mixed arrivals,
departures and faults that track the fabric state just enough to stay mostly
plausible (repairs target failed links, departures target live applications)
while still exercising the rejection paths.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, List, Optional, Tuple, Union

from repro.graphs.cdcg import CDCG
from repro.noc.topology import (
    IrregularTopology,
    Mesh,
    Topology,
    Torus,
    get_topology,
    topology_cache_token,
)
from repro.utils.errors import ConfigurationError
from repro.utils.hashing import stable_digest
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class of all scenario events.

    Events are frozen dataclasses identified by a class-level ``kind``
    string; :meth:`token` flattens an event into a hashable tuple used by
    :meth:`ScenarioScript.content_hash` and the trace digests.
    """

    #: Registry identifier of the event type (set by each subclass).
    kind: ClassVar[str] = "abstract"

    def token(self) -> Tuple:
        """Stable hashable identity: the kind plus every field value."""
        return (self.kind,) + tuple(
            getattr(self, field.name) for field in fields(self)
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = ", ".join(
            f"{field.name}={getattr(self, field.name)!r}"
            for field in fields(self)
        )
        return f"{self.kind}({parts})"

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation (``kind`` plus the field values)."""
        payload: Dict[str, object] = {"kind": self.kind}
        for field in fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload


@dataclass(frozen=True)
class ApplicationArrival(ScenarioEvent):
    """A new application arrives and must be placed on free tiles.

    The application itself is generated deterministically from the event
    fields by the TGFF-like benchmark generator, so the event *is* the
    workload — no out-of-band graph needs to travel with the script.

    Attributes
    ----------
    app:
        Application name; must be unique among live applications.
    num_cores, num_packets, total_bits:
        Aggregates handed to :class:`~repro.workloads.tgff.TgffSpec`.
    seed:
        Generation seed of the application graph.
    """

    app: str
    num_cores: int
    num_packets: int
    total_bits: int
    seed: int

    kind: ClassVar[str] = "arrival"

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError(
                f"arrival {self.app!r} needs at least one core, "
                f"got {self.num_cores}"
            )

    def build(self, computation_scale: float = 0.5) -> CDCG:
        """Generate the arriving application's CDCG (deterministic)."""
        from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

        spec = TgffSpec(
            name=self.app,
            num_cores=self.num_cores,
            num_packets=self.num_packets,
            total_bits=self.total_bits,
            computation_scale=computation_scale,
        )
        return TgffLikeGenerator(self.seed).generate(spec)


@dataclass(frozen=True)
class ApplicationDeparture(ScenarioEvent):
    """A live application finishes and releases its tiles."""

    app: str

    kind: ClassVar[str] = "departure"


@dataclass(frozen=True)
class LinkFailure(ScenarioEvent):
    """Both directions of the link between two adjacent tiles fail."""

    source: int
    target: int

    kind: ClassVar[str] = "link-failure"

    def __post_init__(self) -> None:
        _check_link_endpoints(self.source, self.target)

    @property
    def link(self) -> Tuple[int, int]:
        """Normalised undirected link identity ``(min, max)``."""
        return (min(self.source, self.target), max(self.source, self.target))


@dataclass(frozen=True)
class LinkRepair(ScenarioEvent):
    """A previously failed link comes back in both directions."""

    source: int
    target: int

    kind: ClassVar[str] = "link-repair"

    def __post_init__(self) -> None:
        _check_link_endpoints(self.source, self.target)

    @property
    def link(self) -> Tuple[int, int]:
        """Normalised undirected link identity ``(min, max)``."""
        return (min(self.source, self.target), max(self.source, self.target))


@dataclass(frozen=True)
class RouterFailure(ScenarioEvent):
    """A router dies: its tile and every link through it leave the fabric."""

    tile: int

    kind: ClassVar[str] = "router-failure"

    def __post_init__(self) -> None:
        if self.tile < 0:
            raise ConfigurationError(
                f"router index must be non-negative, got {self.tile}"
            )


def _check_link_endpoints(source: int, target: int) -> None:
    if source == target:
        raise ConfigurationError(
            f"link endpoints must differ, got {source}->{target}"
        )
    if source < 0 or target < 0:
        raise ConfigurationError(
            f"tile indices must be non-negative, got {source}->{target}"
        )


#: Event classes by their ``kind`` string (used by script deserialisation).
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        ApplicationArrival,
        ApplicationDeparture,
        LinkFailure,
        LinkRepair,
        RouterFailure,
    )
}


def event_from_dict(payload: Dict[str, object]) -> ScenarioEvent:
    """Rebuild an event from its :meth:`ScenarioEvent.to_dict` payload."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(str(kind))
    if cls is None:
        raise ConfigurationError(
            f"unknown scenario event kind {kind!r}; "
            f"available: {sorted(EVENT_TYPES)}"
        )
    return cls(**data)


@dataclass(frozen=True)
class ScenarioScript:
    """A named, seeded event sequence on one base fabric.

    The ``topology`` field accepts a registry spec string (``"mesh:4x4"``)
    or a concrete :class:`~repro.noc.topology.Topology`; it is resolved once
    at construction, exactly like :class:`~repro.noc.platform.Platform`.

    Attributes
    ----------
    name:
        Script label (scenario-family identifier in the workload suite).
    topology:
        The healthy base fabric every fault is applied against.
    events:
        The ordered event sequence.
    seed:
        Root seed; every stochastic decision of a replay (placement
        search randomness) is derived from it and the event index, so the
        same script replays bit-identically.
    """

    name: str
    topology: Union[Topology, str]
    events: Tuple[ScenarioEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.topology, str):
            object.__setattr__(self, "topology", get_topology(self.topology))
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, ScenarioEvent):
                raise ConfigurationError(
                    f"script {self.name!r} events must be ScenarioEvent "
                    f"instances, got {type(event).__name__}"
                )

    def content_hash(self) -> str:
        """Stable digest of everything that determines a replay.

        Covers the name, the topology identity
        (:func:`~repro.noc.topology.topology_cache_token`), the seed and
        every event token — any edit to any of them changes the digest.
        """
        return stable_digest(
            (
                "scenario-script",
                self.name,
                topology_cache_token(self.topology),
                self.seed,
                tuple(event.token() for event in self.events),
            )
        )

    def describe(self) -> str:
        """Multi-line human-readable summary of the script."""
        lines = [
            f"scenario {self.name!r} on {self.topology} "
            f"(seed {self.seed}, {len(self.events)} events)"
        ]
        for index, event in enumerate(self.events):
            lines.append(f"  [{index}] {event.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Replayable serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation; :func:`ScenarioScript.from_dict` inverts it.

        This is the *replayable form* the conformance harness prints when a
        fuzz script fails an invariant: paste the dict back through
        :meth:`from_dict` and the failing replay is reproduced exactly.
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "topology": _topology_to_payload(self.topology),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioScript":
        """Rebuild a script from its :meth:`to_dict` payload."""
        return cls(
            name=str(payload["name"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            topology=_topology_from_payload(payload["topology"]),
            events=tuple(
                event_from_dict(item)  # type: ignore[arg-type]
                for item in payload["events"]  # type: ignore[union-attr]
            ),
        )


def _topology_to_payload(topology: Union[Topology, str]) -> object:
    """Serialise a topology as a spec string or an edge-list payload."""
    if isinstance(topology, str):
        return topology
    if isinstance(topology, Torus):
        return f"torus:{topology.width}x{topology.height}"
    if isinstance(topology, Mesh):
        return f"mesh:{topology.width}x{topology.height}"
    if isinstance(topology, IrregularTopology):
        return {
            "name": topology.name,
            "num_tiles": topology.num_tiles,
            "edges": [list(edge) for edge in topology.edges()],
        }
    raise ConfigurationError(
        f"cannot serialise topology {topology!r}; expected a spec string, "
        f"Mesh, Torus or IrregularTopology"
    )


def _topology_from_payload(payload: object) -> Topology:
    """Inverse of :func:`_topology_to_payload`."""
    if isinstance(payload, str):
        return get_topology(payload)
    if isinstance(payload, dict):
        return IrregularTopology(
            [tuple(edge) for edge in payload["edges"]],
            num_tiles=int(payload["num_tiles"]),
            name=str(payload.get("name", "irregular")),
            bidirectional=False,
        )
    raise ConfigurationError(
        f"cannot rebuild a topology from {payload!r}"
    )


def random_script(
    topology: Union[Topology, str],
    seed: RandomSource = None,
    num_events: int = 6,
    name: Optional[str] = None,
    max_failed_links: int = 2,
    max_failed_routers: int = 1,
    max_apps: int = 3,
) -> ScenarioScript:
    """Generate a seeded fuzz script of mixed lifecycle and fault events.

    The generator tracks a light model of the fabric state so most events
    are plausible (repairs target links that actually failed, departures
    target live applications, arrivals respect remaining capacity) while
    duplicate-arrival and over-failure corner cases still occur naturally —
    the runner treats implausible events as first-class rejections, so the
    fuzzer intentionally does not filter them all out.

    Parameters
    ----------
    topology:
        Base fabric (spec string or :class:`~repro.noc.topology.Topology`).
    seed:
        Root seed; also becomes the script seed (scripts built from the
        same topology and seed are identical).
    num_events:
        Number of events to generate.
    max_failed_links, max_failed_routers:
        Soft caps on concurrently failed resources, keeping most degraded
        fabrics connected so the interesting (applied) paths dominate.
    max_apps:
        Soft cap on concurrently live applications.
    """
    resolved = get_topology(topology) if isinstance(topology, str) else topology
    script_seed = seed if isinstance(seed, int) else None
    rng = ensure_rng(seed)
    if script_seed is None:
        script_seed = int(rng.integers(0, 2**31 - 1))
        rng = ensure_rng(script_seed)

    undirected = sorted(
        {(min(a, b), max(a, b)) for a, b in resolved.links()}
    )
    live_apps: List[str] = []
    failed_links: List[Tuple[int, int]] = []
    failed_routers: List[int] = []
    used_tiles = 0
    arrivals = 0

    events: List[ScenarioEvent] = []
    while len(events) < num_events:
        choice = float(rng.random())
        if choice < 0.35:
            # Arrival, capacity permitting.
            alive = resolved.num_tiles - len(failed_routers)
            num_cores = int(rng.integers(2, 5))
            if len(live_apps) >= max_apps or used_tiles + num_cores > alive:
                continue
            arrivals += 1
            app = f"app{arrivals}"
            events.append(
                ApplicationArrival(
                    app=app,
                    num_cores=num_cores,
                    num_packets=int(rng.integers(num_cores, 2 * num_cores + 3)),
                    total_bits=int(rng.integers(1_000, 20_000)),
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
            )
            live_apps.append(app)
            used_tiles += num_cores
        elif choice < 0.50:
            # Departure of a live application.
            if not live_apps:
                continue
            index = int(rng.integers(len(live_apps)))
            app = live_apps.pop(index)
            events.append(ApplicationDeparture(app=app))
            used_tiles = max(0, used_tiles - 4)
        elif choice < 0.75:
            # Link failure.
            candidates = [
                link for link in undirected if link not in failed_links
            ]
            if not candidates or len(failed_links) >= max_failed_links:
                continue
            link = candidates[int(rng.integers(len(candidates)))]
            events.append(LinkFailure(source=link[0], target=link[1]))
            failed_links.append(link)
        elif choice < 0.90:
            # Repair of a failed link.
            if not failed_links:
                continue
            index = int(rng.integers(len(failed_links)))
            link = failed_links.pop(index)
            events.append(LinkRepair(source=link[0], target=link[1]))
        else:
            # Router failure.
            if len(failed_routers) >= max_failed_routers:
                continue
            tile = int(rng.integers(resolved.num_tiles))
            if tile in failed_routers:
                continue
            events.append(RouterFailure(tile=tile))
            failed_routers.append(tile)

    return ScenarioScript(
        name=name or f"fuzz-{script_seed}",
        topology=resolved,
        events=tuple(events),
        seed=script_seed,
    )


__all__ = [
    "ScenarioEvent",
    "ApplicationArrival",
    "ApplicationDeparture",
    "LinkFailure",
    "LinkRepair",
    "RouterFailure",
    "EVENT_TYPES",
    "event_from_dict",
    "ScenarioScript",
    "random_script",
]
