"""Deterministic scenario replay: scripts in, per-event traces out.

:class:`ScenarioRunner` replays a :class:`~repro.scenario.events.ScenarioScript`
event by event:

* **arrivals** generate the application deterministically from the event,
  then place it on free tiles with a region search
  (:func:`~repro.scenario.remap.remap_region`) driven by any registry
  engine;
* **departures** release the application's tiles;
* **faults and repairs** go through the
  :class:`~repro.scenario.fabric.FabricManager` — rebuild, re-route,
  re-certify — and, when the new fabric is certified, remap only the
  affected region (``remap="incremental"``) or every live placement
  (``remap="full"``); an uncertifiable or disconnecting fault is a rejected
  :class:`~repro.scenario.fabric.ScenarioOutcome` and the previous fabric
  stays active.

After every event the runner prices each live application through its
:class:`~repro.eval.context.EvaluationContext` on the active fabric and
appends a :class:`ScenarioEventRecord` — outcome, certification verdict,
remap scope, full placements and metrics — to the
:class:`ScenarioTrace`.

Determinism contract
--------------------
A trace is a pure function of ``(script, runner configuration)``: every
random draw comes from a generator seeded by ``(script.seed, event_index,
app_ordinal)``, pricing flows through the memoised contexts whose results
are pinned bit-identical across serial and pooled backends, and
:meth:`ScenarioTrace.content_hash` digests every record — so replaying the
same script twice, or once per backend, yields byte-equal digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mapping import Mapping
from repro.eval.context import (
    CdcmEvaluationContext,
    CwmEvaluationContext,
    EvaluationContext,
)
from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform
from repro.scenario.events import (
    ApplicationArrival,
    ApplicationDeparture,
    ScenarioEvent,
    ScenarioScript,
)
from repro.scenario.fabric import (
    FAULT_EVENT_KINDS,
    FabricManager,
    FabricView,
    ScenarioOutcome,
)
from repro.scenario.remap import affected_cores, remap_region
from repro.search.annealing import AnnealingSchedule
from repro.search.registry import get_searcher
from repro.utils.errors import ConfigurationError
from repro.utils.hashing import stable_digest

#: Remap modes accepted by :class:`ScenarioRunner`.
REMAP_MODES = ("incremental", "full")

#: Default annealing schedule of region searches.  Regions are small (a few
#: movable cores over a handful of tiles), so a short, stall-bounded budget
#: replaces the paper-scale default of 100k evaluations — pass an explicit
#: ``engine_kwargs={"schedule": ...}`` to override.
DEFAULT_REGION_SCHEDULE = AnnealingSchedule(
    max_evaluations=300, stall_plateaus=5
)

#: Cost models accepted by :class:`ScenarioRunner`.
SCENARIO_MODELS = ("cwm", "cdcm")


@dataclass(frozen=True)
class ScenarioEventRecord:
    """Everything one event did to the system — one trace row.

    Attributes
    ----------
    index:
        Event position in the script.
    kind:
        Event kind string.
    event_token:
        The event's stable identity (:meth:`ScenarioEvent.token`).
    outcome:
        Applied/rejected verdict with the certification report.
    remapped:
        ``"app:core"`` labels of every core re-searched by this event.
    searched_tiles:
        Total size of the searched tile regions (summed over applications).
    alive_tiles:
        Surviving tile count of the active fabric after the event.
    placements:
        Full placement snapshot: ``(app, ((core, base_tile), ...))`` sorted
        by application name.
    metrics:
        Per-application component vectors: ``(app, ((name, value), ...))``.
    total_cost:
        Sum of the per-application scalar costs on the active fabric.
    """

    index: int
    kind: str
    event_token: Tuple
    outcome: ScenarioOutcome
    remapped: Tuple[str, ...]
    searched_tiles: int
    alive_tiles: int
    placements: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...]
    metrics: Tuple[Tuple[str, Tuple[Tuple[str, float], ...]], ...]
    total_cost: float

    def token(self) -> Tuple:
        """Stable hashable identity of the full record."""
        return (
            self.index,
            self.kind,
            self.event_token,
            self.outcome.token(),
            self.remapped,
            self.searched_tiles,
            self.alive_tiles,
            self.placements,
            self.metrics,
            self.total_cost,
        )

    def placement_of(self, app: str) -> Dict[str, int]:
        """Placement snapshot of one application as a plain dict."""
        for name, assignment in self.placements:
            if name == app:
                return dict(assignment)
        raise KeyError(app)

    @property
    def apps(self) -> Tuple[str, ...]:
        """Live application names at this record, sorted."""
        return tuple(name for name, _ in self.placements)


@dataclass(frozen=True)
class ScenarioTrace:
    """The complete, digestible history of one scenario replay.

    Attributes
    ----------
    script_hash:
        :meth:`~repro.scenario.events.ScenarioScript.content_hash` of the
        replayed script.
    base_outcome:
        Certification verdict of the healthy base fabric (before event 0).
    records:
        One :class:`ScenarioEventRecord` per script event, in order.
    """

    script_hash: str
    base_outcome: ScenarioOutcome
    records: Tuple[ScenarioEventRecord, ...]

    def content_hash(self) -> str:
        """Stable digest of the whole trace.

        Two replays of the same script under the same runner configuration
        must produce equal digests — this is the bit-identity the
        conformance harness asserts across replays and across pricing
        backends.
        """
        return stable_digest(
            (
                "scenario-trace",
                self.script_hash,
                self.base_outcome.token(),
                tuple(record.token() for record in self.records),
            )
        )

    @property
    def num_applied(self) -> int:
        """Number of events that took effect."""
        return sum(1 for record in self.records if record.outcome.applied)

    @property
    def total_searched_tiles(self) -> int:
        """Total searched-region size over the whole replay."""
        return sum(record.searched_tiles for record in self.records)

    @property
    def final_cost(self) -> float:
        """Total cost after the last event (0.0 for an empty script)."""
        return self.records[-1].total_cost if self.records else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation (for logs and bench artifacts)."""
        return {
            "script_hash": self.script_hash,
            "content_hash": self.content_hash(),
            "base_certified": self.base_outcome.deadlock_free,
            "records": [
                {
                    "index": record.index,
                    "kind": record.kind,
                    "status": record.outcome.status,
                    "reason": record.outcome.reason,
                    "deadlock_free": record.outcome.deadlock_free,
                    "remapped": list(record.remapped),
                    "searched_tiles": record.searched_tiles,
                    "alive_tiles": record.alive_tiles,
                    "total_cost": record.total_cost,
                }
                for record in self.records
            ],
        }

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"trace {self.content_hash()[:12]}: {len(self.records)} events, "
            f"{self.num_applied} applied, "
            f"base {'certified' if self.base_outcome.deadlock_free else 'UNCERTIFIED'}"
        ]
        for record in self.records:
            lines.append(
                f"  [{record.index}] {record.kind}: "
                f"{record.outcome.describe()}, "
                f"remapped {len(record.remapped)} cores over "
                f"{record.searched_tiles} tiles, cost {record.total_cost:.6g}"
            )
        return "\n".join(lines)


class _AppState:
    """Mutable per-application bookkeeping of one replay (internal)."""

    def __init__(self, name: str, ordinal: int, cdcg: CDCG, cwg: CWG) -> None:
        self.name = name
        self.ordinal = ordinal
        self.cdcg = cdcg
        self.cwg = cwg
        self.cores: Tuple[str, ...] = tuple(sorted(cwg.cores))
        self.flows: Tuple[Tuple[str, str], ...] = tuple(
            (comm.source, comm.target) for comm in cwg.communications()
        )
        self.placement: Dict[str, int] = {}


class ScenarioRunner:
    """Replays a scenario script into a deterministic per-event trace.

    Parameters
    ----------
    script:
        The :class:`~repro.scenario.events.ScenarioScript` to replay.
    model:
        Pricing model per application: ``"cwm"`` (communication-weighted)
        or ``"cdcm"`` (contention-aware).  Applications are priced
        independently on the shared fabric; cross-application link
        contention is not modelled (see docs/scenarios.md).
    engine:
        Registry name of the search engine driving every region re-search
        (:func:`~repro.search.registry.get_searcher`).
    engine_kwargs:
        Constructor keywords for the engine (schedules, budgets, ...).
    remap:
        ``"incremental"`` re-searches only the affected region of a fault;
        ``"full"`` re-searches every live placement (the baseline the
        benchmark compares against).  Arrivals always search exactly the
        arriving application under both modes.
    backend:
        Optional :class:`~repro.eval.parallel.BatchBackend` the per-event
        pricing flows through; traces are bit-identical across backends.
    routing:
        Routing spec of the *healthy* base platform (degraded fabrics
        always use ``"table"``, re-derived per fault state).
    computation_scale:
        Forwarded to arriving applications' generators.
    """

    def __init__(
        self,
        script: ScenarioScript,
        model: str = "cwm",
        engine: str = "annealing",
        engine_kwargs: Optional[Dict[str, object]] = None,
        remap: str = "incremental",
        backend=None,
        routing: str = "table",
        computation_scale: float = 0.5,
    ) -> None:
        if model not in SCENARIO_MODELS:
            raise ConfigurationError(
                f"unknown scenario model {model!r}; available: {SCENARIO_MODELS}"
            )
        if remap not in REMAP_MODES:
            raise ConfigurationError(
                f"unknown remap mode {remap!r}; available: {REMAP_MODES}"
            )
        self.script = script
        self.model = model
        self.remap = remap
        self.backend = backend
        self.routing = routing
        self.computation_scale = computation_scale
        engine_kwargs = dict(engine_kwargs or {})
        if engine.lower() in ("annealing", "sa") and "schedule" not in engine_kwargs:
            engine_kwargs["schedule"] = DEFAULT_REGION_SCHEDULE
        self._engine = get_searcher(engine, **engine_kwargs)
        self._contexts: Dict[Tuple[str, Tuple], EvaluationContext] = {}

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self) -> ScenarioTrace:
        """Replay the script and return its trace.

        Stateless across calls: every invocation rebuilds the fabric and
        the application set from scratch, so two ``run()`` calls on one
        runner return equal traces.
        """
        self._contexts.clear()
        fabric = FabricManager(
            Platform(mesh=self.script.topology, routing=self.routing)
        )
        view = fabric.current_view()
        base_outcome = ScenarioOutcome(
            status="applied",
            deadlock_free=view.certification.deadlock_free,
            num_channels=view.certification.num_channels,
            num_dependencies=view.certification.num_dependencies,
            cycle=view.certification.cycle,
        )
        apps: Dict[str, _AppState] = {}
        records: List[ScenarioEventRecord] = []
        ordinal = 0

        for index, event in enumerate(self.script.events):
            remapped: Tuple[str, ...] = ()
            searched = 0
            if isinstance(event, ApplicationArrival):
                outcome, view, placed, searched, ordinal = self._handle_arrival(
                    event, index, fabric, view, apps, ordinal
                )
                remapped = placed
            elif isinstance(event, ApplicationDeparture):
                if event.app not in apps:
                    outcome = ScenarioOutcome(
                        status="rejected", reason="unknown-application"
                    )
                else:
                    del apps[event.app]
                    outcome = ScenarioOutcome(status="applied")
            elif event.kind in FAULT_EVENT_KINDS:
                outcome, view, remapped, searched = self._handle_fault(
                    event, index, fabric, view, apps
                )
            else:  # pragma: no cover - the event vocabulary is closed
                raise ConfigurationError(
                    f"unhandled scenario event kind {event.kind!r}"
                )
            records.append(
                self._record(index, event, outcome, remapped, searched, view, apps)
            )
        return ScenarioTrace(
            script_hash=self.script.content_hash(),
            base_outcome=base_outcome,
            records=tuple(records),
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_arrival(
        self,
        event: ApplicationArrival,
        index: int,
        fabric: FabricManager,
        view: FabricView,
        apps: Dict[str, _AppState],
        ordinal: int,
    ):
        """Place an arriving application on free tiles (or reject)."""
        if event.app in apps:
            return (
                ScenarioOutcome(status="rejected", reason="duplicate-application"),
                view,
                (),
                0,
                ordinal,
            )
        free = self._free_tiles(view, apps)
        if len(free) < event.num_cores:
            return (
                ScenarioOutcome(status="rejected", reason="no-capacity"),
                view,
                (),
                0,
                ordinal,
            )
        cdcg = event.build(self.computation_scale)
        state = _AppState(event.app, ordinal, cdcg, cdcg_to_cwg(cdcg))
        new_placement = self._search(
            state, view, movable=state.cores, allowed_base=free, event_index=index
        )
        state.placement = new_placement
        apps[event.app] = state
        labels = tuple(f"{event.app}:{core}" for core in state.cores)
        return (
            ScenarioOutcome(
                status="applied",
                deadlock_free=view.certification.deadlock_free,
                num_channels=view.certification.num_channels,
                num_dependencies=view.certification.num_dependencies,
            ),
            view,
            labels,
            len(free),
            ordinal + 1,
        )

    def _handle_fault(
        self,
        event: ScenarioEvent,
        index: int,
        fabric: FabricManager,
        view: FabricView,
        apps: Dict[str, _AppState],
    ):
        """Preview, certify and (maybe) commit a fault, then remap."""
        new_view, outcome = fabric.preview(event)
        if new_view is None:
            return outcome, view, (), 0
        total_cores = sum(len(state.cores) for state in apps.values())
        if total_cores > len(new_view.to_local):
            return (
                ScenarioOutcome(status="rejected", reason="no-capacity"),
                view,
                (),
                0,
            )
        fabric.commit(new_view)

        remapped: List[str] = []
        searched = 0
        ordered = sorted(apps.values(), key=lambda state: state.ordinal)
        for state in ordered:
            if self.remap == "full":
                movable = state.cores
            else:
                movable = tuple(
                    sorted(
                        affected_cores(
                            state.flows, state.placement, view, new_view
                        )
                    )
                )
            if not movable:
                continue
            survivors = sorted(
                state.placement[core]
                for core in movable
                if state.placement[core] in new_view.to_local
            )
            free = self._free_tiles(new_view, apps)
            allowed = sorted(set(survivors) | set(free))
            new_tiles = self._search(
                state,
                new_view,
                movable=movable,
                allowed_base=allowed,
                event_index=index,
            )
            state.placement.update(new_tiles)
            remapped.extend(f"{state.name}:{core}" for core in movable)
            searched += len(allowed)
        return outcome, new_view, tuple(remapped), searched

    # ------------------------------------------------------------------
    # Search and pricing plumbing
    # ------------------------------------------------------------------
    def _search(
        self,
        state: _AppState,
        view: FabricView,
        movable: Tuple[str, ...],
        allowed_base: List[int],
        event_index: int,
    ) -> Dict[str, int]:
        """Run one seeded region search; returns base-tile placements."""
        context = self._context_for(state, view)
        local_placement = {
            core: view.to_local[tile]
            for core, tile in state.placement.items()
            if tile in view.to_local
        }
        allowed_local = [view.to_local[tile] for tile in allowed_base]
        rng = np.random.default_rng(
            (self.script.seed, event_index, state.ordinal)
        )
        chosen = remap_region(
            context,
            local_placement,
            movable,
            allowed_local,
            self._engine,
            rng,
        )
        return {core: view.to_base[tile] for core, tile in chosen.items()}

    def _context_for(
        self, state: _AppState, view: FabricView
    ) -> EvaluationContext:
        """The application's pricing context on the view's fabric (cached)."""
        from repro.noc.topology import topology_cache_token

        key = (state.name, topology_cache_token(view.platform.topology))
        context = self._contexts.get(key)
        if context is None:
            if self.model == "cwm":
                context = CwmEvaluationContext(state.cwg, view.platform)
            else:
                context = CdcmEvaluationContext(state.cdcg, view.platform)
            self._contexts[key] = context
        return context

    def _free_tiles(
        self, view: FabricView, apps: Dict[str, _AppState]
    ) -> List[int]:
        """Alive base tiles not occupied by any live application, sorted."""
        occupied = {
            tile
            for state in apps.values()
            for tile in state.placement.values()
        }
        return [tile for tile in view.alive_tiles if tile not in occupied]

    def _record(
        self,
        index: int,
        event: ScenarioEvent,
        outcome: ScenarioOutcome,
        remapped: Tuple[str, ...],
        searched: int,
        view: FabricView,
        apps: Dict[str, _AppState],
    ) -> ScenarioEventRecord:
        """Price every live application on the active fabric and snapshot."""
        placements = []
        metrics = []
        total = 0.0
        for name in sorted(apps):
            state = apps[name]
            context = self._context_for(state, view)
            local = Mapping(
                {
                    core: view.to_local[tile]
                    for core, tile in state.placement.items()
                },
                num_tiles=view.platform.num_tiles,
            )
            vector = context.evaluate_metrics_batch([local], backend=self.backend)[0]
            total += vector.weighted_sum(context.weights, strict=False)
            placements.append(
                (name, tuple(sorted(state.placement.items())))
            )
            metrics.append((name, tuple(sorted(vector.as_dict().items()))))
        return ScenarioEventRecord(
            index=index,
            kind=event.kind,
            event_token=event.token(),
            outcome=outcome,
            remapped=remapped,
            searched_tiles=searched,
            alive_tiles=len(view.to_local),
            placements=tuple(placements),
            metrics=tuple(metrics),
            total_cost=total,
        )


__all__ = [
    "REMAP_MODES",
    "SCENARIO_MODELS",
    "DEFAULT_REGION_SCHEDULE",
    "ScenarioEventRecord",
    "ScenarioTrace",
    "ScenarioRunner",
]
