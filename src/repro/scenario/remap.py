"""Incremental region remapping: re-search only what an event touched.

When the fabric degrades (or an application arrives), re-searching every
placement from scratch throws away all the optimisation work that survived
the event.  This module implements the alternative the scenario engine
defaults to:

* :func:`affected_cores` computes the *remap scope* of a fabric change —
  cores sitting on dead tiles, plus the endpoints of every flow whose route
  differs between the old and the new fabric (covers failures *and*
  repairs: a repaired link changes routes back);
* :class:`RegionObjective` exposes a restricted placement sub-problem
  ("place these movable cores on this allowed tile set, everything else
  pinned") through the standard objective protocol, so **any** engine from
  the search registry (:func:`~repro.search.registry.get_searcher`) can
  drive the re-search: the engine works in a compact virtual index space
  over the allowed tiles while every candidate is priced as a *full*
  mapping through the application's real
  :class:`~repro.eval.context.EvaluationContext` (memo, vectorised kernel
  and batch backends included via ``supports_batch``);
* :func:`remap_region` runs one such search deterministically and returns
  the movable cores' new tiles.

Tile indices at this layer are *local* to the current
:class:`~repro.scenario.fabric.FabricView`; the runner owns the base↔local
translation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.eval.context import EvaluationContext
from repro.scenario.fabric import FabricView
from repro.search.base import Searcher
from repro.utils.errors import ConfigurationError


def affected_cores(
    flows: Iterable[Tuple[str, str]],
    placement: Dict[str, int],
    old_view: FabricView,
    new_view: FabricView,
) -> Set[str]:
    """Cores of one application whose placement a fabric change invalidates.

    A core is affected when it sits on a tile that died, or when it is an
    endpoint of a flow whose deterministic route differs between *old_view*
    and *new_view* (computed in base tile indices, so the comparison is
    meaningful across the two compactions).  Everything else keeps both its
    tile and its routes, and may be pinned.

    Parameters
    ----------
    flows:
        ``(source_core, target_core)`` pairs of the application.
    placement:
        Current placement in base tile indices.
    old_view, new_view:
        Fabric views before and after the event.
    """
    affected: Set[str] = {
        core
        for core, tile in placement.items()
        if tile not in new_view.to_local
    }
    for source, target in flows:
        source_tile = placement[source]
        target_tile = placement[target]
        if source_tile == target_tile:
            continue
        if source in affected or target in affected:
            continue
        if (
            source_tile not in new_view.to_local
            or target_tile not in new_view.to_local
        ):
            affected.update((source, target))
            continue
        if old_view.route_base(source_tile, target_tile) != new_view.route_base(
            source_tile, target_tile
        ):
            affected.update((source, target))
    return affected


class RegionObjective:
    """A pinned-region placement sub-problem behind the objective protocol.

    Engines see a virtual mapping problem over ``len(allowed_tiles)`` tiles
    (virtual tile ``j`` *is* ``allowed_tiles[j]``); every candidate is
    completed with the pinned placement and priced as a full mapping
    through the wrapped context — so region searches share the context's
    memo and, through ``supports_batch`` / ``evaluate_batch``, its
    vectorised kernel and batch backends.  Swap-delta pricing is
    deliberately not advertised (a virtual swap is not a full-mapping swap),
    which makes delta-aware engines fall back to full pricing — correct for
    any engine the registry can produce.

    Parameters
    ----------
    context:
        The application's evaluation context on the current fabric (local
        tile space).
    pinned:
        ``{core: local_tile}`` for every core *not* being re-searched.
    movable:
        Cores being re-searched, in a fixed order.
    allowed_tiles:
        Local tiles the movable cores may occupy (must not intersect the
        pinned tiles and must hold all movable cores).
    """

    #: Capability flags probed by the search engines.
    supports_delta = False
    supports_batch = True

    def __init__(
        self,
        context: EvaluationContext,
        pinned: Dict[str, int],
        movable: Sequence[str],
        allowed_tiles: Sequence[int],
    ) -> None:
        if len(set(allowed_tiles)) != len(allowed_tiles):
            raise ConfigurationError("allowed_tiles must be distinct")
        if len(allowed_tiles) < len(movable):
            raise ConfigurationError(
                f"{len(movable)} movable cores cannot fit on "
                f"{len(allowed_tiles)} allowed tiles"
            )
        overlap = set(allowed_tiles) & set(pinned.values())
        if overlap:
            raise ConfigurationError(
                f"allowed tiles {sorted(overlap)} are already pinned"
            )
        self._context = context
        self._pinned = dict(pinned)
        self._movable = tuple(movable)
        self._allowed = tuple(allowed_tiles)
        self._num_local = context.platform.num_tiles

    # NOTE: deliberately no ``context`` attribute — result-breakdown probes
    # (``objective_metrics``) prefer a bound context over the objective, and
    # the wrapped context speaks local tile space, not the virtual space the
    # engine's mappings live in.  The probes fall back to :meth:`metrics`,
    # which translates.

    @property
    def allowed_tiles(self) -> Tuple[int, ...]:
        """The local tiles the movable cores are searched over."""
        return self._allowed

    @property
    def movable(self) -> Tuple[str, ...]:
        """The cores being re-searched, in virtual-problem order."""
        return self._movable

    def initial_mapping(self, current: Optional[Dict[str, int]] = None) -> Mapping:
        """Deterministic virtual starting point for the search.

        Movable cores that currently sit on an allowed tile keep it; the
        rest take the lowest unused allowed slots in order — so an
        unperturbed region prices identically to the incumbent placement on
        the first evaluation.
        """
        current = current or {}
        tile_to_virtual = {tile: index for index, tile in enumerate(self._allowed)}
        taken: Set[int] = set()
        assignment: Dict[str, int] = {}
        for core in self._movable:
            virtual = tile_to_virtual.get(current.get(core, -1))
            if virtual is not None and virtual not in taken:
                assignment[core] = virtual
                taken.add(virtual)
        free = [index for index in range(len(self._allowed)) if index not in taken]
        for core in self._movable:
            if core not in assignment:
                assignment[core] = free.pop(0)
        return Mapping(assignment, num_tiles=len(self._allowed))

    def translate(self, virtual: Mapping) -> Mapping:
        """Complete a virtual candidate into a full local-space mapping."""
        assignment = dict(self._pinned)
        for core in self._movable:
            assignment[core] = self._allowed[virtual.tile_of(core)]
        return Mapping(assignment, num_tiles=self._num_local)

    def placement(self, virtual: Mapping) -> Dict[str, int]:
        """Local tiles chosen for the movable cores by a virtual candidate."""
        return {
            core: self._allowed[virtual.tile_of(core)] for core in self._movable
        }

    def __call__(self, virtual: Mapping) -> float:
        """Full-mapping cost of a virtual candidate (the engine contract)."""
        return self._context.cost(self.translate(virtual))

    def evaluate_batch(self, virtuals, backend=None) -> List[float]:
        """Bulk pricing of virtual candidates through the context's batch seam."""
        return self._context.evaluate_batch(
            [self.translate(virtual) for virtual in virtuals], backend=backend
        )

    def metrics(self, virtual: Mapping) -> MetricVector:
        """Full-mapping component vector of a virtual candidate."""
        return self._context.metrics(self.translate(virtual))

    def evaluate_metrics_batch(self, virtuals, backend=None) -> List[MetricVector]:
        """Bulk component vectors of virtual candidates (vector engines)."""
        return self._context.evaluate_metrics_batch(
            [self.translate(virtual) for virtual in virtuals], backend=backend
        )

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Component names of the wrapped context."""
        return self._context.metric_names

    @property
    def weights(self) -> Dict[str, float]:
        """Scalarisation weights of the wrapped context."""
        return self._context.weights

    def __repr__(self) -> str:
        return (
            f"RegionObjective({len(self._movable)} movable over "
            f"{len(self._allowed)} tiles, {len(self._pinned)} pinned)"
        )


def remap_region(
    context: EvaluationContext,
    placement: Dict[str, int],
    movable: Sequence[str],
    allowed_tiles: Sequence[int],
    engine: Searcher,
    rng,
) -> Dict[str, int]:
    """Re-search *movable* cores over *allowed_tiles* with *engine*.

    Parameters
    ----------
    context:
        The application's evaluation context on the current fabric.
    placement:
        Current full placement in local tile indices (movable cores whose
        tile survived seed the search; pinned cores keep theirs).
    movable:
        Cores to re-place (deterministic order).
    allowed_tiles:
        Local tiles the movable cores may use.
    engine:
        Any :class:`~repro.search.base.Searcher` (registry engines
        included).
    rng:
        Seeded randomness source for the engine.

    Returns
    -------
    dict
        ``{core: local_tile}`` for the movable cores only.
    """
    movable = tuple(movable)
    if not movable:
        return {}
    pinned = {
        core: tile for core, tile in placement.items() if core not in movable
    }
    objective = RegionObjective(context, pinned, movable, allowed_tiles)
    initial = objective.initial_mapping(placement)
    if len(movable) == len(allowed_tiles) == 1:
        # Nothing to search: one core, one slot.
        return objective.placement(initial)
    result = engine.search(objective, initial, rng=rng)
    return objective.placement(result.best_mapping)


__all__ = [
    "affected_cores",
    "RegionObjective",
    "remap_region",
]
