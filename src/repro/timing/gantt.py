"""Timing-diagram extraction — the Figures 4 and 5 of the paper.

The paper visualises a scheduled mapping as one horizontal bar per packet,
decomposed into four segment kinds:

* **computation** — the source core computes for ``t_aq`` before injecting;
* **routing** — the header establishes the path (equation 6);
* **contention** — time spent waiting in an input buffer for a busy link;
* **packet** — the remaining flits stream behind the header (equation 7).

:func:`build_timelines` reconstructs those segments from a
:class:`~repro.noc.scheduler.ScheduleResult`, and :func:`render_ascii_gantt`
renders them as a fixed-width text chart (``c`` computation, ``r`` routing,
``x`` contention, ``=`` packet), which is how the benchmark harness
regenerates Figures 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.noc.platform import NocParameters
from repro.noc.scheduler import PacketSchedule, ScheduleResult
from repro.timing.delays import packet_delay, routing_delay


@dataclass(frozen=True)
class TimelineSegment:
    """One segment of a packet's timeline.

    Attributes
    ----------
    kind:
        ``"computation"``, ``"routing"``, ``"contention"`` or ``"packet"``.
    start, end:
        Absolute times in nanoseconds.
    """

    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PacketTimeline:
    """Timeline of one packet: its label and ordered segments."""

    packet: str
    label: str
    segments: tuple[TimelineSegment, ...]

    @property
    def start(self) -> float:
        return self.segments[0].start if self.segments else 0.0

    @property
    def end(self) -> float:
        return self.segments[-1].end if self.segments else 0.0

    def duration_of(self, kind: str) -> float:
        """Total duration of all segments of the given kind."""
        return sum(s.duration for s in self.segments if s.kind == kind)


def build_timelines(
    result: ScheduleResult, parameters: NocParameters
) -> List[PacketTimeline]:
    """Decompose every scheduled packet into Figure-4-style segments.

    Segments are laid out as: computation (ready -> injection), routing
    (header latency, equation 6), contention (any extra delay the scheduler
    attributed to busy links), packet (body streaming, equation 7).  The
    segment boundaries always reconstruct the scheduler's delivery time
    exactly.
    """
    timelines: List[PacketTimeline] = []
    for name in sorted(
        result.packet_schedules, key=lambda n: result.packet_schedules[n].ready_time
    ):
        sched = result.packet_schedules[name]
        segments = _segments_for(sched, parameters)
        label = (
            f"{sched.packet.bits}({sched.packet.source}->{sched.packet.target})"
            f":{sched.packet.computation_time:g}"
        )
        timelines.append(PacketTimeline(name, label, tuple(segments)))
    return timelines


def _segments_for(
    sched: PacketSchedule, parameters: NocParameters
) -> List[TimelineSegment]:
    segments: List[TimelineSegment] = []
    cursor = sched.ready_time
    if sched.injection_time > cursor:
        segments.append(
            TimelineSegment("computation", cursor, sched.injection_time)
        )
    cursor = sched.injection_time
    header = routing_delay(parameters, sched.hop_count)
    segments.append(TimelineSegment("routing", cursor, cursor + header))
    cursor += header
    if sched.contention_delay > 0:
        segments.append(
            TimelineSegment("contention", cursor, cursor + sched.contention_delay)
        )
        cursor += sched.contention_delay
    body = packet_delay(parameters, sched.num_flits)
    segments.append(TimelineSegment("packet", cursor, cursor + body))
    return segments


_SEGMENT_CHARS = {
    "computation": "c",
    "routing": "r",
    "contention": "x",
    "packet": "=",
}


def render_ascii_gantt(
    timelines: Sequence[PacketTimeline],
    width: int = 80,
    end_time: float | None = None,
) -> str:
    """Render packet timelines as a fixed-width ASCII chart.

    Parameters
    ----------
    timelines:
        Output of :func:`build_timelines`.
    width:
        Number of character columns used for the time axis.
    end_time:
        Time mapped to the right edge; defaults to the latest segment end.
    """
    if not timelines:
        return "(no packets)"
    horizon = end_time if end_time is not None else max(t.end for t in timelines)
    horizon = max(horizon, 1e-9)
    label_width = max(len(t.label) for t in timelines) + 2

    def column(time: float) -> int:
        return min(width - 1, int(round(time / horizon * (width - 1))))

    lines = []
    for timeline in timelines:
        row = [" "] * width
        for segment in timeline.segments:
            first = column(segment.start)
            last = max(first, column(segment.end) - 1)
            char = _SEGMENT_CHARS.get(segment.kind, "?")
            for idx in range(first, last + 1):
                row[idx] = char
        lines.append(f"{timeline.label.ljust(label_width)}|{''.join(row)}|")

    axis = _axis_line(horizon, width, label_width)
    legend = (
        " " * label_width
        + " legend: c=computation  r=routing  x=contention  ===packet"
    )
    return "\n".join(lines + [axis, legend])


def _axis_line(horizon: float, width: int, label_width: int) -> str:
    ticks = 8
    row = [" "] * width
    labels: Dict[int, str] = {}
    for i in range(ticks + 1):
        time = horizon * i / ticks
        col = min(width - 1, int(round(time / horizon * (width - 1))))
        row[col] = "+"
        labels[col] = f"{time:g}"
    axis = " " * label_width + "|" + "".join(row) + "|"
    label_row = [" "] * (width + label_width + 2)
    for col, text in labels.items():
        start = label_width + 1 + col
        for offset, char in enumerate(text):
            pos = start + offset
            if pos < len(label_row):
                label_row[pos] = char
    return axis + "\n" + "".join(label_row).rstrip()


def summarize_timelines(timelines: Sequence[PacketTimeline]) -> Dict[str, float]:
    """Aggregate totals per segment kind plus the overall makespan."""
    summary = {kind: 0.0 for kind in _SEGMENT_CHARS}
    for timeline in timelines:
        for kind in _SEGMENT_CHARS:
            summary[kind] += timeline.duration_of(kind)
    summary["makespan"] = max((t.end for t in timelines), default=0.0)
    return summary


__all__ = [
    "TimelineSegment",
    "PacketTimeline",
    "build_timelines",
    "render_ascii_gantt",
    "summarize_timelines",
]
