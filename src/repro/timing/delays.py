"""Contention-free wormhole delay equations — (6), (7) and (8) of the paper.

For a packet of ``n_abq`` flits traversing ``K`` routers without contention:

* routing delay   ``dR_ijq = (K x (tr + tl) + tl) x lambda``   (equation 6) —
  the time for the header flit to reach the target core and establish the
  path;
* packet delay    ``dP_ijq = (tl x (n_abq - 1)) x lambda``      (equation 7) —
  the time for the remaining flits to stream in behind the header;
* total delay     ``d_ijq  = (K x (tr + tl) + tl x n_abq) x lambda`` (equation 8).

These are the zero-load latencies; contention can only be determined by
replaying the CDCG (see :mod:`repro.noc.scheduler`), which is the paper's
argument for CDCM.
"""

from __future__ import annotations

from repro.noc.platform import NocParameters
from repro.utils.errors import ConfigurationError


def _check(hop_count: int, num_flits: int | None = None) -> None:
    if hop_count < 1:
        raise ConfigurationError(
            f"a route traverses at least one router, got hop_count={hop_count}"
        )
    if num_flits is not None and num_flits < 1:
        raise ConfigurationError(
            f"a packet has at least one flit, got num_flits={num_flits}"
        )


def routing_delay(parameters: NocParameters, hop_count: int) -> float:
    """Equation (6): header (path-establishment) delay in nanoseconds."""
    _check(hop_count)
    cycles = hop_count * (parameters.routing_cycles + parameters.link_cycles)
    cycles += parameters.link_cycles
    return cycles * parameters.clock_period


def packet_delay(parameters: NocParameters, num_flits: int) -> float:
    """Equation (7): body (remaining flits) delay in nanoseconds."""
    _check(1, num_flits)
    return parameters.link_cycles * (num_flits - 1) * parameters.clock_period


def total_packet_delay(
    parameters: NocParameters, hop_count: int, num_flits: int
) -> float:
    """Equation (8): total contention-free packet delay in nanoseconds."""
    _check(hop_count, num_flits)
    cycles = hop_count * (parameters.routing_cycles + parameters.link_cycles)
    cycles += parameters.link_cycles * num_flits
    return cycles * parameters.clock_period


def zero_load_delay(parameters: NocParameters, hop_count: int, bits: int) -> float:
    """Total contention-free delay of a packet given its size in bits."""
    return total_packet_delay(parameters, hop_count, parameters.flits(bits))


__all__ = ["routing_delay", "packet_delay", "total_packet_delay", "zero_load_delay"]
