"""Timing model: wormhole delay equations and timing-diagram extraction.

* :mod:`repro.timing.delays` — the closed-form, contention-free delay
  equations (6)–(8) of the paper (routing delay, packet delay, total delay).
* :mod:`repro.timing.gantt` — turns a :class:`~repro.noc.scheduler.ScheduleResult`
  into the per-packet timing diagrams of Figures 4 and 5 (computation /
  routing / packet / contention segments) and renders them as ASCII charts.
"""

from repro.timing.delays import (
    routing_delay,
    packet_delay,
    total_packet_delay,
    zero_load_delay,
)
from repro.timing.gantt import (
    PacketTimeline,
    TimelineSegment,
    build_timelines,
    render_ascii_gantt,
)

__all__ = [
    "routing_delay",
    "packet_delay",
    "total_packet_delay",
    "zero_load_delay",
    "PacketTimeline",
    "TimelineSegment",
    "build_timelines",
    "render_ascii_gantt",
]
