"""Objective-function adapters.

Search engines (:mod:`repro.search`) explore the space of
:class:`~repro.core.mapping.Mapping` objects and only ever see a callable
``mapping -> cost``.  The helpers here bind an application graph, a platform
and a model (CWM or CDCM) into such a callable, and wrap it with evaluation
counting so the CPU-cost comparison of Section 5 (CWM vs CDCM evaluation
effort) can be reported.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.core.cdcm import CdcmEvaluator
from repro.core.cwm import CwmEvaluator
from repro.core.mapping import Mapping
from repro.graphs.cdcg import CDCG
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform

#: The signature every search engine expects.
ObjectiveFunction = Callable[[Mapping], float]


class CountingObjective:
    """Wrap an objective function, counting calls and accumulating CPU time.

    Attributes
    ----------
    evaluations:
        Number of times the objective has been called.
    elapsed:
        Total wall-clock seconds spent inside the wrapped function.
    """

    def __init__(self, function: ObjectiveFunction, name: str = "objective") -> None:
        self._function = function
        self.name = name
        self.evaluations = 0
        self.elapsed = 0.0

    def __call__(self, mapping: Mapping) -> float:
        start = time.perf_counter()
        try:
            return self._function(mapping)
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += 1

    def reset(self) -> None:
        """Zero the counters (e.g. between search runs)."""
        self.evaluations = 0
        self.elapsed = 0.0

    def __repr__(self) -> str:
        return (
            f"CountingObjective(name={self.name!r}, evaluations={self.evaluations}, "
            f"elapsed={self.elapsed:.3f}s)"
        )


def cwm_objective(
    cwg: CWG,
    platform: Platform,
    include_local: bool = True,
) -> CountingObjective:
    """Objective minimising CWM dynamic energy (equation 3)."""
    evaluator = CwmEvaluator(platform, include_local=include_local)

    def cost(mapping: Mapping) -> float:
        return evaluator.cost(cwg, mapping)

    return CountingObjective(cost, name=f"cwm({cwg.name})")


def cdcm_objective(
    cdcg: CDCG,
    platform: Platform,
    metric: str = "energy",
    energy_weight: float = 1.0,
    time_weight: float = 0.0,
    include_local: bool = True,
) -> CountingObjective:
    """Objective minimising CDCM total energy (equation 10) or execution time."""
    evaluator = CdcmEvaluator(
        platform,
        metric=metric,
        energy_weight=energy_weight,
        time_weight=time_weight,
        include_local=include_local,
    )

    def cost(mapping: Mapping) -> float:
        return evaluator.cost(cdcg, mapping)

    return CountingObjective(cost, name=f"cdcm({cdcg.name},{metric})")


__all__ = [
    "ObjectiveFunction",
    "CountingObjective",
    "cwm_objective",
    "cdcm_objective",
]
