"""Objective-function adapters.

Search engines (:mod:`repro.search`) explore the space of
:class:`~repro.core.mapping.Mapping` objects and only ever see a callable
``mapping -> cost``.  The helpers here bind an application graph, a platform
and a model (CWM or CDCM) into such a callable — backed by the shared
evaluation engine of :mod:`repro.eval` (precomputed route tables, memoised
costs, incremental swap deltas) — and wrap it with evaluation counting so the
CPU-cost comparison of Section 5 (CWM vs CDCM evaluation effort) can be
reported.

Delta-aware engines (simulated annealing, greedy refinement) additionally
call :meth:`CountingObjective.delta` when ``supports_delta`` is True, and
population-based engines (genetic, exhaustive) call
:meth:`CountingObjective.evaluate_batch` when ``supports_batch`` is True; the
wrapper forwards both to the bound
:class:`~repro.eval.context.EvaluationContext` — batches optionally through a
:class:`~repro.eval.parallel.BatchBackend` — and keeps separate
``delta_evaluations`` counters so full, incremental and bulk pricing effort
stay distinguishable in reports.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.core.mapping import Mapping
from repro.eval.context import (
    CacheInfo,
    CdcmEvaluationContext,
    CwmEvaluationContext,
    DEFAULT_CACHE_SIZE,
    EvaluationContext,
)
from repro.graphs.cdcg import CDCG
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform

#: The signature every search engine expects.
ObjectiveFunction = Callable[[Mapping], float]


class CountingObjective:
    """Wrap an objective function, counting calls and accumulating CPU time.

    Parameters
    ----------
    function:
        The underlying ``mapping -> cost`` callable.
    name:
        Identifier used in reports.
    context:
        Optional bound :class:`~repro.eval.context.EvaluationContext`; when
        present the wrapper advertises the context's delta and batch
        capabilities to search engines.

    Attributes
    ----------
    evaluations:
        Number of full evaluations charged: one per :meth:`__call__` plus one
        per candidate priced through :meth:`evaluate_batch`.
    delta_evaluations:
        Number of incremental :meth:`delta` calls (0 for contexts without
        delta support or plain callables).
    elapsed:
        Total wall-clock seconds spent inside the wrapped function, the
        delta evaluator and batch pricing (for pooled batches this is the
        caller-side wall time, not the summed worker CPU time).
    """

    def __init__(
        self,
        function: ObjectiveFunction,
        name: str = "objective",
        context: Optional[EvaluationContext] = None,
    ) -> None:
        self._function = function
        self._context = context
        self.name = name
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def __call__(self, mapping: Mapping) -> float:
        start = time.perf_counter()
        try:
            return self._function(mapping)
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += 1

    # ------------------------------------------------------------------
    # Evaluation-engine passthrough
    # ------------------------------------------------------------------
    @property
    def context(self) -> Optional[EvaluationContext]:
        """The bound evaluation context, if any."""
        return self._context

    @property
    def supports_delta(self) -> bool:
        """True when :meth:`delta` returns exact incremental costs."""
        return self._context is not None and self._context.supports_delta

    @property
    def supports_batch(self) -> bool:
        """True when :meth:`evaluate_batch` routes through a shared context."""
        return self._context is not None

    def evaluate_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend=None,
    ) -> List[float]:
        """Price several candidates through the bound context in one call.

        Parameters
        ----------
        mappings:
            Candidates to price, in order.
        backend:
            Optional :class:`~repro.eval.parallel.BatchBackend` override
            forwarded to
            :meth:`~repro.eval.context.EvaluationContext.evaluate_batch`.

        Returns
        -------
        list of float
            One cost per candidate, bit-identical to per-candidate calls.
        """
        if self._context is None:
            raise NotImplementedError(
                f"objective {self.name!r} has no evaluation context and cannot "
                f"price batches; call it per mapping instead"
            )
        items = list(mappings)
        start = time.perf_counter()
        try:
            return self._context.evaluate_batch(items, backend=backend)
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += len(items)

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Exact cost change of ``mapping.swap_tiles(tile_a, tile_b)``."""
        if self._context is None:
            raise NotImplementedError(
                f"objective {self.name!r} has no evaluation context and cannot "
                f"price incremental moves"
            )
        start = time.perf_counter()
        try:
            return self._context.delta(mapping, tile_a, tile_b)
        finally:
            self.elapsed += time.perf_counter() - start
            self.delta_evaluations += 1

    def cache_info(self) -> Optional[CacheInfo]:
        """Memo statistics of the bound context (None for plain callables)."""
        return self._context.cache_info() if self._context is not None else None

    def reset(self) -> None:
        """Zero the counters (e.g. between search runs)."""
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def __repr__(self) -> str:
        return (
            f"CountingObjective(name={self.name!r}, evaluations={self.evaluations}, "
            f"elapsed={self.elapsed:.3f}s)"
        )


def cwm_objective(
    cwg: CWG,
    platform: Platform,
    include_local: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    context: Optional[CwmEvaluationContext] = None,
) -> CountingObjective:
    """Objective minimising CWM dynamic energy (equation 3).

    Parameters
    ----------
    cwg:
        Application communication graph.
    platform:
        Target architecture.
    include_local:
        Whether local core-router links contribute ``ECbit`` per bit.
    cache_size:
        Size of the context's cost memo (0 disables it).
    context:
        Optional pre-built context to share (with its route table, memo and
        batch backend) across objectives.

    Returns
    -------
    CountingObjective
        Supports exact incremental swap deltas (``supports_delta``) and bulk
        pricing (``supports_batch``) — see
        :class:`~repro.eval.context.CwmEvaluationContext`.
    """
    if context is None:
        context = CwmEvaluationContext(
            cwg, platform, include_local=include_local, cache_size=cache_size
        )
    return CountingObjective(context.cost, name=context.name, context=context)


def cdcm_objective(
    cdcg: CDCG,
    platform: Platform,
    metric: str = "energy",
    energy_weight: float = 1.0,
    time_weight: float = 0.0,
    include_local: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    context: Optional[CdcmEvaluationContext] = None,
) -> CountingObjective:
    """Objective minimising CDCM total energy (equation 10) or execution time.

    Parameters
    ----------
    cdcg:
        Packet-level application model.
    platform:
        Target architecture.
    metric:
        ``"energy"`` (default), ``"time"`` or ``"weighted"`` — see
        :class:`~repro.core.cdcm.CdcmEvaluator`.
    energy_weight, time_weight:
        Scalarisation weights for the ``"weighted"`` metric.
    include_local:
        Whether local core-router links contribute to dynamic energy.
    cache_size:
        Size of the context's cost memo (0 disables it).
    context:
        Optional pre-built context to share across objectives.

    Returns
    -------
    CountingObjective
        Supports bulk pricing (``supports_batch``) but not incremental deltas
        — contention makes CDCM cost global, so ``supports_delta`` is False
        and swap-based engines re-evaluate in full.
    """
    if context is None:
        context = CdcmEvaluationContext(
            cdcg,
            platform,
            metric=metric,
            energy_weight=energy_weight,
            time_weight=time_weight,
            include_local=include_local,
            cache_size=cache_size,
        )
    return CountingObjective(context.cost, name=context.name, context=context)


__all__ = [
    "ObjectiveFunction",
    "CountingObjective",
    "cwm_objective",
    "cdcm_objective",
]
