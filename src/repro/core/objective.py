"""Objective-function adapters over the vector-valued evaluation engine.

Search engines (:mod:`repro.search`) explore the space of
:class:`~repro.core.mapping.Mapping` objects and only ever see a callable
``mapping -> cost``.  Since the vector-objective redesign that scalar is a
*view*: evaluators produce named :class:`~repro.core.metrics.MetricVector`
components (energy terms, CDCM makespan), the shared
:class:`~repro.eval.context.EvaluationContext` memoises the vectors, and
scalars are derived by applying a weight vector — so K scalarisations of one
candidate cost one pricing pass, not K.

Three adapters bind that machinery into the engine-facing contract:

* :class:`CountingObjective` — the legacy-compatible wrapper produced by
  :func:`cwm_objective` / :func:`cdcm_objective`; scalarises with the bound
  context's own weight view (bit-identical to the pre-vector objectives) and
  counts evaluation effort for the Section 5 CPU-cost comparison;
* :class:`ScalarisedObjective` — a lightweight weight-vector view over a
  shared context.  Several views over one context share its memo, which is
  what makes Pareto weight sweeps (:mod:`repro.analysis.pareto`) essentially
  free after the first pricing pass;
* :class:`VectorObjective` — the structural protocol both adapters and the
  contexts themselves satisfy (``metric_names`` / ``metrics`` /
  ``evaluate_metrics_batch``), the seam Pareto tooling and custom
  multi-objective drivers program against.

Delta-aware engines (simulated annealing, greedy refinement) additionally
call ``delta`` when ``supports_delta`` is True, and population-based engines
(genetic, exhaustive) call ``evaluate_batch`` when ``supports_batch`` is
True; both adapters forward these to the bound context — batches optionally
through a :class:`~repro.eval.parallel.BatchBackend`.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector, validate_weights
from repro.eval.context import (
    CacheInfo,
    CdcmEvaluationContext,
    CwmEvaluationContext,
    DEFAULT_CACHE_SIZE,
    EvaluationContext,
)
from repro.graphs.cdcg import CDCG
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform
from repro.utils.errors import ConfigurationError

#: The signature every search engine expects.
ObjectiveFunction = Callable[[Mapping], float]


@runtime_checkable
class VectorObjective(Protocol):
    """Structural protocol of vector-valued pricing sources.

    Satisfied by :class:`~repro.eval.context.EvaluationContext` subclasses,
    :class:`CountingObjective` (when bound to a context) and
    :class:`ScalarisedObjective`.  Pareto tooling and weight-sweep drivers
    program against this seam and never care which concrete adapter they
    were handed.
    """

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Component names produced by :meth:`metrics`, in accumulation order."""
        ...

    def metrics(self, mapping: Union[Mapping, Dict[str, int]]) -> MetricVector:
        """Named component vector of one mapping (memoised by the source)."""
        ...

    def evaluate_metrics_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend=None,
    ) -> List[MetricVector]:
        """Component vectors of several mappings in one pricing pass."""
        ...


def resolve_vector_source(source):
    """The vector-capable pricing source behind an objective-ish argument.

    The single resolution rule shared by :class:`ScalarisedObjective`,
    :mod:`repro.analysis.pareto` and anything else that needs the vector
    half of the protocol: prefer the object's bound ``context`` when it
    satisfies :class:`VectorObjective`, fall back to the object itself, and
    fail loudly otherwise (plain scalar callables cannot price vectors).

    Parameters
    ----------
    source:
        An :class:`~repro.eval.context.EvaluationContext`, an objective
        exposing one through a ``context`` attribute, or any other
        :class:`VectorObjective`.

    Returns
    -------
    VectorObjective
        The resolved source.

    Raises
    ------
    ConfigurationError
        When *source* exposes no named metric components.
    """
    def _quacks(candidate) -> bool:
        return bool(getattr(candidate, "metric_names", None)) and callable(
            getattr(candidate, "metrics", None)
        )

    context = getattr(source, "context", None)
    if context is not None and _quacks(context):
        return context
    if _quacks(source):
        return source
    raise ConfigurationError(
        f"{source!r} does not expose named metric components; pass an "
        f"EvaluationContext or an objective built by repro.core.objective"
    )


class CountingObjective:
    """Wrap an objective function, counting calls and accumulating CPU time.

    Parameters
    ----------
    function:
        The underlying ``mapping -> cost`` callable.
    name:
        Identifier used in reports.
    context:
        Optional bound :class:`~repro.eval.context.EvaluationContext`; when
        present the wrapper advertises the context's delta and batch
        capabilities to search engines and exposes the vector half of the
        protocol (:meth:`metrics` / :meth:`evaluate_metrics_batch`).

    Attributes
    ----------
    evaluations:
        Number of full evaluations charged: one per :meth:`__call__` plus one
        per candidate priced through :meth:`evaluate_batch`.
    delta_evaluations:
        Number of incremental :meth:`delta` calls (0 for contexts without
        delta support or plain callables).
    elapsed:
        Total wall-clock seconds spent inside the wrapped function, the
        delta evaluator and batch pricing (for pooled batches this is the
        caller-side wall time, not the summed worker CPU time).
    """

    def __init__(
        self,
        function: ObjectiveFunction,
        name: str = "objective",
        context: Optional[EvaluationContext] = None,
    ) -> None:
        self._function = function
        self._context = context
        self.name = name
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def __call__(self, mapping: Mapping) -> float:
        start = time.perf_counter()
        try:
            return self._function(mapping)
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += 1

    # ------------------------------------------------------------------
    # Evaluation-engine passthrough
    # ------------------------------------------------------------------
    @property
    def context(self) -> Optional[EvaluationContext]:
        """The bound evaluation context, if any."""
        return self._context

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Component names of the bound context (empty for plain callables)."""
        return self._context.metric_names if self._context is not None else ()

    @property
    def supports_delta(self) -> bool:
        """True when :meth:`delta` returns exact incremental costs."""
        return self._context is not None and self._context.supports_delta

    @property
    def supports_batch(self) -> bool:
        """True when :meth:`evaluate_batch` routes through a shared context."""
        return self._context is not None

    def metrics(self, mapping: Union[Mapping, Dict[str, int]]) -> MetricVector:
        """Named component vector of *mapping* through the bound context.

        A passthrough that shares the context memo and deliberately leaves
        the Section 5 effort counters untouched — they keep mirroring the
        scalar pricing effort exactly as the pre-vector wrapper did.
        """
        return self._require_context("price metric vectors").metrics(mapping)

    def evaluate_metrics_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend=None,
    ) -> List[MetricVector]:
        """Component vectors of several candidates through the bound context.

        Uncounted passthrough, like :meth:`metrics`.
        """
        return self._require_context(
            "price metric vectors"
        ).evaluate_metrics_batch(mappings, backend=backend)

    def scalarised(
        self, weights: Dict[str, float], name: Optional[str] = None
    ) -> "ScalarisedObjective":
        """A :class:`ScalarisedObjective` view sharing this objective's context."""
        return ScalarisedObjective(
            self._require_context("derive scalarisation views"),
            weights,
            name=name,
        )

    def evaluate_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend=None,
    ) -> List[float]:
        """Price several candidates through the bound context in one call.

        Parameters
        ----------
        mappings:
            Candidates to price, in order.
        backend:
            Optional :class:`~repro.eval.parallel.BatchBackend` override
            forwarded to
            :meth:`~repro.eval.context.EvaluationContext.evaluate_batch`.

        Returns
        -------
        list of float
            One cost per candidate, bit-identical to per-candidate calls.
        """
        context = self._require_context("price batches")
        items = list(mappings)
        start = time.perf_counter()
        try:
            return context.evaluate_batch(items, backend=backend)
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += len(items)

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Exact cost change of ``mapping.swap_tiles(tile_a, tile_b)``."""
        context = self._require_context("price incremental moves")
        start = time.perf_counter()
        try:
            return context.delta(mapping, tile_a, tile_b)
        finally:
            self.elapsed += time.perf_counter() - start
            self.delta_evaluations += 1

    def cache_info(self) -> Optional[CacheInfo]:
        """Memo statistics of the bound context (None for plain callables)."""
        return self._context.cache_info() if self._context is not None else None

    def reset(self) -> None:
        """Zero the counters (e.g. between search runs)."""
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def _require_context(self, action: str) -> EvaluationContext:
        if self._context is None:
            raise NotImplementedError(
                f"objective {self.name!r} has no evaluation context and cannot "
                f"{action}; call it per mapping instead"
            )
        return self._context

    def __repr__(self) -> str:
        return (
            f"CountingObjective(name={self.name!r}, evaluations={self.evaluations}, "
            f"elapsed={self.elapsed:.3f}s)"
        )


class ScalarisedObjective:
    """A weight-vector view over a shared vector-valued pricing source.

    The view satisfies the full engine-facing objective contract (callable,
    ``supports_delta`` / ``supports_batch``, ``delta``, ``evaluate_batch``)
    but owns no pricing machinery of its own: every operation recalls (or
    prices once) the memoised component vector from the underlying
    :class:`~repro.eval.context.EvaluationContext` and applies this view's
    weights.  Constructing K views over one context and pricing the same
    candidates through all of them therefore costs **one** full pricing pass
    per unique candidate — the property Pareto weight sweeps rely on, pinned
    by ``tests/test_pareto.py``.

    Parameters
    ----------
    source:
        An :class:`~repro.eval.context.EvaluationContext`, or any objective
        exposing one through a ``context`` attribute
        (:class:`CountingObjective` does).
    weights:
        ``{metric_name: weight}`` over the source's ``metric_names``; checked
        by :func:`~repro.core.metrics.validate_weights`.
    name:
        Identifier used in reports; derived from the source and the weights
        when omitted.

    Attributes
    ----------
    evaluations, delta_evaluations, elapsed:
        CountingObjective-style effort counters of this view (scalarisation
        calls, not underlying pricing passes — those are visible in the
        shared context's :meth:`cache_info`).
    """

    def __init__(
        self,
        source,
        weights: Dict[str, float],
        name: Optional[str] = None,
    ) -> None:
        context = resolve_vector_source(source)
        self._context = context
        self.weights = validate_weights(weights, tuple(context.metric_names))
        if name is None:
            label = ",".join(
                f"{key}={value:g}" for key, value in self.weights.items()
            )
            name = f"{getattr(context, 'name', 'objective')}[{label}]"
        self.name = name
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    # ------------------------------------------------------------------
    # Engine-facing contract
    # ------------------------------------------------------------------
    def __call__(self, mapping: Union[Mapping, Dict[str, int]]) -> float:
        start = time.perf_counter()
        try:
            return self._context.metrics(mapping).weighted_sum(
                self.weights, strict=False
            )
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += 1

    @property
    def context(self) -> EvaluationContext:
        """The shared evaluation context the view scalarises over."""
        return self._context

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Component names of the underlying context."""
        return self._context.metric_names

    @property
    def supports_delta(self) -> bool:
        """True when the context prices per-component swap deltas exactly."""
        return bool(
            self._context.supports_delta
            and getattr(self._context, "supports_metric_delta", False)
        )

    @property
    def supports_batch(self) -> bool:
        """Always True — batches route through the shared context."""
        return True

    def evaluate_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend=None,
    ) -> List[float]:
        """Scalarise a batch of candidates off the shared vector memo.

        Parameters
        ----------
        mappings:
            Candidates to price, in order.
        backend:
            Optional :class:`~repro.eval.parallel.BatchBackend` override for
            the misses.

        Returns
        -------
        list of float
            One weighted cost per candidate, in input order.
        """
        items = list(mappings)
        start = time.perf_counter()
        try:
            vectors = self._context.evaluate_metrics_batch(
                items, backend=backend
            )
            return [
                vector.weighted_sum(self.weights, strict=False)
                for vector in vectors
            ]
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += len(items)

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Weighted exact cost change of swapping two tiles' contents."""
        start = time.perf_counter()
        try:
            return self._context.metric_delta(
                mapping, tile_a, tile_b
            ).weighted_sum(self.weights, strict=False)
        finally:
            self.elapsed += time.perf_counter() - start
            self.delta_evaluations += 1

    # ------------------------------------------------------------------
    # Vector passthrough (the VectorObjective protocol)
    # ------------------------------------------------------------------
    def metrics(self, mapping: Union[Mapping, Dict[str, int]]) -> MetricVector:
        """Named component vector of *mapping* (shared-memo passthrough)."""
        return self._context.metrics(mapping)

    def evaluate_metrics_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend=None,
    ) -> List[MetricVector]:
        """Component vectors of several candidates (shared-memo passthrough)."""
        return self._context.evaluate_metrics_batch(mappings, backend=backend)

    def with_weights(
        self, weights: Dict[str, float], name: Optional[str] = None
    ) -> "ScalarisedObjective":
        """A sibling view with different weights over the same context."""
        return ScalarisedObjective(self._context, weights, name=name)

    def cache_info(self) -> CacheInfo:
        """Memo statistics of the shared context."""
        return self._context.cache_info()

    def reset(self) -> None:
        """Zero this view's counters (the shared memo is left untouched)."""
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def __repr__(self) -> str:
        return (
            f"ScalarisedObjective(name={self.name!r}, "
            f"weights={self.weights!r})"
        )


def _bind_context(context: EvaluationContext) -> CountingObjective:
    """Bind a context into the counting wrapper every engine consumes.

    The single place the legacy factories share: the wrapper scalarises with
    the context's own weight view (``context.cost``), which keeps it
    bit-identical to the pre-vector scalar objectives.
    """
    return CountingObjective(context.cost, name=context.name, context=context)


def cwm_objective(
    cwg: CWG,
    platform: Platform,
    include_local: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    context: Optional[CwmEvaluationContext] = None,
) -> CountingObjective:
    """Objective minimising CWM dynamic energy (equation 3).

    A compatibility shim over the vector core: the returned wrapper
    scalarises the context's single ``dynamic_energy`` component with unit
    weight, bit-identical to the pre-vector objective.

    Parameters
    ----------
    cwg:
        Application communication graph.
    platform:
        Target architecture.
    include_local:
        Whether local core-router links contribute ``ECbit`` per bit.
    cache_size:
        Size of the context's metric-vector memo (0 disables it).
    context:
        Optional pre-built context to share (with its route table, memo and
        batch backend) across objectives.

    Returns
    -------
    CountingObjective
        Supports exact incremental swap deltas (``supports_delta``) and bulk
        pricing (``supports_batch``) — see
        :class:`~repro.eval.context.CwmEvaluationContext`.
    """
    if context is None:
        context = CwmEvaluationContext(
            cwg, platform, include_local=include_local, cache_size=cache_size
        )
    return _bind_context(context)


def cdcm_objective(
    cdcg: CDCG,
    platform: Platform,
    metric: str = "energy",
    energy_weight: float = 1.0,
    time_weight: float = 0.0,
    include_local: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    context: Optional[CdcmEvaluationContext] = None,
    repair: Optional[bool] = None,
    repair_policy=None,
) -> CountingObjective:
    """Objective minimising CDCM total energy (equation 10) or execution time.

    A compatibility shim over the vector core: the legacy ``metric`` /
    ``energy_weight`` / ``time_weight`` knobs are translated to a weight
    view by :func:`~repro.core.metrics.scalarisation_weights` and applied to
    the context's memoised component vectors, bit-identical to the
    pre-vector objective.  For weight *sweeps* build one context and derive
    :class:`ScalarisedObjective` views instead of constructing one objective
    per weight vector.

    Parameters
    ----------
    cdcg:
        Packet-level application model.
    platform:
        Target architecture.
    metric:
        ``"energy"`` (default), ``"time"`` or ``"weighted"`` — see
        :class:`~repro.core.cdcm.CdcmEvaluator`.
    energy_weight, time_weight:
        Scalarisation weights for the ``"weighted"`` metric.
    include_local:
        Whether local core-router links contribute to dynamic energy.
    cache_size:
        Size of the context's metric-vector memo (0 disables it).
    context:
        Optional pre-built context to share across objectives.
    repair:
        Whether swap deltas are priced by the bounded-repair engine of
        :mod:`repro.eval.repair` (``None`` follows the context default —
        on).  Ignored when *context* is supplied.
    repair_policy:
        Optional :class:`~repro.eval.repair.RepairPolicy` overriding the
        resync/drift contract.  Ignored when *context* is supplied.

    Returns
    -------
    CountingObjective
        Supports bulk pricing (``supports_batch``) and — behind the
        ``repair`` gate — incremental swap deltas (``supports_delta``):
        contention makes exact CDCM deltas global, so moves are priced by
        the bounded-repair engine, exact at every resync point and
        drift-bounded in between (see :mod:`repro.eval.repair`).
    """
    if context is None:
        context = CdcmEvaluationContext(
            cdcg,
            platform,
            metric=metric,
            energy_weight=energy_weight,
            time_weight=time_weight,
            include_local=include_local,
            cache_size=cache_size,
            repair=repair,
            repair_policy=repair_policy,
        )
    return _bind_context(context)


__all__ = [
    "ObjectiveFunction",
    "VectorObjective",
    "CountingObjective",
    "ScalarisedObjective",
    "resolve_vector_source",
    "cwm_objective",
    "cdcm_objective",
]
