"""Objective-function adapters.

Search engines (:mod:`repro.search`) explore the space of
:class:`~repro.core.mapping.Mapping` objects and only ever see a callable
``mapping -> cost``.  The helpers here bind an application graph, a platform
and a model (CWM or CDCM) into such a callable — backed by the shared
evaluation engine of :mod:`repro.eval` (precomputed route tables, memoised
costs, incremental swap deltas) — and wrap it with evaluation counting so the
CPU-cost comparison of Section 5 (CWM vs CDCM evaluation effort) can be
reported.

Delta-aware engines (simulated annealing, greedy refinement) additionally
call :meth:`CountingObjective.delta` when ``supports_delta`` is True; the
wrapper forwards to the bound :class:`~repro.eval.context.EvaluationContext`
and keeps a separate ``delta_evaluations`` counter so full and incremental
pricing effort stay distinguishable in reports.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.core.mapping import Mapping
from repro.eval.context import (
    CacheInfo,
    CdcmEvaluationContext,
    CwmEvaluationContext,
    DEFAULT_CACHE_SIZE,
    EvaluationContext,
)
from repro.graphs.cdcg import CDCG
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform

#: The signature every search engine expects.
ObjectiveFunction = Callable[[Mapping], float]


class CountingObjective:
    """Wrap an objective function, counting calls and accumulating CPU time.

    Attributes
    ----------
    evaluations:
        Number of times the objective has been called.
    delta_evaluations:
        Number of incremental :meth:`delta` calls (0 for contexts without
        delta support or plain callables).
    elapsed:
        Total wall-clock seconds spent inside the wrapped function and the
        delta evaluator.
    """

    def __init__(
        self,
        function: ObjectiveFunction,
        name: str = "objective",
        context: Optional[EvaluationContext] = None,
    ) -> None:
        self._function = function
        self._context = context
        self.name = name
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def __call__(self, mapping: Mapping) -> float:
        start = time.perf_counter()
        try:
            return self._function(mapping)
        finally:
            self.elapsed += time.perf_counter() - start
            self.evaluations += 1

    # ------------------------------------------------------------------
    # Evaluation-engine passthrough
    # ------------------------------------------------------------------
    @property
    def context(self) -> Optional[EvaluationContext]:
        """The bound evaluation context, if any."""
        return self._context

    @property
    def supports_delta(self) -> bool:
        """True when :meth:`delta` returns exact incremental costs."""
        return self._context is not None and self._context.supports_delta

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Exact cost change of ``mapping.swap_tiles(tile_a, tile_b)``."""
        if self._context is None:
            raise NotImplementedError(
                f"objective {self.name!r} has no evaluation context and cannot "
                f"price incremental moves"
            )
        start = time.perf_counter()
        try:
            return self._context.delta(mapping, tile_a, tile_b)
        finally:
            self.elapsed += time.perf_counter() - start
            self.delta_evaluations += 1

    def cache_info(self) -> Optional[CacheInfo]:
        """Memo statistics of the bound context (None for plain callables)."""
        return self._context.cache_info() if self._context is not None else None

    def reset(self) -> None:
        """Zero the counters (e.g. between search runs)."""
        self.evaluations = 0
        self.delta_evaluations = 0
        self.elapsed = 0.0

    def __repr__(self) -> str:
        return (
            f"CountingObjective(name={self.name!r}, evaluations={self.evaluations}, "
            f"elapsed={self.elapsed:.3f}s)"
        )


def cwm_objective(
    cwg: CWG,
    platform: Platform,
    include_local: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    context: Optional[CwmEvaluationContext] = None,
) -> CountingObjective:
    """Objective minimising CWM dynamic energy (equation 3).

    The returned objective supports exact incremental swap deltas (see
    :class:`~repro.eval.context.CwmEvaluationContext`).  Pass *context* to
    share a pre-built context (and its route table / memo) across objectives.
    """
    if context is None:
        context = CwmEvaluationContext(
            cwg, platform, include_local=include_local, cache_size=cache_size
        )
    return CountingObjective(context.cost, name=context.name, context=context)


def cdcm_objective(
    cdcg: CDCG,
    platform: Platform,
    metric: str = "energy",
    energy_weight: float = 1.0,
    time_weight: float = 0.0,
    include_local: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    context: Optional[CdcmEvaluationContext] = None,
) -> CountingObjective:
    """Objective minimising CDCM total energy (equation 10) or execution time."""
    if context is None:
        context = CdcmEvaluationContext(
            cdcg,
            platform,
            metric=metric,
            energy_weight=energy_weight,
            time_weight=time_weight,
            include_local=include_local,
            cache_size=cache_size,
        )
    return CountingObjective(context.cost, name=context.name, context=context)


__all__ = [
    "ObjectiveFunction",
    "CountingObjective",
    "cwm_objective",
    "cdcm_objective",
]
