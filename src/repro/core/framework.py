"""The FRW framework: model + search + platform, in one front-end.

The paper's FRW framework "implements a simulated annealing search method to
obtain mapping solutions for CWM and CDCM [and] can also execute an exhaustive
search method to compare the quality of solutions against an absolute optimum
solution, for small NoCs".  :class:`FRWFramework` reproduces that workflow:

>>> framework = FRWFramework(cdcg, platform)            # doctest: +SKIP
>>> cwm_outcome = framework.map(model="cwm", method="sa", seed=1)
>>> cdcm_outcome = framework.map(model="cdcm", method="sa", seed=1)
>>> framework.evaluate(cwm_outcome.mapping).execution_time   # always CDCM-priced

Whatever model drove the search, :meth:`FRWFramework.evaluate` prices the
resulting mapping under the full CDCM model (schedule replay + equation 10),
which is how the paper's Table 2 compares the two — the models compete on the
quality of the mapping they find, judged by the richer model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.core.cdcm import CdcmReport
from repro.core.cwm import CwmEvaluator
from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.core.objective import (
    CountingObjective,
    ScalarisedObjective,
    cdcm_objective,
    cwm_objective,
)
from repro.energy.technology import Technology
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.eval.repair import RepairPolicy
from repro.eval.route_table import get_route_table
from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform
from repro.search.base import SearchResult, Searcher
from repro.search.greedy import GreedyConstructive
from repro.search.registry import get_searcher
from repro.utils.errors import ConfigurationError, MappingError
from repro.utils.rng import RandomSource, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import only used by type checkers
    from repro.eval.parallel import BatchBackend

#: Models the framework can search with.
_MODELS = ("cwm", "cdcm")


@dataclass
class MappingOutcome:
    """Result of one framework mapping run.

    Attributes
    ----------
    model:
        ``"cwm"`` or ``"cdcm"`` — the model whose objective drove the search.
    method:
        Name of the search engine used.
    mapping:
        Best mapping found.
    cost:
        Its objective value *under the model that searched for it* (CWM cost
        for CWM runs, CDCM cost for CDCM runs — they are not directly
        comparable; use :meth:`FRWFramework.evaluate` for a common yardstick).
    search:
        Full search trace.
    evaluations:
        Number of objective evaluations.
    cpu_time:
        Wall-clock seconds spent evaluating the objective (the quantity behind
        the paper's "CDCM took at most 23 % more CPU time" claim).
    """

    model: str
    method: str
    mapping: Mapping
    cost: float
    search: SearchResult
    evaluations: int
    cpu_time: float


class FRWFramework:
    """Front-end binding an application, a platform, the two models and the
    search engines.

    Parameters
    ----------
    cdcg:
        Packet-level application model.  The CWG used by CWM runs is derived
        from it automatically (unless *cwg* is supplied explicitly).
    platform:
        Target NoC.
    cwg:
        Optional explicit CWG.  Must be consistent with the CDCG; supplying it
        is only useful when the application was natively captured as a CWG and
        the CDCG was produced later by hand, as the paper describes.
    vectorize:
        Forwarded to every :class:`CwmEvaluationContext` the framework builds
        (the shared context and each :meth:`objective` context): whether CWM
        batch misses are priced by the NumPy array kernel of
        :mod:`repro.eval.vector`.  ``None`` (default) follows the
        context's default — on; the comparison driver pins it off for the
        reproduced paper rows (see
        :class:`~repro.analysis.comparison.ComparisonConfig`).
    repair:
        Forwarded to every :class:`CdcmEvaluationContext` the framework
        builds: whether CDCM swap deltas are priced by the bounded-repair
        engine of :mod:`repro.eval.repair`.  ``None`` (default) follows the
        context's default — on; the comparison driver pins it off for the
        reproduced paper rows.
    repair_policy:
        Optional :class:`~repro.eval.repair.RepairPolicy` forwarded with
        the ``repair`` gate (resync period, drift bound, closure depth).
    backend:
        Optional :class:`~repro.eval.parallel.BatchBackend` forwarded to
        every evaluation context the framework builds (the shared contexts
        and each :meth:`objective` context), so batch misses fan out through
        it — a process pool, or the store-draining
        :class:`~repro.service.client.ServiceBackend` of the mapping
        service.  ``None`` (default) prices inline; the comparison driver
        keeps it ``None`` for the reproduced paper rows (see
        :class:`~repro.analysis.comparison.ComparisonConfig`).  The
        framework borrows the backend — callers own its lifecycle.
    """

    def __init__(
        self,
        cdcg: CDCG,
        platform: Platform,
        cwg: Optional[CWG] = None,
        vectorize: Optional[bool] = None,
        repair: Optional[bool] = None,
        repair_policy: Optional[RepairPolicy] = None,
        backend: Optional["BatchBackend"] = None,
    ) -> None:
        cdcg.validate()
        if cdcg.num_cores > platform.num_tiles:
            raise MappingError(
                f"application {cdcg.name!r} has {cdcg.num_cores} cores but the "
                f"platform only has {platform.num_tiles} tiles"
            )
        self.cdcg = cdcg
        self.cwg = cwg if cwg is not None else cdcg_to_cwg(cdcg)
        self.platform = platform
        # One shared route table and one evaluation context per model: every
        # objective handed to a search engine, and every evaluate() call,
        # prices mappings against the same precomputed tables and memo.
        self.route_table = get_route_table(platform)
        self._vectorize = vectorize
        self._repair = repair
        self._repair_policy = repair_policy
        self._backend = backend
        self._cwm_context = CwmEvaluationContext(
            self.cwg,
            platform,
            route_table=self.route_table,
            vectorize=vectorize,
            backend=backend,
        )
        self._cdcm_context = CdcmEvaluationContext(
            self.cdcg,
            platform,
            route_table=self.route_table,
            repair=repair,
            repair_policy=repair_policy,
            backend=backend,
        )
        self._cdcm_evaluator = self._cdcm_context.evaluator
        self._cwm_evaluator = CwmEvaluator(platform, route_table=self.route_table)

    # ------------------------------------------------------------------
    # Mapping search
    # ------------------------------------------------------------------
    def evaluation_context(self, model: str):
        """The shared :class:`~repro.eval.context.EvaluationContext` of a model."""
        if model not in _MODELS:
            raise ConfigurationError(
                f"unknown model {model!r}; expected one of {_MODELS}"
            )
        return self._cwm_context if model == "cwm" else self._cdcm_context

    def objective(self, model: str, weights: Optional[Dict[str, float]] = None):
        """An objective of one model, bound to this application.

        Each call builds a fresh evaluation context over the framework's
        shared route table: searches reuse the precomputed routes but start
        with a cold memo, so ``MappingOutcome.cpu_time`` measures one search's
        evaluation effort (the Section 5 quantity) rather than whatever
        earlier runs happened to warm.  Use :meth:`evaluation_context` for
        the long-lived shared contexts instead.

        Parameters
        ----------
        model:
            ``"cwm"`` or ``"cdcm"``.
        weights:
            Optional ``{metric_name: weight}`` scalarisation.  When omitted a
            :class:`~repro.core.objective.CountingObjective` with the model's
            default weight view is returned (bit-identical to the legacy
            scalar objective); when given, a
            :class:`~repro.core.objective.ScalarisedObjective` view over the
            fresh context is returned instead — derive more views from its
            :meth:`~repro.core.objective.ScalarisedObjective.with_weights`
            to sweep weight vectors off one shared memo.
        """
        if model == "cwm":
            context = CwmEvaluationContext(
                self.cwg,
                self.platform,
                route_table=self.route_table,
                vectorize=self._vectorize,
                backend=self._backend,
            )
            if weights is not None:
                return ScalarisedObjective(context, weights)
            return cwm_objective(self.cwg, self.platform, context=context)
        if model == "cdcm":
            context = CdcmEvaluationContext(
                self.cdcg,
                self.platform,
                route_table=self.route_table,
                repair=self._repair,
                repair_policy=self._repair_policy,
                backend=self._backend,
            )
            if weights is not None:
                return ScalarisedObjective(context, weights)
            return cdcm_objective(self.cdcg, self.platform, context=context)
        raise ConfigurationError(
            f"unknown model {model!r}; expected one of {_MODELS}"
        )

    def initial_mapping(self, seed: RandomSource = None) -> Mapping:
        """Random initial mapping (the paper's starting condition)."""
        return Mapping.random(
            self.cdcg.cores(), self.platform.num_tiles, ensure_rng(seed)
        )

    def greedy_mapping(self) -> Mapping:
        """Deterministic greedy constructive mapping (baseline/extension)."""
        return GreedyConstructive(self.cwg, self.platform).construct()

    def map(
        self,
        model: str = "cdcm",
        method: str = "annealing",
        seed: RandomSource = None,
        initial: Optional[Mapping] = None,
        searcher: Optional[Searcher] = None,
        **searcher_kwargs,
    ) -> MappingOutcome:
        """Search for a mapping with the given model and search method.

        Parameters
        ----------
        model:
            ``"cwm"`` or ``"cdcm"``.
        method:
            Search engine name (``"annealing"``/``"sa"``, ``"exhaustive"``/
            ``"es"``, ``"random"``, ``"genetic"``); ignored when *searcher* is
            given.
        seed:
            Seed (or generator) for the initial mapping and the stochastic
            search.
        initial:
            Optional explicit starting mapping.
        searcher:
            Optional pre-built engine instance (overrides *method*).
        searcher_kwargs:
            Forwarded to the engine constructor when built from *method*.
        """
        generator = ensure_rng(seed)
        objective = self.objective(model)
        start = initial if initial is not None else self.initial_mapping(generator)
        engine = searcher if searcher is not None else get_searcher(
            method, **searcher_kwargs
        )

        begin = time.perf_counter()
        result = engine.search(objective, start, generator)
        elapsed = time.perf_counter() - begin

        return MappingOutcome(
            model=model,
            method=engine.name,
            mapping=result.best_mapping,
            cost=result.best_cost,
            search=result,
            evaluations=objective.evaluations + objective.delta_evaluations,
            cpu_time=elapsed,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        mapping: Mapping,
        technology: Optional[Technology] = None,
    ) -> CdcmReport:
        """Price a mapping under the full CDCM model (optionally re-priced
        under a different technology)."""
        return self._cdcm_evaluator.evaluate(self.cdcg, mapping, technology)

    def evaluate_cwm_cost(self, mapping: Mapping) -> float:
        """Dynamic-energy cost of a mapping under CWM (equation 3)."""
        return self._cwm_evaluator.cost(self.cwg, mapping)

    def evaluate_many(
        self,
        mappings: Dict[str, Mapping],
        technology: Optional[Technology] = None,
    ) -> Dict[str, CdcmReport]:
        """Evaluate several named mappings under CDCM in one call."""
        return {
            name: self.evaluate(mapping, technology)
            for name, mapping in mappings.items()
        }

    def evaluate_batch(self, mappings, model: str = "cdcm"):
        """Scalar costs of several mappings under one model's shared context.

        Routes through :meth:`evaluation_context`, so repeated candidates hit
        the context memo instead of being re-priced.
        """
        return self.evaluation_context(model).evaluate_batch(mappings)

    def evaluate_metrics_batch(self, mappings, model: str = "cdcm"):
        """Named metric vectors of several mappings under one model's context.

        The vector twin of :meth:`evaluate_batch` — one pricing pass per
        unique candidate, shared with every scalarisation view over the same
        context.  This is the entry point Pareto tooling
        (:mod:`repro.analysis.pareto`) sweeps weight vectors through.
        """
        return self.evaluation_context(model).evaluate_metrics_batch(mappings)

    def metrics(self, mapping: Mapping, model: str = "cdcm") -> MetricVector:
        """Named metric vector of one mapping under one model's shared context."""
        return self.evaluation_context(model).metrics(mapping)


__all__ = ["FRWFramework", "MappingOutcome"]
