"""Core-to-tile mappings.

A :class:`Mapping` is an injective assignment of application cores to NoC
tiles — one of the ``n!`` candidate solutions of the mapping problem stated in
Section 1 of the paper.  Mappings are immutable; the transformation methods
(:meth:`Mapping.swap_cores`, :meth:`Mapping.move_core`, ...) return new
objects, which keeps search-engine bookkeeping (best-so-far, history, tabu
lists) trivially correct.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import MappingError
from repro.utils.rng import RandomSource, ensure_rng


class Mapping:
    """Immutable injective assignment of cores to tile indices.

    Parameters
    ----------
    assignments:
        Mapping from core name to tile index.
    num_tiles:
        Optional size of the target NoC; when given, every tile index is
        checked against it and the free-tile helpers become available.
    """

    __slots__ = ("_core_to_tile", "_tile_to_core", "_num_tiles", "_hash")

    def __init__(
        self,
        assignments: Dict[str, int] | Iterable[Tuple[str, int]],
        num_tiles: Optional[int] = None,
    ) -> None:
        core_to_tile = dict(assignments)
        tile_to_core: Dict[int, str] = {}
        for core, tile in core_to_tile.items():
            if not isinstance(tile, (int,)) or isinstance(tile, bool):
                raise MappingError(
                    f"tile index for core {core!r} must be an int, got {tile!r}"
                )
            if tile < 0:
                raise MappingError(
                    f"core {core!r} mapped to negative tile index {tile}"
                )
            if num_tiles is not None and tile >= num_tiles:
                raise MappingError(
                    f"core {core!r} mapped to tile {tile}, but the NoC only has "
                    f"{num_tiles} tiles"
                )
            if tile in tile_to_core:
                raise MappingError(
                    f"cores {tile_to_core[tile]!r} and {core!r} are both mapped "
                    f"to tile {tile}"
                )
            tile_to_core[tile] = core
        if num_tiles is not None and len(core_to_tile) > num_tiles:
            raise MappingError(
                f"{len(core_to_tile)} cores cannot be placed on {num_tiles} tiles"
            )
        self._core_to_tile = core_to_tile
        self._tile_to_core = tile_to_core
        self._num_tiles = num_tiles
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _from_trusted(
        cls,
        core_to_tile: Dict[str, int],
        tile_to_core: Dict[int, str],
        num_tiles: Optional[int],
    ) -> "Mapping":
        """Build a mapping from already-validated lookup tables.

        Internal fast path for the transformation methods: a swap or move of a
        valid mapping stays valid, so re-running the injectivity and range
        checks of ``__init__`` on every search move would only burn the hot
        path.  Callers must guarantee both dicts are consistent.
        """
        mapping = object.__new__(cls)
        mapping._core_to_tile = core_to_tile
        mapping._tile_to_core = tile_to_core
        mapping._num_tiles = num_tiles
        mapping._hash = None
        return mapping

    @classmethod
    def random(
        cls,
        cores: Sequence[str],
        num_tiles: int,
        rng: RandomSource = None,
    ) -> "Mapping":
        """Uniformly random injective mapping of *cores* onto *num_tiles* tiles.

        This is the paper's initial condition: "Initially, all cores of C are
        randomly mapped onto the set of tiles".
        """
        cores = list(cores)
        if len(cores) > num_tiles:
            raise MappingError(
                f"{len(cores)} cores cannot be placed on {num_tiles} tiles"
            )
        generator = ensure_rng(rng)
        tiles = generator.permutation(num_tiles)[: len(cores)]
        return cls(
            {core: int(tile) for core, tile in zip(cores, tiles)},
            num_tiles=num_tiles,
        )

    @classmethod
    def identity(cls, cores: Sequence[str], num_tiles: Optional[int] = None) -> "Mapping":
        """Map the i-th core to tile i (a convenient deterministic baseline)."""
        cores = list(cores)
        total = num_tiles if num_tiles is not None else len(cores)
        return cls({core: idx for idx, core in enumerate(cores)}, num_tiles=total)

    @classmethod
    def from_index_array(
        cls,
        cores: Sequence[str],
        tiles: "np.ndarray | Sequence[int]",
        num_tiles: Optional[int] = None,
    ) -> "Mapping":
        """Rebuild a mapping from a tile-index row (:meth:`to_index_array` inverse).

        ``tiles[i]`` is the tile hosting ``cores[i]``; the two sequences must
        have equal length.  The usual constructor validation applies
        (injectivity, range when *num_tiles* is given), so
        ``Mapping.from_index_array(m.cores, m.to_index_array(), m.num_tiles)``
        round-trips to an equal mapping for any core order — though the
        *pinned* contract used by array populations everywhere is the default
        :meth:`to_index_array` order: the sorted core names of the bound CWG.

        Parameters
        ----------
        cores:
            Core names, positionally matching *tiles*.
        tiles:
            Integer tile indices (any integer dtype; one per core).
        num_tiles:
            Optional NoC size forwarded to the constructor.
        """
        cores = list(cores)
        if len(cores) != len(tiles):
            raise MappingError(
                f"{len(cores)} cores but {len(tiles)} tile indices"
            )
        return cls(
            {core: int(tile) for core, tile in zip(cores, tiles)},
            num_tiles=num_tiles,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> Optional[int]:
        return self._num_tiles

    @property
    def cores(self) -> List[str]:
        """Mapped cores, sorted for determinism."""
        return sorted(self._core_to_tile)

    @property
    def num_cores(self) -> int:
        return len(self._core_to_tile)

    def tile_of(self, core: str) -> int:
        """Tile index hosting *core*."""
        try:
            return self._core_to_tile[core]
        except KeyError as exc:
            raise MappingError(f"core {core!r} is not mapped") from exc

    def core_at(self, tile: int) -> Optional[str]:
        """Core hosted by *tile*, or ``None`` when the tile is empty."""
        return self._tile_to_core.get(tile)

    def assignments(self) -> Dict[str, int]:
        """Copy of the core -> tile dictionary."""
        return dict(self._core_to_tile)

    def to_index_array(self, cores: Optional[Sequence[str]] = None) -> np.ndarray:
        """Tile indices as an int64 row, one entry per core.

        This is the ``Mapping`` half of the array-population protocol used by
        the vectorised pricing kernel (:mod:`repro.eval.vector`): a population
        is a ``(pop, cores)`` int array whose row *r*, column *c* holds the
        tile of the *c*-th core.  The **pinned core-order contract** is the
        default ``cores=None`` order — :attr:`cores`, i.e. the sorted core
        names of the bound CWG — so arrays produced by different call sites
        always agree column-for-column.  Pass an explicit *cores* sequence
        only when interoperating with a kernel bound to a custom order.

        Raises
        ------
        MappingError
            If a requested core is not placed by this mapping.
        """
        order = self.cores if cores is None else cores
        lookup = self._core_to_tile
        row = np.empty(len(order), dtype=np.int64)
        for column, core in enumerate(order):
            try:
                row[column] = lookup[core]
            except KeyError as exc:
                raise MappingError(f"core {core!r} is not mapped") from exc
        return row

    def used_tiles(self) -> List[int]:
        """Tiles hosting a core, sorted."""
        return sorted(self._tile_to_core)

    def free_tiles(self) -> List[int]:
        """Tiles not hosting any core (requires ``num_tiles``)."""
        if self._num_tiles is None:
            raise MappingError(
                "free_tiles() requires the mapping to know the NoC size"
            )
        used = set(self._tile_to_core)
        return [tile for tile in range(self._num_tiles) if tile not in used]

    def has_core(self, core: str) -> bool:
        return core in self._core_to_tile

    # ------------------------------------------------------------------
    # Transformations (all return new Mapping objects)
    # ------------------------------------------------------------------
    def swap_cores(self, core_a: str, core_b: str) -> "Mapping":
        """Exchange the tiles of two cores."""
        tile_a = self.tile_of(core_a)
        tile_b = self.tile_of(core_b)
        core_to_tile = dict(self._core_to_tile)
        core_to_tile[core_a] = tile_b
        core_to_tile[core_b] = tile_a
        tile_to_core = dict(self._tile_to_core)
        tile_to_core[tile_a] = core_b
        tile_to_core[tile_b] = core_a
        return Mapping._from_trusted(core_to_tile, tile_to_core, self._num_tiles)

    def swap_tiles(self, tile_a: int, tile_b: int) -> "Mapping":
        """Exchange the contents of two tiles (either may be empty)."""
        if self._num_tiles is not None:
            for tile in (tile_a, tile_b):
                if not 0 <= tile < self._num_tiles:
                    raise MappingError(
                        f"tile {tile} outside the {self._num_tiles}-tile NoC"
                    )
        core_a = self._tile_to_core.get(tile_a)
        core_b = self._tile_to_core.get(tile_b)
        core_to_tile = dict(self._core_to_tile)
        tile_to_core = dict(self._tile_to_core)
        tile_to_core.pop(tile_a, None)
        tile_to_core.pop(tile_b, None)
        if core_a is not None:
            core_to_tile[core_a] = tile_b
            tile_to_core[tile_b] = core_a
        if core_b is not None:
            core_to_tile[core_b] = tile_a
            tile_to_core[tile_a] = core_b
        return Mapping._from_trusted(core_to_tile, tile_to_core, self._num_tiles)

    def move_core(self, core: str, tile: int) -> "Mapping":
        """Move *core* to *tile*; if the tile is occupied the occupant swaps back."""
        current = self.tile_of(core)
        occupant = self.core_at(tile)
        assignments = self.assignments()
        assignments[core] = tile
        if occupant is not None and occupant != core:
            assignments[occupant] = current
        return Mapping(assignments, self._num_tiles)

    def relabel_tiles(self, permutation: Dict[int, int]) -> "Mapping":
        """Apply a tile permutation (used by symmetry-reduction utilities)."""
        assignments = {
            core: permutation.get(tile, tile)
            for core, tile in self._core_to_tile.items()
        }
        return Mapping(assignments, self._num_tiles)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._core_to_tile.items()))

    def __len__(self) -> int:
        return len(self._core_to_tile)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._core_to_tile == other._core_to_tile

    def __hash__(self) -> int:
        # Mappings are immutable, so the hash is computed once and cached —
        # memoised evaluation contexts hash every candidate they price.
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._core_to_tile.items())))
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{core}->tau{tile}" for core, tile in self)
        return f"Mapping({body})"


__all__ = ["Mapping"]
