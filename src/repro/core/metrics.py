"""Named metric vectors — the vector-valued core of the objective layer.

The paper's CWM/CDCM comparison is fundamentally a two-criterion trade-off
(communication energy vs. execution time), but a search engine only ever
consumes a scalar ``mapping -> cost``.  This module supplies the piece that
keeps both truths compatible:

* :class:`MetricVector` — an immutable vector of *named* objective components
  (energy terms, CDCM makespan), every component minimised.  Evaluators
  produce one vector per mapping; the evaluation engine memoises vectors, not
  scalars, so any number of scalarisations can be derived from one pricing
  pass.
* :func:`MetricVector.weighted_sum` — the scalarisation: a weight vector
  applied over the components, accumulated in component order so legacy
  single-metric objectives stay bit-identical (``1.0 * E == E`` exactly).
* :func:`scalarisation_weights` — translates the legacy CDCM ``metric`` /
  ``energy_weight`` / ``time_weight`` knobs into an equivalent weight dict,
  the single place that mapping lives (it used to be duplicated between the
  CWM and CDCM objective factories and the CDCM evaluator).
* :func:`validate_weights` — the shared weight-vector sanity check used by
  every scalarisation view.

Component name tuples for the two models are exported as
:data:`CWM_METRIC_NAMES` and :data:`CDCM_METRIC_NAMES`; Pareto tooling
(:mod:`repro.analysis.pareto`) keys fronts on subsets of these names
(typically ``("energy", "time")``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping as MappingType, Optional, Sequence, Tuple, Union

from repro.utils.errors import ConfigurationError

#: Component names of a CWM evaluation — the model knows dynamic energy only.
CWM_METRIC_NAMES: Tuple[str, ...] = ("dynamic_energy",)

#: Component names of a CDCM evaluation, in scalarisation-accumulation order:
#: ``energy`` is ``ENoC`` (equation 10), ``time`` is ``texec``, the two
#: energy terms break the total down (``energy == dynamic_energy +
#: static_energy``), and ``max_link_utilisation`` is the busiest link's busy
#: fraction of the replay (the congestion component the co-design engines
#: optimise).  New components are appended at the end: ``weighted_sum`` skips
#: zero-weight components and :func:`scalarisation_weights` never names the
#: congestion term, so every legacy weight view stays bit-identical.
CDCM_METRIC_NAMES: Tuple[str, ...] = (
    "energy",
    "time",
    "dynamic_energy",
    "static_energy",
    "max_link_utilisation",
)

#: Legacy CDCM metric specifications accepted by :func:`scalarisation_weights`.
_CDCM_METRIC_SPECS = ("energy", "time", "weighted")


class MetricVector:
    """An immutable vector of named objective components (lower is better).

    Parameters
    ----------
    names:
        Component names, unique, in a stable order — the order scalarisation
        accumulates in (which is what keeps derived scalars bit-identical to
        the legacy single-expression objectives).
    values:
        One float per name.

    Notes
    -----
    Instances behave like a lightweight read-only mapping: ``vector["time"]``,
    ``"time" in vector``, ``len(vector)``, iteration over names,
    :meth:`items` and :meth:`as_dict`.  They are hashable and compare by
    (names, values), so they can key memos and be asserted bit-identical in
    tests.
    """

    __slots__ = ("_names", "_values")

    def __init__(self, names: Iterable[str], values: Iterable[float]) -> None:
        names = tuple(names)
        values = tuple(float(value) for value in values)
        if len(names) != len(values):
            raise ConfigurationError(
                f"metric vector has {len(names)} names but {len(values)} values"
            )
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate metric names in {names!r}")
        self._names = names
        self._values = values

    @classmethod
    def from_dict(cls, components: MappingType[str, float]) -> "MetricVector":
        """Build a vector from a ``{name: value}`` mapping (insertion order kept)."""
        return cls(tuple(components), tuple(components.values()))

    # ------------------------------------------------------------------
    # Read-only mapping behaviour
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Component names, in accumulation order."""
        return self._names

    @property
    def values(self) -> Tuple[float, ...]:
        """Component values, aligned with :attr:`names`."""
        return self._values

    def __getitem__(self, key: Union[str, int]) -> float:
        if isinstance(key, int):
            return self._values[key]
        try:
            return self._values[self._names.index(key)]
        except ValueError:
            raise KeyError(
                f"no metric named {key!r}; components are {self._names}"
            ) from None

    def get(self, name: str, default: Optional[float] = None) -> Optional[float]:
        """Component value by name, or *default* when absent."""
        try:
            return self._values[self._names.index(name)]
        except ValueError:
            return default

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(name, value)`` pairs in accumulation order."""
        return iter(zip(self._names, self._values))

    def as_dict(self) -> Dict[str, float]:
        """The vector as a plain ``{name: value}`` dict (accumulation order)."""
        return dict(zip(self._names, self._values))

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricVector):
            return NotImplemented
        return self._names == other._names and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._names, self._values))

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={value:g}" for name, value in self.items())
        return f"MetricVector({body})"

    # ------------------------------------------------------------------
    # Scalarisation and dominance
    # ------------------------------------------------------------------
    def weighted_sum(
        self, weights: MappingType[str, float], strict: bool = True
    ) -> float:
        """Scalarise the vector with a weight dict (missing weights are 0).

        Zero-weight components are skipped and the remaining terms are
        accumulated in component order starting from the first non-zero term,
        so a unit weight on one component returns exactly that component
        (``1.0 * v == v`` in IEEE arithmetic) and a two-term scalarisation
        reproduces ``w_a * a + w_b * b`` bit-for-bit — the property the
        legacy-objective compatibility shims rely on.

        Parameters
        ----------
        weights:
            ``{name: weight}``; names not in the vector contribute nothing.
        strict:
            When True (the default), weights naming components the vector
            does not have raise :class:`~repro.utils.errors.ConfigurationError`
            instead of being ignored silently.

        Returns
        -------
        float
            The weighted combination; 0.0 when every weight is zero.
        """
        if strict:
            unknown = [name for name in weights if name not in self._names]
            if unknown:
                raise ConfigurationError(
                    f"weights name unknown metrics {unknown!r}; "
                    f"components are {self._names}"
                )
        total: Optional[float] = None
        for name, value in zip(self._names, self._values):
            weight = weights.get(name, 0.0)
            if weight == 0.0:
                continue
            term = weight * value
            total = term if total is None else total + term
        return 0.0 if total is None else total

    def dominates(
        self, other: "MetricVector", keys: Optional[Sequence[str]] = None
    ) -> bool:
        """Pareto dominance: no worse on every key, strictly better on one.

        Parameters
        ----------
        other:
            The vector compared against.
        keys:
            Component names the dominance check ranges over; defaults to this
            vector's full component set.  Every key must exist in both
            vectors.

        Returns
        -------
        bool
            True when this vector weakly improves every key and strictly
            improves at least one (all metrics are minimised).
        """
        names = tuple(keys) if keys is not None else self._names
        strictly_better = False
        for name in names:
            mine = self[name]
            theirs = other[name]
            if mine > theirs:
                return False
            if mine < theirs:
                strictly_better = True
        return strictly_better


def validate_weights(
    weights: MappingType[str, float], metric_names: Sequence[str]
) -> Dict[str, float]:
    """Sanity-check a scalarisation weight dict against a component set.

    Parameters
    ----------
    weights:
        ``{name: weight}`` candidate weight vector.
    metric_names:
        The component names of the objective being scalarised.

    Returns
    -------
    dict
        A plain ``{name: float}`` copy of *weights*.

    Raises
    ------
    ConfigurationError
        When *weights* is empty, names an unknown component, carries a
        non-finite weight, or is all-zero (a constant objective is always a
        configuration mistake).
    """
    resolved = {str(name): float(value) for name, value in dict(weights).items()}
    if not resolved:
        raise ConfigurationError("scalarisation weights must not be empty")
    known = tuple(metric_names)
    unknown = [name for name in resolved if name not in known]
    if unknown:
        raise ConfigurationError(
            f"weights name unknown metrics {unknown!r}; components are {known}"
        )
    for name, value in resolved.items():
        if not math.isfinite(value):
            raise ConfigurationError(
                f"weight for metric {name!r} must be finite, got {value!r}"
            )
    if all(value == 0.0 for value in resolved.values()):
        raise ConfigurationError(
            "at least one scalarisation weight must be non-zero"
        )
    return resolved


def scalarisation_weights(
    metric: str,
    energy_weight: float = 1.0,
    time_weight: float = 0.0,
) -> Dict[str, float]:
    """Weight-dict equivalent of the legacy CDCM ``metric`` specification.

    This is the one place the old scalar knobs map onto the vector API —
    previously the translation logic was duplicated between the CDCM
    evaluator and the objective factories.

    Parameters
    ----------
    metric:
        ``"energy"`` (unit weight on ``ENoC``), ``"time"`` (unit weight on
        ``texec``) or ``"weighted"`` (the explicit two-term combination).
    energy_weight, time_weight:
        Term weights for the ``"weighted"`` metric; ignored otherwise.

    Returns
    -------
    dict
        Weights over :data:`CDCM_METRIC_NAMES` producing a scalar
        bit-identical to the legacy metric dispatch.
    """
    if metric == "energy":
        return {"energy": 1.0}
    if metric == "time":
        return {"time": 1.0}
    if metric == "weighted":
        return {"energy": float(energy_weight), "time": float(time_weight)}
    raise ConfigurationError(
        f"unknown CDCM metric {metric!r}; expected one of {_CDCM_METRIC_SPECS}"
    )


__all__ = [
    "CWM_METRIC_NAMES",
    "CDCM_METRIC_NAMES",
    "MetricVector",
    "validate_weights",
    "scalarisation_weights",
]
