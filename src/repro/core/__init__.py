"""The paper's primary contribution: mapping models and the FRW framework.

* :class:`~repro.core.mapping.Mapping` — an assignment of application cores to
  NoC tiles (the object the search engines explore);
* :class:`~repro.core.cwm.CwmEvaluator` — the communication weighted model:
  evaluates a mapping by its dynamic energy alone (equation 3);
* :class:`~repro.core.cdcm.CdcmEvaluator` — the communication dependence and
  computation model: replays the CDCG, obtaining execution time, contention
  and total (static + dynamic) energy (equations 4–10);
* :mod:`~repro.core.objective` — objective-function adapters binding an
  application and platform so search engines only see ``mapping -> cost``;
* :class:`~repro.core.framework.FRWFramework` — the front-end tying an
  application, a platform, a model (CWM/CDCM) and a search method (exhaustive
  search or simulated annealing) together, mirroring the paper's FRW
  framework.
"""

from repro.core.mapping import Mapping
from repro.core.cwm import CwmEvaluator, CwmReport
from repro.core.cdcm import CdcmEvaluator, CdcmReport
from repro.core.objective import (
    CountingObjective,
    cwm_objective,
    cdcm_objective,
)
from repro.core.framework import FRWFramework, MappingOutcome

__all__ = [
    "Mapping",
    "CwmEvaluator",
    "CwmReport",
    "CdcmEvaluator",
    "CdcmReport",
    "CountingObjective",
    "cwm_objective",
    "cdcm_objective",
    "FRWFramework",
    "MappingOutcome",
]
