"""The paper's primary contribution: mapping models and the FRW framework.

* :class:`~repro.core.mapping.Mapping` — an assignment of application cores to
  NoC tiles (the object the search engines explore);
* :class:`~repro.core.cwm.CwmEvaluator` — the communication weighted model:
  evaluates a mapping by its dynamic energy alone (equation 3);
* :class:`~repro.core.cdcm.CdcmEvaluator` — the communication dependence and
  computation model: replays the CDCG, obtaining execution time, contention
  and total (static + dynamic) energy (equations 4–10);
* :mod:`~repro.core.metrics` — named :class:`~repro.core.metrics.MetricVector`
  components and scalarisation weights, the vector-valued objective core;
* :mod:`~repro.core.objective` — objective-function adapters binding an
  application and platform so search engines only see ``mapping -> cost``,
  plus :class:`~repro.core.objective.ScalarisedObjective` weight views over
  a shared memo;
* :class:`~repro.core.framework.FRWFramework` — the front-end tying an
  application, a platform, a model (CWM/CDCM) and a search method (exhaustive
  search or simulated annealing) together, mirroring the paper's FRW
  framework.
"""

from repro.core.mapping import Mapping
from repro.core.metrics import (
    CDCM_METRIC_NAMES,
    CWM_METRIC_NAMES,
    MetricVector,
    scalarisation_weights,
    validate_weights,
)
from repro.core.cwm import CwmEvaluator, CwmReport
from repro.core.cdcm import CdcmEvaluator, CdcmReport
from repro.core.objective import (
    CountingObjective,
    ScalarisedObjective,
    VectorObjective,
    cwm_objective,
    cdcm_objective,
)
from repro.core.framework import FRWFramework, MappingOutcome

__all__ = [
    "Mapping",
    "MetricVector",
    "CWM_METRIC_NAMES",
    "CDCM_METRIC_NAMES",
    "scalarisation_weights",
    "validate_weights",
    "CwmEvaluator",
    "CwmReport",
    "CdcmEvaluator",
    "CdcmReport",
    "CountingObjective",
    "ScalarisedObjective",
    "VectorObjective",
    "cwm_objective",
    "cdcm_objective",
    "FRWFramework",
    "MappingOutcome",
]
