"""The Communication Dependence and Computation Model (CDCM) mapping evaluator.

The CDCM algorithm of Section 4 evaluates a mapping by *executing* the
application's CDCG onto the mapped CRG: packets become ready when their
dependences are satisfied, are injected after their source core's computation
time, and reserve the routers and links of their XY route — serialising when
they compete for a link.  The replay yields:

* the application execution time ``texec`` (including contention),
* the dynamic energy ``EDyNoC`` (equation 4),
* the static energy ``EstNoC = PstNoC x texec`` (equation 9),

and the CDCM objective is their sum ``ENoC`` (equation 10).  Because mappings
with less resource sharing finish earlier, minimising ``ENoC`` implicitly
minimises contention — the property CWM cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.metrics import (
    CDCM_METRIC_NAMES,
    MetricVector,
    scalarisation_weights,
)
from repro.energy.technology import Technology
from repro.energy.totals import EnergyBreakdown, total_energy_cdcm
from repro.graphs.cdcg import CDCG
from repro.noc.platform import Platform
from repro.noc.scheduler import CdcmScheduler, ScheduleResult
from repro.core.mapping import Mapping
from repro.utils.errors import ConfigurationError


@dataclass
class CdcmReport:
    """Full CDCM evaluation of one mapping.

    Attributes
    ----------
    application:
        CDCG name.
    schedule:
        The full replay result (per-packet timing and per-resource
        cost-variable lists).
    energy:
        Static + dynamic energy decomposition for the evaluation technology.
    """

    application: str
    schedule: ScheduleResult
    energy: EnergyBreakdown

    @property
    def execution_time(self) -> float:
        """``texec`` in nanoseconds."""
        return self.schedule.execution_time

    @property
    def total_energy(self) -> float:
        """``ENoC`` (equation 10) in pJ."""
        return self.energy.total

    @property
    def dynamic_energy(self) -> float:
        return self.energy.dynamic

    @property
    def static_energy(self) -> float:
        return self.energy.static

    @property
    def total_contention_delay(self) -> float:
        return self.schedule.total_contention_delay()

    def metric_vector(self) -> MetricVector:
        """Named component vector of this evaluation (the vector-objective view).

        Components follow :data:`~repro.core.metrics.CDCM_METRIC_NAMES`:
        total energy ``ENoC``, execution time ``texec``, the dynamic/static
        decomposition of the energy term, and the replay's
        :meth:`~repro.noc.scheduler.ScheduleResult.max_link_utilisation`
        congestion figure.  The congestion component never enters the legacy
        weight views (see :func:`~repro.core.metrics.scalarisation_weights`),
        so scalar costs are unchanged by its presence.
        """
        return MetricVector(
            CDCM_METRIC_NAMES,
            (
                self.energy.total,
                self.schedule.execution_time,
                self.energy.dynamic,
                self.energy.static,
                self.schedule.max_link_utilisation(),
            ),
        )


#: Metrics a CDCM objective can minimise.
_METRICS = ("energy", "time", "weighted")


class CdcmEvaluator:
    """Evaluates mappings under the communication dependence and computation model.

    Parameters
    ----------
    platform:
        Target architecture.
    metric:
        Quantity returned by :meth:`cost`:

        * ``"energy"`` (default) — total NoC energy ``ENoC`` (the paper's
          CDCM objective);
        * ``"time"`` — execution time ``texec``;
        * ``"weighted"`` — ``energy_weight x ENoC + time_weight x texec``
          (an extension for multi-objective exploration).
    include_local:
        Whether local core-router links contribute ``ECbit`` to dynamic energy.
    route_table:
        Optional pre-built :class:`~repro.eval.route_table.RouteTable` shared
        with other evaluators of the same platform; forwarded to the replay
        scheduler (which otherwise uses the process-wide shared table).
    """

    def __init__(
        self,
        platform: Platform,
        metric: str = "energy",
        energy_weight: float = 1.0,
        time_weight: float = 0.0,
        include_local: bool = True,
        route_table=None,
    ) -> None:
        if metric not in _METRICS:
            raise ConfigurationError(
                f"unknown CDCM metric {metric!r}; expected one of {_METRICS}"
            )
        self.platform = platform
        self.metric = metric
        self.energy_weight = energy_weight
        self.time_weight = time_weight
        self.include_local = include_local
        self.weights = scalarisation_weights(metric, energy_weight, time_weight)
        self._scheduler = CdcmScheduler(platform, route_table=route_table)

    @property
    def route_table(self):
        """The route table the replay scheduler resolves paths from."""
        return self._scheduler.route_table

    # ------------------------------------------------------------------
    # Objective function
    # ------------------------------------------------------------------
    def cost(self, cdcg: CDCG, mapping: Union[Mapping, Dict[str, int]]) -> float:
        """Scalar cost of a mapping under the configured metric.

        Derived from :meth:`metrics` by the evaluator's ``weights`` view
        (see :func:`~repro.core.metrics.scalarisation_weights`) —
        bit-identical to the legacy per-metric dispatch.
        """
        return self.metrics(cdcg, mapping).weighted_sum(
            self.weights, strict=False
        )

    def metrics(
        self, cdcg: CDCG, mapping: Union[Mapping, Dict[str, int]]
    ) -> MetricVector:
        """Named component vector of a mapping (one replay, every metric)."""
        return self.evaluate(cdcg, mapping).metric_vector()

    # ------------------------------------------------------------------
    # Full report
    # ------------------------------------------------------------------
    def evaluate(
        self,
        cdcg: CDCG,
        mapping: Union[Mapping, Dict[str, int]],
        technology: Optional[Technology] = None,
    ) -> CdcmReport:
        """Replay the CDCG over the mapped platform and price the result.

        Parameters
        ----------
        technology:
            Optional technology override; the replay (timing) is technology
            independent, so the same schedule can be re-priced under several
            technologies — this is how the two ECS columns of Table 2 are
            produced from a single schedule.
        """
        schedule = self._scheduler.schedule(cdcg, mapping)
        energy = total_energy_cdcm(
            schedule, self.platform, technology, self.include_local
        )
        return CdcmReport(
            application=cdcg.name,
            schedule=schedule,
            energy=energy,
        )

    def reprice(
        self, report: CdcmReport, technology: Technology
    ) -> CdcmReport:
        """Price an existing report under a different technology without rescheduling."""
        energy = total_energy_cdcm(
            report.schedule, self.platform, technology, self.include_local
        )
        return CdcmReport(
            application=report.application,
            schedule=report.schedule,
            energy=energy,
        )


__all__ = ["CdcmEvaluator", "CdcmReport"]
