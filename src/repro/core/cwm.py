"""The Communication Weighted Model (CWM) mapping evaluator.

Implements the CWM algorithm of Section 4: for a candidate mapping, every CWG
edge's bit volume is "walked" along the XY route between the tiles its source
and target cores are mapped to, accumulating into the cost variable of every
CRG vertex (router) and edge (link) it crosses.  Multiplying the router costs
by ``ERbit`` and the link costs by ``ELbit`` and summing gives ``EDyNoC``
(equation 3) — the CWM objective function.

Because the model carries no timing information, CWM cannot distinguish
mappings that differ only in contention or execution time (Figure 2 of the
paper shows two such mappings with identical CWM cost); that blind spot is
what the CDCM evaluator (:mod:`repro.core.cdcm`) removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from repro.core.metrics import CWM_METRIC_NAMES, MetricVector
from repro.energy.totals import EnergyBreakdown
from repro.eval.route_table import RouteTable, get_route_table
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform
from repro.noc.resources import (
    LinkResource,
    LocalLinkResource,
    Resource,
    RouterResource,
)
from repro.core.mapping import Mapping
from repro.utils.errors import MappingError


@dataclass
class CwmReport:
    """Full CWM evaluation of one mapping.

    Attributes
    ----------
    application:
        CWG name.
    dynamic_energy:
        ``EDyNoC`` (equation 3) in pJ — the CWM objective value.
    resource_bits:
        The CRG cost variables: bits accumulated on every router, link and
        local link crossed by any communication (the numbers annotated in
        Figure 2 of the paper).
    resource_energy:
        The same costs multiplied by the per-bit energy of each resource kind.
    """

    application: str
    dynamic_energy: float
    resource_bits: Dict[Resource, int] = field(default_factory=dict)
    resource_energy: Dict[Resource, float] = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        """CWM total energy — identical to the dynamic term (no timing model)."""
        return self.dynamic_energy

    def energy_breakdown(self, technology_name: str) -> EnergyBreakdown:
        """Represent this report as an :class:`EnergyBreakdown` (static = 0)."""
        return EnergyBreakdown(
            dynamic=self.dynamic_energy,
            static=0.0,
            execution_time=None,
            technology_name=technology_name,
        )

    def metric_vector(self) -> MetricVector:
        """Named component vector of this evaluation (the vector-objective view).

        CWM knows dynamic energy only, so the vector has the single
        :data:`~repro.core.metrics.CWM_METRIC_NAMES` component.
        """
        return MetricVector(CWM_METRIC_NAMES, (self.dynamic_energy,))

    def router_bits(self, tile: int) -> int:
        """Cost variable of the router at *tile* (0 if never crossed)."""
        return self.resource_bits.get(RouterResource(tile), 0)

    def link_bits(self, source: int, target: int) -> int:
        """Cost variable of the link *source* -> *target* (0 if never crossed)."""
        return self.resource_bits.get(LinkResource(source, target), 0)


class CwmEvaluator:
    """Evaluates mappings under the communication weighted model.

    Parameters
    ----------
    platform:
        Target architecture; its technology provides ``ERbit``/``ELbit``.
    include_local:
        Whether the local core-router links contribute ``ECbit`` per bit
        (the paper neglects them; the default follows the technology — a zero
        ``e_cbit`` makes the flag irrelevant).
    route_table:
        Optional pre-built :class:`~repro.eval.route_table.RouteTable`; by
        default the process-wide shared table for *platform* is used, so the
        per-pair hop counts and bit energies are computed once per platform
        instead of once per evaluation.
    """

    def __init__(
        self,
        platform: Platform,
        include_local: bool = True,
        route_table: RouteTable | None = None,
    ) -> None:
        self.platform = platform
        self.include_local = include_local
        self.route_table = (
            route_table
            if route_table is not None
            else get_route_table(platform, include_local=include_local)
        )

    # ------------------------------------------------------------------
    # Objective function
    # ------------------------------------------------------------------
    def cost(self, cwg: CWG, mapping: Union[Mapping, Dict[str, int]]) -> float:
        """``EDyNoC`` of the mapping — the value the CWM search minimises.

        Search hot paths use the value-identical
        :class:`~repro.eval.context.CwmEvaluationContext` instead, which binds
        one CWG into flat edge arrays; this method stays per-call because the
        CWG argument is mutable and may differ between calls.
        """
        tiles = _assignments(mapping)
        bit_energy = self.route_table.bit_energy
        total = 0.0
        for comm in cwg.communications():
            total += comm.bits * bit_energy(
                _tile(tiles, comm.source, cwg.name),
                _tile(tiles, comm.target, cwg.name),
            )
        return total

    # ------------------------------------------------------------------
    # Full report
    # ------------------------------------------------------------------
    def evaluate(self, cwg: CWG, mapping: Union[Mapping, Dict[str, int]]) -> CwmReport:
        """Produce the per-resource cost variables and the total dynamic energy."""
        tiles = _assignments(mapping)
        technology = self.platform.technology
        resource_bits: Dict[Resource, int] = {}
        for comm in cwg.communications():
            source_tile = _tile(tiles, comm.source, cwg.name)
            target_tile = _tile(tiles, comm.target, cwg.name)
            path = self.route_table.path(source_tile, target_tile)
            _accumulate(resource_bits, LocalLinkResource(source_tile), comm.bits)
            for router in path:
                _accumulate(resource_bits, RouterResource(router), comm.bits)
            for link_source, link_target in zip(path, path[1:]):
                _accumulate(
                    resource_bits, LinkResource(link_source, link_target), comm.bits
                )
            _accumulate(resource_bits, LocalLinkResource(target_tile), comm.bits)

        resource_energy: Dict[Resource, float] = {}
        total = 0.0
        for resource, bits in resource_bits.items():
            if isinstance(resource, RouterResource):
                per_bit = technology.e_rbit
            elif isinstance(resource, LinkResource):
                per_bit = technology.e_lbit
            else:
                per_bit = technology.e_cbit if self.include_local else 0.0
            energy = bits * per_bit
            resource_energy[resource] = energy
            total += energy
        return CwmReport(
            application=cwg.name,
            dynamic_energy=total,
            resource_bits=resource_bits,
            resource_energy=resource_energy,
        )


def _accumulate(store: Dict[Resource, int], resource: Resource, bits: int) -> None:
    store[resource] = store.get(resource, 0) + bits


def _assignments(mapping: Union[Mapping, Dict[str, int]]) -> Dict[str, int]:
    if isinstance(mapping, Mapping):
        return mapping.assignments()
    return dict(mapping)


def _tile(tiles: Dict[str, int], core: str, application: str) -> int:
    try:
        return tiles[core]
    except KeyError as exc:
        raise MappingError(
            f"mapping does not place core {core!r} of application {application!r}"
        ) from exc


__all__ = ["CwmEvaluator", "CwmReport"]
