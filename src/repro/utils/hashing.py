"""Stable content digests — the identity currency of the result store.

Python's built-in ``hash()`` is salted per process (strings) and therefore
useless as a cross-run identity; ``pickle`` bytes are not guaranteed stable
across versions either.  This module provides the one canonical digest the
persistent layers key on: :func:`stable_digest` canonicalises a value built
from plain data (numbers, strings, containers, frozen dataclasses) into an
unambiguous byte string and hashes it with SHA-256, so the same logical value
produces the same hex digest in every process, on every run, on every
platform.

Used by the graph/workload ``content_hash()`` methods
(:meth:`repro.graphs.cwg.CWG.content_hash`,
:meth:`repro.graphs.cdcg.CDCG.content_hash`,
:meth:`repro.workloads.suite.SuiteEntry.content_hash`) and by the
:mod:`repro.service.store` key construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

from repro.utils.errors import ConfigurationError


def canonical_token(value: Any) -> str:
    """Unambiguous text form of a value built from plain data.

    Supported inputs: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, tuples/lists (ordered), sets/frozensets (canonically sorted)
    and dicts (sorted by canonical key), plus frozen dataclass instances
    (class identity + field map) — enough to canonicalise every identity
    token in the library (topology/routing cache tokens,
    :class:`~repro.energy.technology.Technology`,
    :class:`~repro.noc.platform.NocParameters`).  Every token embeds its
    type, and variable-length parts are length-prefixed, so two distinct
    values can never canonicalise to the same text.

    Raises
    ------
    ConfigurationError
        For values outside the supported vocabulary (arbitrary objects have
        no stable identity; canonicalise them explicitly first).
    """
    if value is None:
        return "~"
    if value is True:
        return "b1"
    if value is False:
        return "b0"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        # repr() is the shortest round-tripping decimal form — stable across
        # platforms for IEEE doubles.
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, (bytes, bytearray)):
        return f"y{bytes(value).hex()}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_token(item) for item in value) + ")"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical_token(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            (canonical_token(key), canonical_token(val))
            for key, val in value.items()
        )
        return "[" + ",".join(f"{key}={val}" for key, val in items) + "]"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = {
            field.name: getattr(value, field.name)
            for field in dataclasses.fields(value)
        }
        return (
            f"d{cls.__module__}.{cls.__qualname__}" + canonical_token(fields)
        )
    raise ConfigurationError(
        f"cannot canonicalise {type(value).__name__!r} value {value!r} for a "
        f"stable digest; supported: None/bool/int/float/str/bytes, "
        f"tuple/list/set/dict, frozen dataclasses"
    )


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_token` of *value*.

    The digest is deterministic across processes and runs (unlike ``hash()``,
    which is salted), which is what lets the persistent result store of
    :mod:`repro.service.store` key cached metric vectors on it.
    """
    return hashlib.sha256(canonical_token(value).encode("utf-8")).hexdigest()


__all__ = ["canonical_token", "stable_digest"]
