"""Exception hierarchy used across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so callers
can catch library errors without masking programming errors such as
``TypeError`` or ``KeyError`` coming from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphValidationError(ReproError):
    """An application or architecture graph violates a structural invariant.

    Examples: a CWG edge with non-positive weight, a CDCG with a dependence
    cycle, a packet referring to a core that is not part of the application.
    """


class MappingError(ReproError):
    """A core-to-tile mapping is malformed or incompatible with its platform.

    Examples: two cores mapped to the same tile, a core mapped to a tile that
    does not exist in the CRG, or an application with more cores than the NoC
    has tiles.
    """


class SchedulingError(ReproError):
    """The CDCM scheduler could not replay a CDCG over a mapped platform.

    Raised for instance when the dependence graph never reaches the ``End``
    vertex (a deadlock in the application model) or when a packet references a
    route that the routing function cannot produce.
    """


class ConfigurationError(ReproError):
    """A platform, technology, or search configuration value is invalid."""
