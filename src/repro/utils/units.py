"""Unit conventions and formatting helpers.

The library keeps a single convention everywhere:

* **time** is expressed in nanoseconds (the paper's worked example uses a 1 ns
  clock period, so all schedule numbers match the paper directly);
* **energy** is expressed in picojoules (the paper quotes bit energies in
  ``1e-12 J/bit``);
* **power** is therefore expressed in picojoules per nanosecond (= milliwatts).

The constants below convert *to* the canonical unit, e.g. ``3 * US`` is three
microseconds expressed in nanoseconds.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time units (canonical unit: nanosecond)
# ---------------------------------------------------------------------------
NS = 1.0
US = 1.0e3
MS = 1.0e6
S = 1.0e9

# ---------------------------------------------------------------------------
# Energy units (canonical unit: picojoule)
# ---------------------------------------------------------------------------
PICOJOULE = 1.0
NANOJOULE = 1.0e3
MICROJOULE = 1.0e6
JOULE = 1.0e12


def format_time(nanoseconds: float, precision: int = 2) -> str:
    """Render a time value with an auto-selected human-readable unit."""
    value = float(nanoseconds)
    for unit, name in ((S, "s"), (MS, "ms"), (US, "us")):
        if abs(value) >= unit:
            return f"{value / unit:.{precision}f} {name}"
    return f"{value:.{precision}f} ns"


def format_energy(picojoules: float, precision: int = 2) -> str:
    """Render an energy value with an auto-selected human-readable unit."""
    value = float(picojoules)
    for unit, name in ((JOULE, "J"), (MICROJOULE, "uJ"), (NANOJOULE, "nJ")):
        if abs(value) >= unit:
            return f"{value / unit:.{precision}f} {name}"
    return f"{value:.{precision}f} pJ"


def bits_to_flits(bits: int, flit_width: int) -> int:
    """Number of flits needed to carry *bits* over links of *flit_width* bits.

    This is the ``nabq = ceil(wabq / link width)`` quantity of the paper's
    equation (7).  A packet always occupies at least one flit.
    """
    if bits <= 0:
        raise ValueError(f"packet bit volume must be positive, got {bits}")
    if flit_width <= 0:
        raise ValueError(f"flit width must be positive, got {flit_width}")
    return max(1, -(-int(bits) // int(flit_width)))


__all__ = [
    "NS",
    "US",
    "MS",
    "S",
    "PICOJOULE",
    "NANOJOULE",
    "MICROJOULE",
    "JOULE",
    "format_time",
    "format_energy",
    "bits_to_flits",
]
