"""Deterministic random-number handling.

Every stochastic component in the library (simulated annealing, the TGFF-like
benchmark generator, the genetic-algorithm extension) accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  The helpers in
this module normalise those three cases so the components themselves stay
simple and every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: The union of accepted "randomness source" arguments throughout the library.
RandomSource = Union[int, np.random.Generator, None]


def ensure_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *source*.

    Parameters
    ----------
    source:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed for a
        deterministic one, or an existing generator which is returned as-is.
    """
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        f"expected None, int, or numpy Generator, got {type(source).__name__}"
    )


def spawn_seeds(source: RandomSource, count: int) -> Sequence[int]:
    """Derive *count* independent integer seeds from *source*.

    Used by sweep drivers that need one deterministic seed per run (e.g. one
    per application of the Table 2 suite) while exposing a single top-level
    seed to the user.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(source)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]


def derive_rng(source: RandomSource, stream: int) -> np.random.Generator:
    """Return a generator deterministically derived from *source* and *stream*.

    Two calls with the same ``(source, stream)`` pair produce generators with
    identical sequences; different ``stream`` values produce independent ones.
    """
    if stream < 0:
        raise ValueError(f"stream must be non-negative, got {stream}")
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        # Derive a child deterministically from the parent's bit generator
        # state by drawing a seed; this advances the parent, which is the
        # documented behaviour for generator sources.
        seed = int(source.integers(0, 2**31 - 1))
        return np.random.default_rng((seed, stream))
    return np.random.default_rng((int(source), stream))


def coin_flip(rng: np.random.Generator, probability: float = 0.5) -> bool:
    """Return True with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return bool(rng.random() < probability)


__all__ = ["RandomSource", "ensure_rng", "spawn_seeds", "derive_rng", "coin_flip"]
