"""Shared utilities: units, deterministic RNG handling, and error types.

These helpers are intentionally small and dependency-free so that every other
subpackage (graphs, noc, energy, search, ...) can rely on them without import
cycles.
"""

from repro.utils.errors import (
    ReproError,
    GraphValidationError,
    MappingError,
    SchedulingError,
    ConfigurationError,
)
from repro.utils.hashing import canonical_token, stable_digest
from repro.utils.rng import RandomSource, ensure_rng, spawn_seeds
from repro.utils.units import (
    NS,
    US,
    MS,
    S,
    PICOJOULE,
    NANOJOULE,
    MICROJOULE,
    JOULE,
    format_energy,
    format_time,
    bits_to_flits,
)

__all__ = [
    "ReproError",
    "GraphValidationError",
    "MappingError",
    "SchedulingError",
    "ConfigurationError",
    "canonical_token",
    "stable_digest",
    "RandomSource",
    "ensure_rng",
    "spawn_seeds",
    "NS",
    "US",
    "MS",
    "S",
    "PICOJOULE",
    "NANOJOULE",
    "MICROJOULE",
    "JOULE",
    "format_energy",
    "format_time",
    "bits_to_flits",
]
