"""Regeneration of the paper's tables.

* :func:`generate_table1` — Table 1, the characterisation of the benchmark
  suite (NoC size, cores, packets, total bits): a direct readout of the
  generated applications, proving the suite matches the published aggregates.
* :func:`generate_table2` — Table 2, the CWM-vs-CDCM comparison: average
  execution-time reduction (ETR) and energy-consumption savings (ECS) per NoC
  size, for both technologies, plus the overall averages of the last row.

Both return plain row dataclasses so benches and tests can assert on the
numbers, and have ``render_*`` companions producing the ASCII tables printed
by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.comparison import ComparisonConfig, ModelComparison, compare_models
from repro.energy.technology import TECH_0_07UM, TECH_0_35UM
from repro.noc.platform import NocParameters, Platform
from repro.noc.routing import XYRouting
from repro.utils.rng import RandomSource, spawn_seeds
from repro.workloads.suite import SuiteEntry, table1_suite


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One NoC-size row of Table 1 (values of the up-to-3 benchmarks joined)."""

    noc_label: str
    num_cores: List[int]
    num_packets: List[int]
    total_bits: List[int]


def generate_table1(entries: Optional[Sequence[SuiteEntry]] = None) -> List[Table1Row]:
    """Build Table 1 rows by generating every benchmark and measuring it.

    The row values are measured on the *generated* CDCGs (not copied from the
    entry specs), so the table doubles as a regression check that the
    generator honours its contract exactly.
    """
    entries = list(entries) if entries is not None else table1_suite()
    grouped: Dict[str, List[SuiteEntry]] = {}
    order: List[str] = []
    for entry in entries:
        if entry.noc_label not in grouped:
            order.append(entry.noc_label)
        grouped.setdefault(entry.noc_label, []).append(entry)

    rows = []
    for label in order:
        cores, packets, bits = [], [], []
        for entry in grouped[label]:
            cdcg = entry.build()
            cores.append(cdcg.num_cores)
            packets.append(cdcg.num_packets)
            bits.append(cdcg.total_bits())
        rows.append(
            Table1Row(
                noc_label=label,
                num_cores=cores,
                num_packets=packets,
                total_bits=bits,
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """ASCII rendering of Table 1."""
    header = (
        f"{'NoC size':<10} {'Number of cores':<18} "
        f"{'Number of packets':<20} {'Total volume of bits':<30}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.noc_label:<10} "
            f"{'; '.join(str(c) for c in row.num_cores):<18} "
            f"{'; '.join(str(p) for p in row.num_packets):<20} "
            f"{'; '.join(f'{b:,}' for b in row.total_bits):<30}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One NoC-size row of Table 2 (averages over that size's benchmarks)."""

    noc_label: str
    algorithm: str
    etr: float
    ecs_035: float
    ecs_007: float
    cpu_time_ratio: float
    num_applications: int

    def as_percentages(self) -> Dict[str, float]:
        """The row's metrics expressed in percent (as the paper prints them)."""
        return {
            "ETR": 100.0 * self.etr,
            "ECS0.35": 100.0 * self.ecs_035,
            "ECS0.07": 100.0 * self.ecs_007,
        }


def generate_table2(
    entries: Optional[Sequence[SuiteEntry]] = None,
    config: Optional[ComparisonConfig] = None,
    seed: RandomSource = 0,
    parameters: Optional[NocParameters] = None,
    keep_comparisons: bool = False,
) -> tuple[List[Table2Row], List[ModelComparison]]:
    """Run the Table 2 experiment.

    For every suite entry: build the benchmark, build its platform (the
    entry's mesh with the default wormhole parameters and XY routing), run the
    CWM-vs-CDCM comparison and average the metrics per NoC size.  A final
    ``"average"`` row aggregates all applications, like the last row of the
    paper's table.

    Returns the rows and (when *keep_comparisons* is true) the individual
    per-application comparisons.
    """
    entries = list(entries) if entries is not None else table1_suite()
    config = config or ComparisonConfig()
    parameters = parameters or NocParameters()
    seeds = spawn_seeds(seed, len(entries))

    comparisons: List[ModelComparison] = []
    for entry, entry_seed in zip(entries, seeds):
        cdcg = entry.build()
        platform = Platform(
            mesh=entry.mesh,
            routing=XYRouting(),
            parameters=parameters,
            technology=TECH_0_07UM,
        )
        comparison = compare_models(cdcg, platform, config, seed=entry_seed)
        comparisons.append(comparison)

    rows = _aggregate_rows(entries, comparisons, config)
    return rows, (comparisons if keep_comparisons else [])


def _aggregate_rows(
    entries: Sequence[SuiteEntry],
    comparisons: Sequence[ModelComparison],
    config: ComparisonConfig,
) -> List[Table2Row]:
    algorithm = "SA" if config.method in ("annealing", "sa") else "ES"
    grouped: Dict[str, List[ModelComparison]] = {}
    order: List[str] = []
    for entry, comparison in zip(entries, comparisons):
        if entry.noc_label not in grouped:
            order.append(entry.noc_label)
        grouped.setdefault(entry.noc_label, []).append(comparison)

    rows: List[Table2Row] = []
    for label in order:
        rows.append(_mean_row(label, algorithm, grouped[label]))
    if comparisons:
        rows.append(_mean_row("average", algorithm, list(comparisons)))
    return rows


def _mean_row(
    label: str, algorithm: str, comparisons: Sequence[ModelComparison]
) -> Table2Row:
    count = len(comparisons)

    def mean(values: Sequence[float]) -> float:
        return sum(values) / count if count else 0.0

    return Table2Row(
        noc_label=label,
        algorithm=algorithm,
        etr=mean([c.execution_time_reduction for c in comparisons]),
        ecs_035=mean([c.energy_saving(TECH_0_35UM.name) for c in comparisons]),
        ecs_007=mean([c.energy_saving(TECH_0_07UM.name) for c in comparisons]),
        cpu_time_ratio=mean([c.cpu_time_ratio for c in comparisons]),
        num_applications=count,
    )


def render_table2(rows: Sequence[Table2Row]) -> str:
    """ASCII rendering of Table 2 (plus the CPU-time ratio column we add)."""
    header = (
        f"{'NoC size':<10} {'Algorithm':<10} {'ETR':>8} {'ECS0.35':>9} "
        f"{'ECS0.07':>9} {'CPU ratio':>10} {'#apps':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.noc_label:<10} {row.algorithm:<10} "
            f"{row.etr:>7.1%} {row.ecs_035:>8.2%} {row.ecs_007:>8.1%} "
            f"{row.cpu_time_ratio:>10.2f} {row.num_applications:>6}"
        )
    return "\n".join(lines)


__all__ = [
    "Table1Row",
    "Table2Row",
    "generate_table1",
    "generate_table2",
    "render_table1",
    "render_table2",
]
