"""Ablation studies around the Table 2 experiment.

The paper's conclusions rest on a few modelling and search choices that are
worth stress-testing:

* **routing** — XY vs YX deterministic routing (the CDCM advantage should not
  depend on the dimension order);
* **leakage** — scaling the router leakage power sweeps the static/dynamic
  split and shows how the ECS metric moves between the 0.35 um and 0.07 um
  regimes;
* **search effort** — weaker or stronger simulated-annealing schedules show
  how much of the CDCM advantage survives a cheap search;
* **local-link serialisation** — treating the core-router links as contention
  resources (the paper does not) slightly increases execution times but
  should not change the CWM/CDCM ranking.

Each ablation returns a list of :class:`AblationResult`, one per swept value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.energy.technology import TECH_0_07UM, TECH_0_35UM, scale_static_power
from repro.graphs.cdcg import CDCG
from repro.noc.platform import NocParameters, Platform
from repro.noc.routing import XYRouting, YXRouting
from repro.search.annealing import AnnealingSchedule
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class AblationResult:
    """Outcome of the comparison experiment for one swept parameter value."""

    parameter: str
    value: str
    etr: float
    ecs_035: float
    ecs_007: float

    def describe(self) -> str:
        return (
            f"{self.parameter}={self.value}: ETR={self.etr:+.1%}, "
            f"ECS0.35={self.ecs_035:+.2%}, ECS0.07={self.ecs_007:+.1%}"
        )


def _run(
    cdcg: CDCG,
    platform: Platform,
    config: ComparisonConfig,
    seed: RandomSource,
    parameter: str,
    value: str,
) -> AblationResult:
    comparison = compare_models(cdcg, platform, config, seed=seed)
    return AblationResult(
        parameter=parameter,
        value=value,
        etr=comparison.execution_time_reduction,
        ecs_035=comparison.energy_saving(TECH_0_35UM.name),
        ecs_007=comparison.energy_saving(TECH_0_07UM.name),
    )


def routing_ablation(
    cdcg: CDCG,
    platform: Platform,
    config: Optional[ComparisonConfig] = None,
    seed: RandomSource = 0,
) -> List[AblationResult]:
    """XY vs YX routing."""
    config = config or ComparisonConfig()
    results = []
    for routing in (XYRouting(), YXRouting()):
        results.append(
            _run(
                cdcg,
                platform.with_routing(routing),
                config,
                seed,
                parameter="routing",
                value=routing.name,
            )
        )
    return results


def leakage_ablation(
    cdcg: CDCG,
    platform: Platform,
    factors: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    config: Optional[ComparisonConfig] = None,
    seed: RandomSource = 0,
) -> List[AblationResult]:
    """Sweep the router leakage power of the deep-submicron technology.

    The comparison itself always searches with the platform's technology; the
    sweep rescales the leakage of both reported technologies so the ECS
    columns move while ETR stays driven by the same schedules.
    """
    config = config or ComparisonConfig()
    results = []
    for factor in factors:
        technologies = (
            scale_static_power(TECH_0_35UM, factor),
            scale_static_power(TECH_0_07UM, factor),
        )
        swept_config = replace(config, technologies=technologies)
        swept_platform = platform.with_technology(technologies[1])
        comparison = compare_models(cdcg, swept_platform, swept_config, seed=seed)
        results.append(
            AblationResult(
                parameter="leakage_factor",
                value=f"{factor:g}",
                etr=comparison.execution_time_reduction,
                ecs_035=comparison.energy_saving(technologies[0].name),
                ecs_007=comparison.energy_saving(technologies[1].name),
            )
        )
    return results


def annealing_effort_ablation(
    cdcg: CDCG,
    platform: Platform,
    schedules: Optional[Sequence[AnnealingSchedule]] = None,
    seed: RandomSource = 0,
) -> List[AblationResult]:
    """Sweep the simulated-annealing effort (cooling speed / evaluation cap)."""
    if schedules is None:
        schedules = (
            AnnealingSchedule(
                cooling_factor=0.7, max_evaluations=500, stall_plateaus=5
            ),
            AnnealingSchedule(
                cooling_factor=0.85, max_evaluations=2_000, stall_plateaus=10
            ),
            AnnealingSchedule(
                cooling_factor=0.95, max_evaluations=10_000, stall_plateaus=25
            ),
        )
    results = []
    for schedule in schedules:
        config = ComparisonConfig(annealing_schedule=schedule)
        label = f"cool={schedule.cooling_factor:g},max={schedule.max_evaluations}"
        results.append(
            _run(cdcg, platform, config, seed, parameter="sa_effort", value=label)
        )
    return results


def local_link_ablation(
    cdcg: CDCG,
    platform: Platform,
    config: Optional[ComparisonConfig] = None,
    seed: RandomSource = 0,
) -> List[AblationResult]:
    """Inter-router-link contention only (paper) vs also serialising local links."""
    config = config or ComparisonConfig()
    results = []
    for serialize in (False, True):
        parameters = replace(platform.parameters, serialize_local_links=serialize)
        results.append(
            _run(
                cdcg,
                platform.with_parameters(parameters),
                config,
                seed,
                parameter="serialize_local_links",
                value=str(serialize),
            )
        )
    return results


__all__ = [
    "AblationResult",
    "routing_ablation",
    "leakage_ablation",
    "annealing_effort_ablation",
    "local_link_ablation",
]
