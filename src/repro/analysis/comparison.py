"""CWM vs CDCM comparison on a single application.

This is the experiment behind Table 2: for one application and one NoC,

1. search for the best mapping using the **CWM** objective (dynamic energy,
   equation 3);
2. search for the best mapping using the **CDCM** objective (total energy,
   equation 10);
3. evaluate *both* mappings under the full CDCM model (replay + energy), for
   each technology of interest;
4. report
   * **ETR** — execution-time reduction of the CDCM mapping w.r.t. the CWM
     mapping,
   * **ECS(tech)** — total-energy saving of the CDCM mapping w.r.t. the CWM
     mapping under each technology,
   * the CPU-time ratio of the two searches (the paper's "at most 23 % more
     CPU time" claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.cdcm import CdcmEvaluator
from repro.core.framework import FRWFramework, MappingOutcome
from repro.core.mapping import Mapping
from repro.energy.technology import TECH_0_07UM, TECH_0_35UM, Technology
from repro.graphs.cdcg import CDCG
from repro.noc.platform import Platform
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.search.base import Searcher
from repro.search.exhaustive import ExhaustiveSearch
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, derive_rng, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import only used by type checkers
    from repro.eval.parallel import BatchBackend


@dataclass(frozen=True)
class ComparisonConfig:
    """Knobs of one CWM-vs-CDCM comparison run.

    Attributes
    ----------
    method:
        ``"annealing"`` (SA, the paper's default) or ``"exhaustive"`` (ES,
        only sensible on small NoCs).
    technologies:
        Technologies the final mappings are priced under; defaults to the
        paper's 0.35 um and 0.07 um presets.
    annealing_schedule:
        Optional SA schedule override (used to trade run time for quality in
        the test-suite and quick benches).
    restarts:
        Number of independent searches per model; the best mapping over all
        restarts is kept (1 reproduces the paper's single-run setup).
    use_delta:
        Let the annealer price moves with incremental deltas (see
        :mod:`repro.eval`).  Defaults to False here — and only here — so the
        reproduced paper tables keep the exact search walks of the seed
        full-re-evaluation arithmetic (an incremental sum rounds differently
        than the difference of two full sums, which can flip a borderline
        accept and change a published row).  The comparison still gains the
        route-table pricing speedup either way; set True for production-scale
        sweeps where raw throughput matters more than bit-stable tables.
    vectorize:
        Let CWM batch misses be priced by the NumPy array kernel
        (:mod:`repro.eval.vector`).  Defaults to False here — and only here —
        for the same bit-stable-tables rationale as ``use_delta``: the kernel
        is bit-identical to the scalar loop by construction (and
        property-pinned), but the reproduced rows deliberately exercise the
        seed arithmetic path, so the comparison keeps the scalar accumulator
        unless explicitly asked otherwise.  Everywhere else the gate
        defaults on.
    repair:
        Let CDCM swap deltas be priced by the bounded-repair engine
        (:mod:`repro.eval.repair`).  Defaults to False here — and only here —
        for a *stronger* version of the ``use_delta`` rationale: bounded
        repair is exact only at resync points and drift-bounded in between,
        so it could steer a borderline annealing accept differently from the
        published full-replay walk.  The reproduced Table 1/2 rows therefore
        always price by complete replays; set True for production-scale
        sweeps where raw CDCM throughput matters more than bit-stable
        tables.
    backend:
        Optional :class:`~repro.eval.parallel.BatchBackend` forwarded to the
        framework's evaluation contexts — in particular the store-draining
        :class:`~repro.service.client.ServiceBackend` of the mapping service
        (:mod:`repro.service`).  Defaults to ``None`` here — and only here —
        which keeps the reproduced Table 1/2 rows entirely service-free: no
        persistent store is consulted, so a published row can never be
        answered by (or polluted through) state left behind by an earlier
        run.  The service is bit-identical to serial pricing by contract
        (and pinned so by ``tests/test_service.py``), but the reproduced
        rows deliberately exercise the seed pricing path, mirroring the
        ``use_delta`` / ``vectorize`` / ``repair`` conventions.  Pass a
        backend for production-scale sweeps; the comparison borrows it and
        never closes it.
    """

    method: str = "annealing"
    technologies: Sequence[Technology] = (TECH_0_35UM, TECH_0_07UM)
    annealing_schedule: Optional[AnnealingSchedule] = None
    restarts: int = 1
    use_delta: bool = False
    vectorize: bool = False
    repair: bool = False
    backend: Optional["BatchBackend"] = None

    def __post_init__(self) -> None:
        if self.method not in ("annealing", "sa", "exhaustive", "es"):
            raise ConfigurationError(
                f"unknown comparison method {self.method!r}; use 'annealing' or 'exhaustive'"
            )
        if self.restarts < 1:
            raise ConfigurationError(f"restarts must be positive, got {self.restarts}")

    def build_searcher(self) -> Searcher:
        """Instantiate the configured search engine."""
        if self.method in ("annealing", "sa"):
            return SimulatedAnnealing(self.annealing_schedule, use_delta=self.use_delta)
        return ExhaustiveSearch()


@dataclass(frozen=True)
class TechnologyResult:
    """Energy figures of the two mappings under one technology."""

    technology: str
    cwm_mapping_energy: float
    cdcm_mapping_energy: float

    @property
    def energy_saving(self) -> float:
        """ECS: relative saving of the CDCM mapping over the CWM mapping."""
        if self.cwm_mapping_energy <= 0:
            return 0.0
        return (
            self.cwm_mapping_energy - self.cdcm_mapping_energy
        ) / self.cwm_mapping_energy


@dataclass
class ModelComparison:
    """Full outcome of one CWM-vs-CDCM comparison."""

    application: str
    noc_label: str
    method: str
    cwm_outcome: MappingOutcome
    cdcm_outcome: MappingOutcome
    cwm_mapping_time: float
    cdcm_mapping_time: float
    technology_results: List[TechnologyResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def execution_time_reduction(self) -> float:
        """ETR: relative execution-time reduction of the CDCM mapping."""
        if self.cwm_mapping_time <= 0:
            return 0.0
        return (self.cwm_mapping_time - self.cdcm_mapping_time) / self.cwm_mapping_time

    def energy_saving(self, technology_name: str) -> float:
        """ECS for one technology (by name)."""
        for result in self.technology_results:
            if result.technology == technology_name:
                return result.energy_saving
        raise ConfigurationError(
            f"no technology named {technology_name!r} in this comparison; "
            f"available: {[r.technology for r in self.technology_results]}"
        )

    @property
    def cpu_time_ratio(self) -> float:
        """CPU time of the CDCM search divided by the CWM search (>= 0)."""
        if self.cwm_outcome.cpu_time <= 0:
            return 0.0
        return self.cdcm_outcome.cpu_time / self.cwm_outcome.cpu_time

    @property
    def cwm_mapping(self) -> Mapping:
        return self.cwm_outcome.mapping

    @property
    def cdcm_mapping(self) -> Mapping:
        return self.cdcm_outcome.mapping

    def summary(self) -> str:
        """One-line human-readable summary."""
        savings = ", ".join(
            f"ECS[{r.technology}]={r.energy_saving:+.1%}"
            for r in self.technology_results
        )
        return (
            f"{self.application} on {self.noc_label}: "
            f"ETR={self.execution_time_reduction:+.1%}, {savings}, "
            f"CPU ratio={self.cpu_time_ratio:.2f}"
        )


def compare_models(
    cdcg: CDCG,
    platform: Platform,
    config: ComparisonConfig | None = None,
    seed: RandomSource = 0,
) -> ModelComparison:
    """Run the Table-2 experiment for one application on one platform.

    Both models start from the same random initial mapping (per restart) so
    the comparison isolates the effect of the objective, not of the starting
    point.
    """
    config = config or ComparisonConfig()
    framework = FRWFramework(
        cdcg,
        platform,
        vectorize=config.vectorize,
        repair=config.repair,
        backend=config.backend,
    )
    base_rng = ensure_rng(seed)

    cwm_best: Optional[MappingOutcome] = None
    cdcm_best: Optional[MappingOutcome] = None
    for restart in range(config.restarts):
        initial = framework.initial_mapping(derive_rng(seed, 2 * restart))
        cwm_outcome = framework.map(
            model="cwm",
            searcher=config.build_searcher(),
            seed=derive_rng(seed, 2 * restart + 1),
            initial=initial,
        )
        cdcm_outcome = framework.map(
            model="cdcm",
            searcher=config.build_searcher(),
            seed=derive_rng(seed, 2 * restart + 1),
            initial=initial,
        )
        if cwm_best is None or cwm_outcome.cost < cwm_best.cost:
            cwm_best = cwm_outcome
        if cdcm_best is None or cdcm_outcome.cost < cdcm_best.cost:
            cdcm_best = cdcm_outcome
    assert cwm_best is not None and cdcm_best is not None
    del base_rng

    # Evaluate both final mappings under the full CDCM model, per technology.
    evaluator = CdcmEvaluator(platform)
    cwm_report = evaluator.evaluate(cdcg, cwm_best.mapping)
    cdcm_report = evaluator.evaluate(cdcg, cdcm_best.mapping)

    technology_results = []
    for technology in config.technologies:
        cwm_energy = evaluator.reprice(cwm_report, technology).total_energy
        cdcm_energy = evaluator.reprice(cdcm_report, technology).total_energy
        technology_results.append(
            TechnologyResult(
                technology=technology.name,
                cwm_mapping_energy=cwm_energy,
                cdcm_mapping_energy=cdcm_energy,
            )
        )

    mesh = platform.mesh
    return ModelComparison(
        application=cdcg.name,
        noc_label=f"{mesh.width} x {mesh.height}",
        method=config.method,
        cwm_outcome=cwm_best,
        cdcm_outcome=cdcm_best,
        cwm_mapping_time=cwm_report.execution_time,
        cdcm_mapping_time=cdcm_report.execution_time,
        technology_results=technology_results,
    )


__all__ = [
    "ComparisonConfig",
    "TechnologyResult",
    "ModelComparison",
    "compare_models",
]
