"""Pareto-front construction over vector-valued objectives.

The paper's CWM/CDCM comparison is a two-criterion trade-off — communication
energy vs. execution time — that the legacy scalar objectives collapsed to a
single pre-weighted float.  With the vector-objective core
(:mod:`repro.core.metrics`, :class:`~repro.eval.context.EvaluationContext`
memoising component vectors) the trade-off becomes first-class, and this
module turns priced candidate sets into energy/time fronts:

* :func:`non_dominated` — filter a point set down to its Pareto front;
* :func:`pareto_front` — price a candidate set **once** through
  ``evaluate_metrics_batch`` and filter it (the exhaustive front of the set);
* :func:`weight_sweep_front` — sweep K scalarisation weight vectors over
  the same single pricing pass: each weight vector selects its argmin
  candidate off the memoised vectors, so the sweep costs K·O(n) dot
  products, **not** K pricing passes (the acceptance property pinned by
  ``tests/test_pareto.py``);
* :func:`front_to_rows` — export a front as plain dict rows for figures,
  CSV/JSON writers and the markdown report helpers;
* :func:`hypervolume` — the dominated-hypervolume indicator (area for two
  keys, recursive objective slicing for three or more), the standard
  quality measure for comparing fronts from different engines
  (e.g. :func:`weight_sweep_front` vs. an
  :class:`~repro.search.nsga2.NSGA2Search` result's ``front``).

Any vector-capable pricing source works: an
:class:`~repro.eval.context.EvaluationContext`, a
:class:`~repro.core.objective.CountingObjective` built by
:func:`~repro.core.objective.cwm_objective` /
:func:`~repro.core.objective.cdcm_objective`, or a
:class:`~repro.core.objective.ScalarisedObjective` view.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.utils.errors import ConfigurationError

#: The paper's trade-off: CDCM total energy vs. execution time.
DEFAULT_FRONT_KEYS: Tuple[str, ...] = ("energy", "time")


@dataclass(frozen=True)
class ParetoPoint:
    """One priced candidate of a front.

    Attributes
    ----------
    mapping:
        The candidate core-to-tile assignment.
    metrics:
        Its named component vector (one pricing pass, shared memo).
    weights:
        The scalarisation weight vector that selected this point, when it
        came out of a weight sweep; ``None`` for plain priced/filtered
        points.
    """

    mapping: Mapping
    metrics: MetricVector
    weights: Optional[Dict[str, float]] = None

    def value(self, name: str) -> float:
        """One metric component of this point, by name."""
        return self.metrics[name]


@dataclass(frozen=True)
class WeightSweepResult:
    """Outcome of :func:`weight_sweep_front`.

    Attributes
    ----------
    points:
        Every candidate, priced (input order preserved).
    selections:
        The per-weight-vector winners, in sweep order, each carrying the
        weight dict that selected it (duplicated winners appear once per
        weight vector that picked them).
    front:
        The non-dominated subset of the distinct winners, sorted by the
        first front key.
    """

    points: List[ParetoPoint]
    selections: List[ParetoPoint]
    front: List[ParetoPoint]


def dominates(
    a: MetricVector, b: MetricVector, keys: Sequence[str] = DEFAULT_FRONT_KEYS
) -> bool:
    """True when *a* Pareto-dominates *b* over *keys* (all minimised)."""
    return a.dominates(b, keys)


def non_dominated(
    points: Sequence[ParetoPoint], keys: Sequence[str] = DEFAULT_FRONT_KEYS
) -> List[ParetoPoint]:
    """Filter a point set down to its Pareto front.

    A point survives when no other point strictly dominates it; among points
    with *identical* key values only the first (in input order) is kept, so
    the front never carries duplicates of one trade-off position.

    Parameters
    ----------
    points:
        Priced candidates.
    keys:
        Metric names the dominance check ranges over.

    Returns
    -------
    list of ParetoPoint
        The front, sorted ascending by the first key (ties by the
        remaining keys).
    """
    keys = tuple(keys)
    if not keys:
        raise ConfigurationError("non_dominated requires at least one key")
    survivors: List[ParetoPoint] = []
    seen_positions: set = set()
    for candidate in points:
        position = tuple(candidate.metrics[key] for key in keys)
        if position in seen_positions:
            continue
        if any(dominates(other.metrics, candidate.metrics, keys) for other in points):
            continue
        seen_positions.add(position)
        survivors.append(candidate)
    survivors.sort(key=lambda point: tuple(point.metrics[key] for key in keys))
    return survivors


def metric_points(
    objective: Any,
    candidates: Sequence[Mapping],
    backend: Any = None,
) -> List[ParetoPoint]:
    """Price a candidate set in one ``evaluate_metrics_batch`` pass.

    Parameters
    ----------
    objective:
        Any vector-capable pricing source (context, counting objective,
        scalarised view).
    candidates:
        Mappings to price; duplicates hit the shared memo.
    backend:
        Optional :class:`~repro.eval.parallel.BatchBackend` for the misses.

    Returns
    -------
    list of ParetoPoint
        One point per candidate, in input order.
    """
    source = _vector_source(objective)
    vectors = source.evaluate_metrics_batch(candidates, backend=backend)
    return [
        ParetoPoint(mapping=mapping, metrics=vector)
        for mapping, vector in zip(candidates, vectors)
    ]


def pareto_front(
    objective: Any,
    candidates: Sequence[Mapping],
    keys: Sequence[str] = DEFAULT_FRONT_KEYS,
    backend: Any = None,
) -> List[ParetoPoint]:
    """The non-dominated front of a candidate set, priced in one pass.

    This is the *exhaustive* front of the set: every candidate is priced
    (memo-deduplicated) and filtered with :func:`non_dominated`.  Weight
    sweeps (:func:`weight_sweep_front`) can only ever find a subset of this
    front — the supported points.
    """
    return non_dominated(metric_points(objective, candidates, backend=backend), keys)


def weight_grid(
    count: int, keys: Sequence[str] = DEFAULT_FRONT_KEYS
) -> List[Dict[str, float]]:
    """*count* convex weight combinations between two metric keys.

    The grid spans the closed interval — the first entry weights only
    ``keys[0]``, the last only ``keys[1]`` — so single-metric optima anchor
    the sweep's ends.

    Parameters
    ----------
    count:
        Number of weight vectors (at least 2).
    keys:
        Exactly two metric names.

    Returns
    -------
    list of dict
        ``[{keys[0]: 1 - t, keys[1]: t} for t in linspace(0, 1, count)]``.
    """
    keys = tuple(keys)
    if len(keys) != 2:
        raise ConfigurationError(
            f"weight_grid spans exactly two metric keys, got {keys!r}"
        )
    if count < 2:
        raise ConfigurationError(f"count must be at least 2, got {count}")
    grid: List[Dict[str, float]] = []
    for index in range(count):
        t = index / (count - 1)
        grid.append({keys[0]: 1.0 - t, keys[1]: t})
    return grid


def weight_sweep_front(
    objective: Any,
    candidates: Sequence[Mapping],
    weights: Any = 16,
    keys: Sequence[str] = DEFAULT_FRONT_KEYS,
    normalise: bool = True,
    backend: Any = None,
) -> WeightSweepResult:
    """Sweep scalarisation weight vectors over one pricing pass.

    All candidates are priced (or recalled from the shared memo) exactly
    once; every weight vector then selects its argmin candidate by a cheap
    dot product over the memoised component vectors.  Sweeping 16 weight
    vectors therefore performs **at most one full pricing pass per unique
    candidate** — the memoisation property the vector-objective redesign
    exists for.

    Parameters
    ----------
    objective:
        Any vector-capable pricing source (context, counting objective,
        scalarised view).
    candidates:
        Mappings to sweep over (e.g. a GA population, a random sample, or
        the full enumeration on small NoCs).
    weights:
        Either an integer (build that many convex combinations over *keys*
        with :func:`weight_grid`) or an explicit sequence of weight dicts.
    keys:
        Metric names of the trade-off (default energy vs. time).
    normalise:
        Rescale each key to ``[0, 1]`` over the candidate set before
        scalarising, so weights express *relative preference* instead of
        depending on the pJ-vs-ns magnitude gap.  Selection only — the
        reported metric values stay raw.
    backend:
        Optional :class:`~repro.eval.parallel.BatchBackend` for the pricing
        misses.

    Returns
    -------
    WeightSweepResult
        Priced points, per-weight selections, and the non-dominated front
        of the distinct selections.
    """
    keys = tuple(keys)
    if isinstance(weights, int):
        weights = weight_grid(weights, keys)
    weight_list = [dict(vector) for vector in weights]
    # Validate the sweep spec before the (potentially expensive) pricing
    # pass, so a typo'd weight name cannot waste minutes of CDCM replays.
    for weight in weight_list:
        unknown = [key for key in weight if key not in keys]
        if unknown:
            raise ConfigurationError(
                f"sweep weights name metrics {unknown!r} outside the front "
                f"keys {keys!r}"
            )
    points = metric_points(objective, candidates, backend=backend)
    if not points:
        return WeightSweepResult(points=[], selections=[], front=[])

    # Per-key affine rescaling for selection (raw values when disabled or
    # degenerate).
    scales: Dict[str, Tuple[float, float]] = {}
    for key in keys:
        values = [point.metrics[key] for point in points]
        low, high = min(values), max(values)
        span = high - low
        if normalise and span > 0.0:
            scales[key] = (low, span)
        else:
            scales[key] = (0.0, 1.0)

    def score(point: ParetoPoint, weight: Dict[str, float]) -> float:
        total = 0.0
        for key, factor in weight.items():
            if factor == 0.0:
                continue
            low, span = scales[key]
            total += factor * ((point.metrics[key] - low) / span)
        return total

    selections: List[ParetoPoint] = []
    for weight in weight_list:
        winner = min(
            range(len(points)), key=lambda index: (score(points[index], weight), index)
        )
        selections.append(replace(points[winner], weights=dict(weight)))

    distinct: List[ParetoPoint] = []
    seen_mappings: set = set()
    for selection in selections:
        if selection.mapping in seen_mappings:
            continue
        seen_mappings.add(selection.mapping)
        distinct.append(selection)
    return WeightSweepResult(
        points=points,
        selections=selections,
        front=non_dominated(distinct, keys),
    )


def hypervolume(
    points: Sequence[ParetoPoint],
    reference: Any = None,
    keys: Sequence[str] = DEFAULT_FRONT_KEYS,
) -> float:
    """Dominated hypervolume of a front w.r.t. a reference point.

    The standard front-quality indicator: the measure of the region weakly
    dominated by the front and bounded by *reference* (larger is better).
    Two keys give the classic dominated *area*; three or more keys recurse
    by slicing along the first key (each slab's width times the dominated
    hypervolume of the prefix projected onto the remaining keys), bottoming
    out at the two-key sweep — so many-objective fronts (e.g. NSGA-II over
    energy/time/link-load) score with the same call.

    Comparing two fronts is only meaningful **under the same reference** —
    pass one explicitly (e.g. the componentwise maximum over the union of
    both fronts) when comparing engines.

    Parameters
    ----------
    points:
        Priced candidates; dominated points are filtered out first, so any
        point set is accepted, not just a clean front.
    reference:
        The bounding point, as a ``{key: value}`` mapping or a sequence
        aligned with *keys*.  ``None`` uses the componentwise maximum over
        *points* (which prices the boundary points' own contribution at
        zero — fine for a single front, wrong for cross-front comparison
        unless both share it).
    keys:
        At least two metric names (all minimised).

    Returns
    -------
    float
        The dominated hypervolume; 0.0 for an empty point set.
    """
    keys = tuple(keys)
    if len(keys) < 2:
        raise ConfigurationError(
            f"hypervolume needs at least two metric keys, got {keys!r}"
        )
    if not points:
        return 0.0
    front = non_dominated(points, keys)
    if reference is None:
        reference = {
            key: max(point.metrics[key] for point in points) for key in keys
        }
    if isinstance(reference, dict):
        try:
            bounds = tuple(float(reference[key]) for key in keys)
        except KeyError as exc:
            raise ConfigurationError(
                f"reference is missing a bound for key {exc.args[0]!r} "
                f"(keys requested: {keys!r})"
            ) from exc
    else:
        bounds = tuple(float(value) for value in reference)
        if len(bounds) != len(keys):
            raise ConfigurationError(
                f"reference has {len(bounds)} components but {len(keys)} "
                f"keys were requested"
            )
    values = [tuple(point.metrics[key] for key in keys) for point in front]
    return _sliced_hypervolume(values, bounds)


def _sliced_hypervolume(
    values: List[Tuple[float, ...]], bounds: Tuple[float, ...]
) -> float:
    """Recursive objective-slicing hypervolume over raw value tuples.

    Slices along the first coordinate: between two consecutive distinct
    first-coordinate values, exactly the points at or left of the slab
    dominate, so the slab contributes its width times the hypervolume of
    that prefix projected onto the remaining coordinates.  The two-key base
    case is the same ascending sweep as the public function's area loop.
    """
    if len(bounds) == 2:
        bound_x, bound_y = bounds
        total = 0.0
        ceiling = bound_y
        for x, y in sorted(set(values)):
            if x >= bound_x or y >= ceiling:
                continue
            total += (bound_x - x) * (ceiling - y)
            ceiling = y
        return total
    ordered = sorted(set(values))
    total = 0.0
    for index, value in enumerate(ordered):
        x = value[0]
        if x >= bounds[0]:
            break
        next_x = ordered[index + 1][0] if index + 1 < len(ordered) else bounds[0]
        width = min(next_x, bounds[0]) - x
        if width <= 0.0:
            continue
        prefix = [other[1:] for other in ordered[: index + 1]]
        total += width * _sliced_hypervolume(prefix, bounds[1:])
    return total


def front_to_rows(
    points: Sequence[ParetoPoint], keys: Optional[Sequence[str]] = None
) -> List[Dict[str, Any]]:
    """Export front points as plain dict rows (figures, CSV/JSON writers).

    Parameters
    ----------
    points:
        Front (or any point list) to export.
    keys:
        Metric names to include; defaults to each point's full component
        set.

    Returns
    -------
    list of dict
        One row per point: the mapping assignments, the selected metric
        values, and the selecting weight vector when present.
    """
    rows: List[Dict[str, Any]] = []
    for point in points:
        names = tuple(keys) if keys is not None else point.metrics.names
        row: Dict[str, Any] = {
            "mapping": dict(sorted(point.mapping.assignments().items())),
        }
        for name in names:
            row[name] = point.metrics[name]
        if point.weights is not None:
            row["weights"] = dict(point.weights)
        rows.append(row)
    return rows


def _vector_source(objective: Any):
    """Resolve the vector-pricing source behind an objective-ish argument."""
    from repro.core.objective import resolve_vector_source

    return resolve_vector_source(objective)


__all__ = [
    "DEFAULT_FRONT_KEYS",
    "ParetoPoint",
    "WeightSweepResult",
    "dominates",
    "non_dominated",
    "metric_points",
    "pareto_front",
    "weight_grid",
    "weight_sweep_front",
    "front_to_rows",
    "hypervolume",
]
