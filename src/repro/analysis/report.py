"""Markdown report writers.

The benchmark harness uses these helpers to turn comparison results and table
rows into the markdown fragments recorded in EXPERIMENTS.md, so the
paper-vs-measured bookkeeping never has to be edited by hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.comparison import ModelComparison
from repro.analysis.tables import Table1Row, Table2Row


def table_rows_to_markdown(
    headers: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """Render a generic markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def table1_to_markdown(rows: Sequence[Table1Row]) -> str:
    """Markdown rendering of Table 1."""
    body = [
        (
            row.noc_label,
            "; ".join(str(c) for c in row.num_cores),
            "; ".join(str(p) for p in row.num_packets),
            "; ".join(f"{b:,}" for b in row.total_bits),
        )
        for row in rows
    ]
    return table_rows_to_markdown(
        ["NoC size", "Number of cores", "Number of packets", "Total bits"], body
    )


def table2_to_markdown(
    rows: Sequence[Table2Row],
    paper_values: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Markdown rendering of Table 2, optionally with paper-vs-measured columns.

    Parameters
    ----------
    paper_values:
        Optional mapping from NoC-size label to the paper's percentages, e.g.
        ``{"3 x 2": {"ETR": 36.0, "ECS0.35": 0.50, "ECS0.07": 15.0}}``.
    """
    headers: List[str] = ["NoC size", "Algorithm", "ETR", "ECS 0.35um", "ECS 0.07um"]
    include_paper = paper_values is not None
    if include_paper:
        headers += ["ETR (paper)", "ECS 0.35um (paper)", "ECS 0.07um (paper)"]

    body = []
    for row in rows:
        cells: List[str] = [
            row.noc_label,
            row.algorithm,
            f"{row.etr:.1%}",
            f"{row.ecs_035:.2%}",
            f"{row.ecs_007:.1%}",
        ]
        if include_paper:
            reference = (paper_values or {}).get(row.noc_label, {})
            cells += [
                _fmt_percent(reference.get("ETR")),
                _fmt_percent(reference.get("ECS0.35")),
                _fmt_percent(reference.get("ECS0.07")),
            ]
        body.append(cells)
    return table_rows_to_markdown(headers, body)


def _fmt_percent(value: Optional[float]) -> str:
    return f"{value:.2f}%" if value is not None else "-"


def comparison_to_markdown(comparisons: Sequence[ModelComparison]) -> str:
    """One markdown row per individual application comparison."""
    body = []
    for comparison in comparisons:
        cells = [
            comparison.application,
            comparison.noc_label,
            comparison.method,
            f"{comparison.execution_time_reduction:.1%}",
        ]
        cells += [
            f"{result.energy_saving:.2%}"
            for result in comparison.technology_results
        ]
        cells.append(f"{comparison.cpu_time_ratio:.2f}")
        body.append(cells)
    technology_headers = (
        [f"ECS {r.technology}" for r in comparisons[0].technology_results]
        if comparisons
        else []
    )
    headers = (
        ["Application", "NoC", "Method", "ETR"] + technology_headers + ["CPU ratio"]
    )
    return table_rows_to_markdown(headers, body)


__all__ = [
    "table_rows_to_markdown",
    "table1_to_markdown",
    "table2_to_markdown",
    "comparison_to_markdown",
]
