"""Regeneration of the paper's figures (2 to 5) on the worked example.

* Figure 2 — CWM annotation of the two reference mappings: per-router and
  per-link bit costs and the (identical) total dynamic energy;
* Figure 3 — CDCM annotation: per-resource occupation interval lists, total
  energy and execution time of each mapping;
* Figures 4 and 5 — the per-packet timing diagrams (computation / routing /
  contention / packet segments) of the two mappings, rendered as ASCII
  charts.

All functions operate on the bundled example by default but accept any
application / platform / mapping triple, so users can produce the same
artefacts for their own systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cdcm import CdcmEvaluator, CdcmReport
from repro.core.cwm import CwmEvaluator, CwmReport
from repro.core.mapping import Mapping
from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.resources import LinkResource, LocalLinkResource, RouterResource
from repro.timing.gantt import build_timelines, render_ascii_gantt
from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_mappings,
    paper_example_platform,
)


@dataclass
class Figure2Data:
    """CWM evaluation of the two reference mappings (Figure 2)."""

    reports: Dict[str, CwmReport]

    @property
    def energies(self) -> Dict[str, float]:
        return {name: report.dynamic_energy for name, report in self.reports.items()}

    def describe(self) -> str:
        lines = []
        for name, report in self.reports.items():
            lines.append(
                f"mapping ({name}): EDyNoC = {report.dynamic_energy:g} pJ"
            )
            for tile in sorted(
                r.tile
                for r in report.resource_bits
                if isinstance(r, RouterResource)
            ):
                lines.append(f"  router tau{tile}: {report.router_bits(tile)} bits")
        return "\n".join(lines)


@dataclass
class Figure3Data:
    """CDCM evaluation of the two reference mappings (Figure 3)."""

    reports: Dict[str, CdcmReport]

    @property
    def execution_times(self) -> Dict[str, float]:
        return {name: report.execution_time for name, report in self.reports.items()}

    @property
    def energies(self) -> Dict[str, float]:
        return {name: report.total_energy for name, report in self.reports.items()}

    def annotations(self, mapping_name: str) -> List[str]:
        """The cost-variable lists of one mapping, formatted like Figure 3."""
        report = self.reports[mapping_name]
        lines = []
        for resource in sorted(
            report.schedule.occupations, key=lambda r: (type(r).__name__, str(r))
        ):
            entries = ", ".join(
                str(o) for o in report.schedule.resource_occupations(resource)
            )
            lines.append(f"{resource}: {entries}")
        return lines

    def describe(self) -> str:
        lines = []
        for name, report in self.reports.items():
            lines.append(
                f"mapping ({name}): ENoC = {report.total_energy:g} pJ, "
                f"texec = {report.execution_time:g} ns, "
                f"contention = {report.total_contention_delay:g} ns"
            )
        return "\n".join(lines)


def _example_inputs(
    cdcg: Optional[CDCG],
    platform: Optional[Platform],
    mappings: Optional[Dict[str, Mapping]],
) -> tuple[CDCG, Platform, Dict[str, Mapping]]:
    return (
        cdcg if cdcg is not None else paper_example_cdcg(),
        platform if platform is not None else paper_example_platform(),
        mappings if mappings is not None else paper_example_mappings(),
    )


def figure2_data(
    cdcg: Optional[CDCG] = None,
    platform: Optional[Platform] = None,
    mappings: Optional[Dict[str, Mapping]] = None,
) -> Figure2Data:
    """CWM evaluation of the reference mappings (defaults to the paper example)."""
    cdcg, platform, mappings = _example_inputs(cdcg, platform, mappings)
    cwg = cdcg_to_cwg(cdcg)
    evaluator = CwmEvaluator(platform)
    return Figure2Data(
        reports={name: evaluator.evaluate(cwg, m) for name, m in mappings.items()}
    )


def figure3_data(
    cdcg: Optional[CDCG] = None,
    platform: Optional[Platform] = None,
    mappings: Optional[Dict[str, Mapping]] = None,
) -> Figure3Data:
    """CDCM evaluation of the reference mappings (defaults to the paper example)."""
    cdcg, platform, mappings = _example_inputs(cdcg, platform, mappings)
    evaluator = CdcmEvaluator(platform)
    return Figure3Data(
        reports={name: evaluator.evaluate(cdcg, m) for name, m in mappings.items()}
    )


def _timing_diagram(
    mapping_name: str,
    cdcg: Optional[CDCG],
    platform: Optional[Platform],
    mappings: Optional[Dict[str, Mapping]],
    width: int,
) -> str:
    cdcg, platform, mappings = _example_inputs(cdcg, platform, mappings)
    evaluator = CdcmEvaluator(platform)
    report = evaluator.evaluate(cdcg, mappings[mapping_name])
    timelines = build_timelines(report.schedule, platform.parameters)
    chart = render_ascii_gantt(timelines, width=width)
    header = (
        f"timing diagram, mapping ({mapping_name}): "
        f"texec = {report.execution_time:g} ns, "
        f"contention = {report.total_contention_delay:g} ns"
    )
    return header + "\n" + chart


def figure4_diagram(
    cdcg: Optional[CDCG] = None,
    platform: Optional[Platform] = None,
    mappings: Optional[Dict[str, Mapping]] = None,
    width: int = 80,
) -> str:
    """Timing diagram of the contended mapping (Figure 4; mapping "c")."""
    return _timing_diagram("c", cdcg, platform, mappings, width)


def figure5_diagram(
    cdcg: Optional[CDCG] = None,
    platform: Optional[Platform] = None,
    mappings: Optional[Dict[str, Mapping]] = None,
    width: int = 80,
) -> str:
    """Timing diagram of the contention-free mapping (Figure 5; mapping "d")."""
    return _timing_diagram("d", cdcg, platform, mappings, width)


__all__ = [
    "Figure2Data",
    "Figure3Data",
    "figure2_data",
    "figure3_data",
    "figure4_diagram",
    "figure5_diagram",
]
