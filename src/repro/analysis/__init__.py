"""Analysis and reporting: the CWM-vs-CDCM comparison pipeline, the table and
figure regeneration code, ablations and report writers.

* :mod:`repro.analysis.comparison` — runs both mapping algorithms on one
  application and computes the paper's metrics (ETR, ECS per technology,
  CPU-time ratio);
* :mod:`repro.analysis.tables` — regenerates Table 1 and Table 2;
* :mod:`repro.analysis.figures` — regenerates the data of Figures 2 and 3 and
  the ASCII timing diagrams of Figures 4 and 5;
* :mod:`repro.analysis.ablation` — sensitivity studies (routing algorithm,
  leakage scaling, SA effort, local-link serialisation);
* :mod:`repro.analysis.pareto` — energy/time Pareto fronts over the
  vector-valued objective core (non-dominated filtering, weight-sweep front
  construction off one pricing pass, front export for figures);
* :mod:`repro.analysis.report` — markdown report writers used to refresh
  EXPERIMENTS.md.
"""

from repro.analysis.comparison import (
    ComparisonConfig,
    ModelComparison,
    TechnologyResult,
    compare_models,
)
from repro.analysis.tables import (
    Table1Row,
    Table2Row,
    generate_table1,
    generate_table2,
    render_table1,
    render_table2,
)
from repro.analysis.figures import (
    figure2_data,
    figure3_data,
    figure4_diagram,
    figure5_diagram,
)
from repro.analysis.ablation import (
    AblationResult,
    routing_ablation,
    leakage_ablation,
    annealing_effort_ablation,
    local_link_ablation,
)
from repro.analysis.pareto import (
    DEFAULT_FRONT_KEYS,
    ParetoPoint,
    WeightSweepResult,
    dominates,
    front_to_rows,
    hypervolume,
    metric_points,
    non_dominated,
    pareto_front,
    weight_grid,
    weight_sweep_front,
)
from repro.analysis.report import comparison_to_markdown, table_rows_to_markdown

__all__ = [
    "DEFAULT_FRONT_KEYS",
    "ParetoPoint",
    "WeightSweepResult",
    "dominates",
    "front_to_rows",
    "hypervolume",
    "metric_points",
    "non_dominated",
    "pareto_front",
    "weight_grid",
    "weight_sweep_front",
    "ComparisonConfig",
    "ModelComparison",
    "TechnologyResult",
    "compare_models",
    "Table1Row",
    "Table2Row",
    "generate_table1",
    "generate_table2",
    "render_table1",
    "render_table2",
    "figure2_data",
    "figure3_data",
    "figure4_diagram",
    "figure5_diagram",
    "AblationResult",
    "routing_ablation",
    "leakage_ablation",
    "annealing_effort_ablation",
    "local_link_ablation",
    "comparison_to_markdown",
    "table_rows_to_markdown",
]
