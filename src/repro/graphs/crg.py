"""Communication Resource Graph (CRG) — Definition 3 of the paper.

A CRG is a directed graph ``<T, L>`` whose vertices are the tiles (each tile
hosting one router plus one IP core slot) of the target NoC and whose edges
are the physical point-to-point links between routers.  It is equivalent to
Hu & Marculescu's architecture characterisation graph and to Murali &
De Micheli's NoC topology graph.

The CRG is a pure structural description: it knows nothing about routing,
timing or energy.  The mesh constructor, routing functions and resource
reservation machinery live in :mod:`repro.noc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.utils.errors import GraphValidationError


@dataclass(frozen=True)
class Tile:
    """A CRG vertex: one tile of the NoC.

    Attributes
    ----------
    index:
        Dense integer identifier, ``0 .. n-1``.
    x, y:
        Grid coordinates for mesh-like topologies.  Topologies without a
        natural grid embedding may set both to ``index`` and 0.
    """

    index: int
    x: int
    y: int

    @property
    def name(self) -> str:
        """Human-readable tile name, e.g. ``"tau3"`` for tile index 3."""
        return f"tau{self.index}"

    @property
    def position(self) -> Tuple[int, int]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Link:
    """A CRG edge: a unidirectional physical link between two routers.

    Attributes
    ----------
    source, target:
        Tile indices of the link endpoints.
    orientation:
        ``"horizontal"`` or ``"vertical"``; used by the energy model to pick
        between ``ELHbit`` and ``ELVbit`` (identical for square tiles, but the
        distinction is kept so rectangular tiles can be modelled).
    """

    source: int
    target: int
    orientation: str = "horizontal"

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise GraphValidationError(
                f"link endpoints must differ, got {self.source}->{self.target}"
            )
        if self.orientation not in ("horizontal", "vertical"):
            raise GraphValidationError(
                f"link orientation must be 'horizontal' or 'vertical', "
                f"got {self.orientation!r}"
            )

    @property
    def key(self) -> Tuple[int, int]:
        return (self.source, self.target)


class CRG:
    """Communication resource graph of a NoC platform.

    Tiles are added with :meth:`add_tile`, links with :meth:`add_link`.  Most
    users never build a CRG by hand; :func:`repro.noc.topology.build_mesh_crg`
    constructs the regular 2D-mesh CRG used throughout the paper.
    """

    def __init__(self, name: str = "noc") -> None:
        self.name = name
        self._tiles: Dict[int, Tile] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        self._out_links: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_tile(self, index: int, x: int, y: int) -> Tile:
        """Register a tile.  Tile indices must be unique."""
        if index < 0:
            raise GraphValidationError(f"tile index must be non-negative, got {index}")
        if index in self._tiles:
            raise GraphValidationError(f"tile index {index} already exists")
        tile = Tile(index, x, y)
        self._tiles[index] = tile
        self._out_links.setdefault(index, [])
        return tile

    def add_link(self, source: int, target: int, orientation: str = "horizontal") -> Link:
        """Register a unidirectional link between two existing tiles."""
        if source not in self._tiles:
            raise GraphValidationError(f"link source tile {source} does not exist")
        if target not in self._tiles:
            raise GraphValidationError(f"link target tile {target} does not exist")
        link = Link(source, target, orientation)
        if link.key in self._links:
            raise GraphValidationError(f"link {source}->{target} already exists")
        self._links[link.key] = link
        self._out_links[source].append(target)
        return link

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def tiles(self) -> List[Tile]:
        """Tiles sorted by index."""
        return [self._tiles[idx] for idx in sorted(self._tiles)]

    @property
    def num_tiles(self) -> int:
        return len(self._tiles)

    @property
    def links(self) -> List[Link]:
        """Links sorted by ``(source, target)``."""
        return [self._links[key] for key in sorted(self._links)]

    @property
    def num_links(self) -> int:
        return len(self._links)

    def tile(self, index: int) -> Tile:
        try:
            return self._tiles[index]
        except KeyError as exc:
            raise GraphValidationError(
                f"no tile with index {index} in CRG {self.name!r}"
            ) from exc

    def has_tile(self, index: int) -> bool:
        return index in self._tiles

    def link(self, source: int, target: int) -> Link:
        try:
            return self._links[(source, target)]
        except KeyError as exc:
            raise GraphValidationError(
                f"no link {source}->{target} in CRG {self.name!r}"
            ) from exc

    def has_link(self, source: int, target: int) -> bool:
        return (source, target) in self._links

    def neighbours(self, index: int) -> List[int]:
        """Tiles reachable from *index* through one link, sorted."""
        if index not in self._tiles:
            raise GraphValidationError(f"no tile with index {index}")
        return sorted(self._out_links[index])

    def tile_at(self, x: int, y: int) -> Tile:
        """Look up a tile by its grid coordinates."""
        for tile in self._tiles.values():
            if tile.x == x and tile.y == y:
                return tile
        raise GraphValidationError(f"no tile at position ({x}, {y})")

    # ------------------------------------------------------------------
    # Validation and conversion
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants.

        A valid CRG has at least one tile, unique tile positions, link
        endpoints that exist, and (when it has more than one tile) weak
        connectivity so every core can reach every other core.
        """
        if not self._tiles:
            raise GraphValidationError(f"CRG {self.name!r} has no tiles")
        positions = [tile.position for tile in self._tiles.values()]
        if len(set(positions)) != len(positions):
            raise GraphValidationError(
                f"CRG {self.name!r} has tiles sharing the same position"
            )
        for (source, target) in self._links:
            if source not in self._tiles or target not in self._tiles:
                raise GraphValidationError(
                    f"link {source}->{target} references a missing tile"
                )
        if self.num_tiles > 1:
            graph = self.to_networkx().to_undirected()
            if not nx.is_connected(graph):
                raise GraphValidationError(
                    f"CRG {self.name!r} is not connected; some tiles are unreachable"
                )

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph`.

        Tile vertices carry ``x``/``y`` attributes; link edges carry their
        ``orientation``.
        """
        graph = nx.DiGraph(name=self.name)
        for tile in self.tiles:
            graph.add_node(tile.index, x=tile.x, y=tile.y)
        for link in self.links:
            graph.add_edge(link.source, link.target, orientation=link.orientation)
        return graph

    def copy(self) -> "CRG":
        clone = CRG(self.name)
        for tile in self.tiles:
            clone.add_tile(tile.index, tile.x, tile.y)
        for link in self.links:
            clone.add_link(link.source, link.target, link.orientation)
        return clone

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tiles)

    def __contains__(self, index: int) -> bool:
        return index in self._tiles

    def __repr__(self) -> str:
        return f"CRG(name={self.name!r}, tiles={self.num_tiles}, links={self.num_links})"


__all__ = ["CRG", "Tile", "Link"]
