"""Communication Dependence and Computation Graph (CDCG) — Definition 2.

A CDCG is a directed graph ``<P, D>`` whose vertices are the *packets*
exchanged between cores (plus two special ``Start`` and ``End`` vertices) and
whose edges are the communication dependences between packets.  Each packet is
the 4-tuple ``p_abq = (c_a, c_b, t_aq, w_abq)``: it is the q-th packet sent
from core ``c_a`` to core ``c_b``, carries ``w_abq`` bits, and is injected
after the originating core has computed for ``t_aq`` time units.

The CDCG is the input of the CDCM mapping algorithm: replaying it over a
mapped NoC (see :mod:`repro.noc.scheduler`) yields the application execution
time, per-resource occupation intervals, and contention delays that the CWM
abstraction cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.utils.errors import GraphValidationError

#: Name of the special source vertex.  Every packet with no explicit
#: predecessor depends on ``START``.
START = "__start__"

#: Name of the special sink vertex.  Every packet with no explicit successor
#: leads to ``END``.
END = "__end__"


@dataclass(frozen=True)
class Packet:
    """A CDCG vertex: one packet exchanged between two cores.

    Attributes
    ----------
    name:
        Unique identifier of the packet inside its CDCG (e.g. ``"EA1"`` for
        the first packet from core E to core A, following the paper's
        ``p_EA1`` notation).
    source, target:
        The communicating cores ``c_a`` and ``c_b``.
    computation_time:
        ``t_aq`` — time (in the platform's time unit, nanoseconds by library
        convention) the source core computes before injecting this packet,
        counted from the moment all the packet's dependences are satisfied.
    bits:
        ``w_abq`` — number of bits in the packet.
    """

    name: str
    source: str
    target: str
    computation_time: float
    bits: int

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphValidationError("packet name must be a non-empty string")
        if self.name in (START, END):
            raise GraphValidationError(
                f"packet name {self.name!r} collides with a reserved vertex name"
            )
        if self.source == self.target:
            raise GraphValidationError(
                f"packet {self.name!r}: source and target core are both "
                f"{self.source!r}; self communication is not allowed"
            )
        if self.computation_time < 0:
            raise GraphValidationError(
                f"packet {self.name!r}: computation time must be non-negative, "
                f"got {self.computation_time}"
            )
        if self.bits <= 0:
            raise GraphValidationError(
                f"packet {self.name!r}: bit volume must be positive, got {self.bits}"
            )

    @property
    def flow(self) -> Tuple[str, str]:
        """The ``(source, target)`` core pair of this packet."""
        return (self.source, self.target)


class CDCG:
    """Communication dependence and computation graph of an application.

    The graph always contains the two special vertices :data:`START` and
    :data:`END`.  Packets without explicit predecessors are implicitly
    reachable from ``START`` (see :meth:`initial_packets`) and packets without
    successors implicitly lead to ``END``; :meth:`validate` checks that the
    dependence relation is acyclic so the application always terminates.

    Examples
    --------
    >>> cdcg = CDCG("example")
    >>> p1 = cdcg.add_packet("EA1", "E", "A", computation_time=10, bits=20)
    >>> p2 = cdcg.add_packet("EA2", "E", "A", computation_time=20, bits=15)
    >>> cdcg.add_dependence("EA1", "EA2")
    >>> [p.name for p in cdcg.initial_packets()]
    ['EA1']
    """

    def __init__(self, name: str = "application") -> None:
        self.name = name
        self._packets: Dict[str, Packet] = {}
        self._order: List[str] = []
        # dependences: predecessor name -> set of successor names
        self._successors: Dict[str, Set[str]] = {}
        self._predecessors: Dict[str, Set[str]] = {}
        self._explicit_cores: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_packet(
        self,
        name: str,
        source: str,
        target: str,
        computation_time: float,
        bits: int,
    ) -> Packet:
        """Create and register a packet vertex.

        Returns the created :class:`Packet`.  Raises if *name* is already used.
        """
        packet = Packet(name, source, target, computation_time, bits)
        if name in self._packets:
            raise GraphValidationError(
                f"packet name {name!r} already exists in CDCG {self.name!r}"
            )
        self._packets[name] = packet
        self._order.append(name)
        self._successors.setdefault(name, set())
        self._predecessors.setdefault(name, set())
        return packet

    def add_dependence(self, predecessor: str, successor: str) -> None:
        """Declare that *successor* can only be injected after *predecessor*
        has been delivered.

        Both arguments are packet names.  ``START``/``END`` must not be passed
        explicitly; they are implied by the absence of predecessors or
        successors.
        """
        if predecessor in (START, END) or successor in (START, END):
            raise GraphValidationError(
                "Start/End vertices are implicit; do not add dependences on them"
            )
        if predecessor not in self._packets:
            raise GraphValidationError(
                f"unknown predecessor packet {predecessor!r} in CDCG {self.name!r}"
            )
        if successor not in self._packets:
            raise GraphValidationError(
                f"unknown successor packet {successor!r} in CDCG {self.name!r}"
            )
        if predecessor == successor:
            raise GraphValidationError(
                f"packet {predecessor!r} cannot depend on itself"
            )
        self._successors[predecessor].add(successor)
        self._predecessors[successor].add(predecessor)

    def add_core(self, core: str) -> None:
        """Register a core that may not appear in any packet.

        Cores that never communicate still occupy a tile; registering them
        ensures :meth:`cores` (and therefore the derived CWG and the mapping
        search space) includes them.
        """
        if not core:
            raise GraphValidationError("core name must be a non-empty string")
        if core not in self._explicit_cores:
            self._explicit_cores.append(core)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def packets(self) -> List[Packet]:
        """All packets in insertion order."""
        return [self._packets[name] for name in self._order]

    @property
    def num_packets(self) -> int:
        return len(self._packets)

    @property
    def num_dependences(self) -> int:
        return sum(len(succ) for succ in self._successors.values())

    def packet(self, name: str) -> Packet:
        """Look up a packet by name."""
        try:
            return self._packets[name]
        except KeyError as exc:
            raise GraphValidationError(
                f"no packet named {name!r} in CDCG {self.name!r}"
            ) from exc

    def has_packet(self, name: str) -> bool:
        return name in self._packets

    def cores(self) -> List[str]:
        """All cores referenced by packets (plus explicitly registered ones).

        Order is deterministic: explicit cores first (insertion order), then
        cores discovered from packets in packet insertion order.
        """
        seen: List[str] = []
        seen_set: Set[str] = set()
        for core in self._explicit_cores:
            if core not in seen_set:
                seen.append(core)
                seen_set.add(core)
        for name in self._order:
            packet = self._packets[name]
            for core in (packet.source, packet.target):
                if core not in seen_set:
                    seen.append(core)
                    seen_set.add(core)
        return seen

    @property
    def num_cores(self) -> int:
        return len(self.cores())

    def total_bits(self) -> int:
        """Total bit volume over all packets."""
        return sum(packet.bits for packet in self.packets)

    def successors(self, name: str) -> FrozenSet[str]:
        """Packets that directly depend on *name*."""
        self._require_packet(name)
        return frozenset(self._successors[name])

    def predecessors(self, name: str) -> FrozenSet[str]:
        """Packets that *name* directly depends on."""
        self._require_packet(name)
        return frozenset(self._predecessors[name])

    def initial_packets(self) -> List[Packet]:
        """Packets with no predecessors (implicitly pointed at by ``Start``)."""
        return [
            self._packets[name]
            for name in self._order
            if not self._predecessors[name]
        ]

    def final_packets(self) -> List[Packet]:
        """Packets with no successors (implicitly pointing at ``End``)."""
        return [
            self._packets[name]
            for name in self._order
            if not self._successors[name]
        ]

    def dependences(self) -> Iterator[Tuple[str, str]]:
        """Iterate over ``(predecessor, successor)`` packet-name pairs."""
        for name in self._order:
            for successor in sorted(self._successors[name]):
                yield (name, successor)

    def packets_between(self, source: str, target: str) -> List[Packet]:
        """The set ``P_ab``: all packets from core *source* to core *target*,
        in insertion order."""
        return [
            packet
            for packet in self.packets
            if packet.source == source and packet.target == target
        ]

    def flows(self) -> List[Tuple[str, str]]:
        """Distinct communicating core pairs, in first-appearance order."""
        seen: List[Tuple[str, str]] = []
        seen_set: Set[Tuple[str, str]] = set()
        for packet in self.packets:
            if packet.flow not in seen_set:
                seen.append(packet.flow)
                seen_set.add(packet.flow)
        return seen

    def _require_packet(self, name: str) -> None:
        if name not in self._packets:
            raise GraphValidationError(
                f"no packet named {name!r} in CDCG {self.name!r}"
            )

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Packet]:
        """Packets in a dependence-respecting order (Kahn's algorithm).

        Raises :class:`GraphValidationError` if the dependence relation has a
        cycle (such an application could never execute).
        Ties are broken by insertion order, so the result is deterministic.
        """
        in_degree = {name: len(self._predecessors[name]) for name in self._order}
        ready = [name for name in self._order if in_degree[name] == 0]
        result: List[Packet] = []
        position = {name: idx for idx, name in enumerate(self._order)}
        while ready:
            ready.sort(key=position.__getitem__)
            current = ready.pop(0)
            result.append(self._packets[current])
            for successor in self._successors[current]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(result) != len(self._order):
            raise GraphValidationError(
                f"CDCG {self.name!r} contains a dependence cycle"
            )
        return result

    def critical_path_time(self) -> float:
        """Lower bound on execution time: the longest chain of computation
        times through the dependence graph, ignoring all communication delay.

        Useful as a sanity check on scheduler results — the scheduled
        execution time can never be below this bound.
        """
        longest: Dict[str, float] = {}
        for packet in self.topological_order():
            preds = self._predecessors[packet.name]
            base = max((longest[p] for p in preds), default=0.0)
            longest[packet.name] = base + packet.computation_time
        return max(longest.values(), default=0.0)

    # ------------------------------------------------------------------
    # Validation and conversion
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants of the CDCG.

        A valid CDCG has at least one packet, an acyclic dependence relation,
        and internally consistent adjacency maps.
        """
        if not self._packets:
            raise GraphValidationError(f"CDCG {self.name!r} has no packets")
        for name, successors in self._successors.items():
            if name not in self._packets:
                raise GraphValidationError(f"dangling successor map entry {name!r}")
            for successor in successors:
                if successor not in self._packets:
                    raise GraphValidationError(
                        f"dependence {name!r}->{successor!r} targets unknown packet"
                    )
                if name not in self._predecessors[successor]:
                    raise GraphValidationError(
                        f"inconsistent adjacency for dependence {name!r}->{successor!r}"
                    )
        # topological_order raises on cycles.
        self.topological_order()

    def content_hash(self) -> str:
        """Stable, order-independent digest of the graph's content.

        Keyed on the core list, the packet set (name, source, target,
        computation time, bits — the full 4-tuple of Definition 2 plus the
        identifying name) and the dependence set, all canonically sorted —
        two CDCGs built by inserting the same packets and dependences in any
        order hash equal, while changing a bit volume, a computation time, a
        dependence or a core changes the digest.  The workload half of the
        persistent result-store key (:mod:`repro.service.store`): everything
        a CDCM replay can observe is covered.
        """
        from repro.utils.hashing import stable_digest

        packets = sorted(
            (p.name, p.source, p.target, float(p.computation_time), p.bits)
            for p in self.packets
        )
        dependences = sorted(self.dependences())
        return stable_digest(
            ("cdcg", sorted(self.cores()), packets, dependences)
        )

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` including Start/End vertices.

        Packet vertices carry ``source``, ``target``, ``computation_time`` and
        ``bits`` attributes.
        """
        graph = nx.DiGraph(name=self.name)
        graph.add_node(START)
        graph.add_node(END)
        for packet in self.packets:
            graph.add_node(
                packet.name,
                source=packet.source,
                target=packet.target,
                computation_time=packet.computation_time,
                bits=packet.bits,
            )
        for pred, succ in self.dependences():
            graph.add_edge(pred, succ)
        for packet in self.initial_packets():
            graph.add_edge(START, packet.name)
        for packet in self.final_packets():
            graph.add_edge(packet.name, END)
        return graph

    def copy(self) -> "CDCG":
        """Return an independent deep copy."""
        clone = CDCG(self.name)
        for core in self._explicit_cores:
            clone.add_core(core)
        for packet in self.packets:
            clone.add_packet(
                packet.name,
                packet.source,
                packet.target,
                packet.computation_time,
                packet.bits,
            )
        for pred, succ in self.dependences():
            clone.add_dependence(pred, succ)
        return clone

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._packets)

    def __contains__(self, name: str) -> bool:
        return name in self._packets

    def __repr__(self) -> str:
        return (
            f"CDCG(name={self.name!r}, cores={self.num_cores}, "
            f"packets={self.num_packets}, dependences={self.num_dependences}, "
            f"total_bits={self.total_bits()})"
        )


def chain_dependences(cdcg: CDCG, packet_names: Sequence[str]) -> None:
    """Add dependences forming a chain over *packet_names* in order.

    Convenience helper used by workload generators to express "these packets
    happen one after the other".
    """
    for pred, succ in zip(packet_names, packet_names[1:]):
        cdcg.add_dependence(pred, succ)


__all__ = ["CDCG", "Packet", "START", "END", "chain_dependences"]
