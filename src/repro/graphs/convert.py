"""Conversions between application models.

The central conversion is :func:`cdcg_to_cwg`: collapsing a CDCG (packet-level
model) into the CWG (core-level model) that the CWM algorithm would see for
the same application.  This is exactly how the paper compares the two models —
both algorithms map the *same* application, described at different abstraction
levels, and the mappings are then evaluated under the richer CDCM model.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graphs.cdcg import CDCG
from repro.graphs.cwg import CWG
from repro.utils.errors import GraphValidationError


def cdcg_to_cwg(cdcg: CDCG, name: str | None = None) -> CWG:
    """Collapse a CDCG into the equivalent CWG.

    Every packet ``p_abq`` contributes its bit volume ``w_abq`` to the CWG
    edge ``c_a -> c_b``; computation times and dependences are discarded
    (that is the information loss the paper's comparison is about).

    Parameters
    ----------
    cdcg:
        Packet-level application model.
    name:
        Optional name for the produced CWG; defaults to the CDCG's name.
    """
    cwg = CWG(name if name is not None else cdcg.name)
    for core in cdcg.cores():
        cwg.add_core(core)
    volumes: Dict[Tuple[str, str], int] = {}
    for packet in cdcg.packets:
        volumes[packet.flow] = volumes.get(packet.flow, 0) + packet.bits
    for (source, target), bits in volumes.items():
        cwg.add_communication(source, target, bits)
    return cwg


def check_consistent(cdcg: CDCG, cwg: CWG) -> None:
    """Verify that *cwg* is the collapse of *cdcg*.

    Raises :class:`GraphValidationError` when the core sets or per-flow bit
    volumes disagree.  Used by tests and by the framework when a user supplies
    both models explicitly.
    """
    derived = cdcg_to_cwg(cdcg)
    if set(derived.cores) != set(cwg.cores):
        raise GraphValidationError(
            "CWG and CDCG disagree on the application core set: "
            f"{sorted(set(derived.cores) ^ set(cwg.cores))}"
        )
    derived_edges = {(c.source, c.target): c.bits for c in derived.communications()}
    given_edges = {(c.source, c.target): c.bits for c in cwg.communications()}
    if derived_edges != given_edges:
        raise GraphValidationError(
            "CWG edge volumes do not match the packet volumes of the CDCG"
        )


__all__ = ["cdcg_to_cwg", "check_consistent"]
