"""Communication Weighted Graph (CWG) — Definition 1 of the paper.

A CWG is a directed graph ``<C, W>`` whose vertices are the application's IP
cores and whose edges carry the total number of bits exchanged between a pair
of cores over the whole application run.  It is the application model used by
communication weighted models (CWM) such as Hu & Marculescu's APCG and
Murali & De Micheli's core graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.utils.errors import GraphValidationError


@dataclass(frozen=True)
class Communication:
    """A single weighted edge of a CWG.

    Attributes
    ----------
    source, target:
        Names of the communicating cores.
    bits:
        Total number of bits sent from *source* to *target* over the whole
        application execution (the paper's ``w_ab``).
    """

    source: str
    target: str
    bits: int

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise GraphValidationError(
                f"self communication {self.source}->{self.target} is not allowed"
            )
        if self.bits <= 0:
            raise GraphValidationError(
                f"communication {self.source}->{self.target} must carry a positive "
                f"number of bits, got {self.bits}"
            )


class CWG:
    """Communication weighted graph of an application.

    Parameters
    ----------
    name:
        Human-readable application name (used in reports and tables).

    Examples
    --------
    >>> cwg = CWG("example")
    >>> cwg.add_core("A")
    >>> cwg.add_core("B")
    >>> cwg.add_communication("A", "B", 15)
    >>> cwg.weight("A", "B")
    15
    """

    def __init__(self, name: str = "application") -> None:
        self.name = name
        self._cores: List[str] = []
        self._core_set: set[str] = set()
        # adjacency: source -> {target: bits}
        self._edges: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_core(self, core: str) -> None:
        """Register a core.  Adding an existing core is a no-op."""
        if not core:
            raise GraphValidationError("core name must be a non-empty string")
        if core in self._core_set:
            return
        self._cores.append(core)
        self._core_set.add(core)
        self._edges.setdefault(core, {})

    def add_communication(self, source: str, target: str, bits: int) -> None:
        """Add (or accumulate onto) the edge ``source -> target``.

        Calling this twice for the same pair accumulates the bit volumes,
        which matches how a CWG is extracted from a packet trace: the edge
        weight is the *total* volume of all packets between the two cores.
        """
        edge = Communication(source, target, bits)
        self.add_core(source)
        self.add_core(target)
        current = self._edges[source].get(target, 0)
        self._edges[source][target] = current + edge.bits

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def cores(self) -> List[str]:
        """Cores in insertion order."""
        return list(self._cores)

    @property
    def num_cores(self) -> int:
        return len(self._cores)

    @property
    def num_communications(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def has_core(self, core: str) -> bool:
        return core in self._core_set

    def has_communication(self, source: str, target: str) -> bool:
        return target in self._edges.get(source, {})

    def weight(self, source: str, target: str) -> int:
        """Bit volume of the edge ``source -> target``.

        Raises :class:`GraphValidationError` if the edge does not exist.
        """
        try:
            return self._edges[source][target]
        except KeyError as exc:
            raise GraphValidationError(
                f"no communication from {source!r} to {target!r} in CWG {self.name!r}"
            ) from exc

    def communications(self) -> Iterator[Communication]:
        """Iterate over all edges as :class:`Communication` records."""
        for source in self._cores:
            for target, bits in self._edges.get(source, {}).items():
                yield Communication(source, target, bits)

    def total_bits(self) -> int:
        """Total communication volume of the application, in bits."""
        return sum(comm.bits for comm in self.communications())

    def out_volume(self, core: str) -> int:
        """Total bits sent by *core*."""
        self._require_core(core)
        return sum(self._edges.get(core, {}).values())

    def in_volume(self, core: str) -> int:
        """Total bits received by *core*."""
        self._require_core(core)
        return sum(
            targets.get(core, 0) for targets in self._edges.values()
        )

    def neighbours(self, core: str) -> List[str]:
        """Cores that *core* communicates with, in either direction."""
        self._require_core(core)
        outgoing = set(self._edges.get(core, {}))
        incoming = {src for src, targets in self._edges.items() if core in targets}
        return sorted(outgoing | incoming)

    def _require_core(self, core: str) -> None:
        if core not in self._core_set:
            raise GraphValidationError(
                f"core {core!r} is not part of CWG {self.name!r}"
            )

    # ------------------------------------------------------------------
    # Validation and conversion
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants, raising :class:`GraphValidationError`.

        A valid CWG has at least one core, every edge endpoint registered as a
        core, and strictly positive edge weights.  Construction already
        enforces most of this; :meth:`validate` exists so that graphs built by
        deserialisation or external code can be checked in one call.
        """
        if not self._cores:
            raise GraphValidationError(f"CWG {self.name!r} has no cores")
        for source, targets in self._edges.items():
            if source not in self._core_set:
                raise GraphValidationError(
                    f"edge source {source!r} is not a registered core"
                )
            for target, bits in targets.items():
                if target not in self._core_set:
                    raise GraphValidationError(
                        f"edge target {target!r} is not a registered core"
                    )
                if source == target:
                    raise GraphValidationError(
                        f"self communication on core {source!r}"
                    )
                if bits <= 0:
                    raise GraphValidationError(
                        f"non-positive weight on {source!r}->{target!r}: {bits}"
                    )

    def content_hash(self) -> str:
        """Stable, order-independent digest of the graph's content.

        Keyed on the core set and the ``(source, target, bits)`` edge set,
        both canonically sorted — two CWGs built by adding the same edges in
        any order (or carrying different display names) hash equal, while
        changing a single bit volume, edge or core changes the digest.  This
        is the workload half of the persistent result-store key
        (:mod:`repro.service.store`): everything that can influence a CWM
        price is covered, nothing that cannot (names, insertion order) is.
        """
        from repro.utils.hashing import stable_digest

        edges = sorted(
            (comm.source, comm.target, comm.bits)
            for comm in self.communications()
        )
        return stable_digest(("cwg", sorted(self._core_set), edges))

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` with ``bits`` edge attributes."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self._cores)
        for comm in self.communications():
            graph.add_edge(comm.source, comm.target, bits=comm.bits)
        return graph

    def copy(self) -> "CWG":
        """Return an independent deep copy of this graph."""
        clone = CWG(self.name)
        for core in self._cores:
            clone.add_core(core)
        for comm in self.communications():
            clone.add_communication(comm.source, comm.target, comm.bits)
        return clone

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, core: str) -> bool:
        return core in self._core_set

    def __len__(self) -> int:
        return len(self._cores)

    def __repr__(self) -> str:
        return (
            f"CWG(name={self.name!r}, cores={self.num_cores}, "
            f"communications={self.num_communications}, total_bits={self.total_bits()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CWG):
            return NotImplemented
        return (
            set(self._cores) == set(other._cores)
            and {
                (c.source, c.target, c.bits) for c in self.communications()
            }
            == {(c.source, c.target, c.bits) for c in other.communications()}
        )

    def __hash__(self) -> int:  # pragma: no cover - CWGs are mutable
        raise TypeError("CWG objects are mutable and unhashable")


def cwg_from_edges(
    name: str, edges: Iterable[Tuple[str, str, int]], cores: Optional[Iterable[str]] = None
) -> CWG:
    """Convenience constructor building a CWG from ``(source, target, bits)`` triples.

    Parameters
    ----------
    name:
        Application name.
    edges:
        Iterable of ``(source, target, bits)``.
    cores:
        Optional iterable of core names to register even if isolated (a core
        that never communicates still has to be placed on a tile).
    """
    cwg = CWG(name)
    if cores is not None:
        for core in cores:
            cwg.add_core(core)
    for source, target, bits in edges:
        cwg.add_communication(source, target, bits)
    return cwg


__all__ = ["CWG", "Communication", "cwg_from_edges"]
