"""Application and architecture graph structures.

This package implements the three graph structures defined in Section 3.1 of
the paper:

* :class:`~repro.graphs.cwg.CWG` — the *communication weighted graph*
  (Definition 1): one vertex per IP core, one weighted edge per communicating
  pair of cores.  It is the input of the CWM mapping algorithm.
* :class:`~repro.graphs.cdcg.CDCG` — the *communication dependence and
  computation graph* (Definition 2): one vertex per packet, plus ``Start`` and
  ``End`` vertices, edges expressing packet dependences.  It is the input of
  the CDCM mapping algorithm.
* :class:`~repro.graphs.crg.CRG` — the *communication resource graph*
  (Definition 3): one vertex per tile/router of the target NoC, one edge per
  physical link.

The :mod:`repro.graphs.convert` module collapses a CDCG into the CWG that the
paper's CWM algorithm would see for the same application, and
:mod:`repro.graphs.io` serialises all three structures to/from JSON and DOT.
"""

from repro.graphs.cwg import CWG, Communication
from repro.graphs.cdcg import CDCG, Packet, START, END
from repro.graphs.crg import CRG, Tile, Link
from repro.graphs.convert import cdcg_to_cwg
from repro.graphs.io import (
    cwg_to_dict,
    cwg_from_dict,
    cdcg_to_dict,
    cdcg_from_dict,
    save_json,
    load_cwg_json,
    load_cdcg_json,
    cwg_to_dot,
    cdcg_to_dot,
    crg_to_dot,
)

__all__ = [
    "CWG",
    "Communication",
    "CDCG",
    "Packet",
    "START",
    "END",
    "CRG",
    "Tile",
    "Link",
    "cdcg_to_cwg",
    "cwg_to_dict",
    "cwg_from_dict",
    "cdcg_to_dict",
    "cdcg_from_dict",
    "save_json",
    "load_cwg_json",
    "load_cdcg_json",
    "cwg_to_dot",
    "cdcg_to_dot",
    "crg_to_dot",
]
