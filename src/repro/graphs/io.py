"""Serialisation of application and architecture graphs.

Two formats are supported:

* **JSON** — lossless round-trip for CWG and CDCG (the formats a user would
  check into a repository alongside their application), plus CRG export.
* **DOT** — Graphviz export for visual inspection of any of the three graphs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.graphs.cdcg import CDCG
from repro.graphs.crg import CRG
from repro.graphs.cwg import CWG
from repro.utils.errors import GraphValidationError

PathLike = Union[str, Path]

# ---------------------------------------------------------------------------
# CWG <-> dict / JSON
# ---------------------------------------------------------------------------


def cwg_to_dict(cwg: CWG) -> Dict[str, Any]:
    """Serialise a CWG into a plain dictionary."""
    return {
        "type": "cwg",
        "name": cwg.name,
        "cores": cwg.cores,
        "communications": [
            {"source": c.source, "target": c.target, "bits": c.bits}
            for c in cwg.communications()
        ],
    }


def cwg_from_dict(data: Dict[str, Any]) -> CWG:
    """Deserialise a CWG from :func:`cwg_to_dict` output."""
    if data.get("type") != "cwg":
        raise GraphValidationError(
            f"expected a 'cwg' document, got type={data.get('type')!r}"
        )
    cwg = CWG(data.get("name", "application"))
    for core in data.get("cores", []):
        cwg.add_core(core)
    for comm in data.get("communications", []):
        cwg.add_communication(comm["source"], comm["target"], int(comm["bits"]))
    cwg.validate()
    return cwg


# ---------------------------------------------------------------------------
# CDCG <-> dict / JSON
# ---------------------------------------------------------------------------


def cdcg_to_dict(cdcg: CDCG) -> Dict[str, Any]:
    """Serialise a CDCG into a plain dictionary."""
    return {
        "type": "cdcg",
        "name": cdcg.name,
        "cores": cdcg.cores(),
        "packets": [
            {
                "name": p.name,
                "source": p.source,
                "target": p.target,
                "computation_time": p.computation_time,
                "bits": p.bits,
            }
            for p in cdcg.packets
        ],
        "dependences": [
            {"predecessor": pred, "successor": succ}
            for pred, succ in cdcg.dependences()
        ],
    }


def cdcg_from_dict(data: Dict[str, Any]) -> CDCG:
    """Deserialise a CDCG from :func:`cdcg_to_dict` output."""
    if data.get("type") != "cdcg":
        raise GraphValidationError(
            f"expected a 'cdcg' document, got type={data.get('type')!r}"
        )
    cdcg = CDCG(data.get("name", "application"))
    for core in data.get("cores", []):
        cdcg.add_core(core)
    for packet in data.get("packets", []):
        cdcg.add_packet(
            packet["name"],
            packet["source"],
            packet["target"],
            float(packet["computation_time"]),
            int(packet["bits"]),
        )
    for dep in data.get("dependences", []):
        cdcg.add_dependence(dep["predecessor"], dep["successor"])
    cdcg.validate()
    return cdcg


# ---------------------------------------------------------------------------
# JSON file helpers
# ---------------------------------------------------------------------------


def save_json(graph: Union[CWG, CDCG], path: PathLike) -> None:
    """Write a CWG or CDCG to *path* as JSON."""
    if isinstance(graph, CWG):
        data = cwg_to_dict(graph)
    elif isinstance(graph, CDCG):
        data = cdcg_to_dict(graph)
    else:
        raise TypeError(f"cannot serialise object of type {type(graph).__name__}")
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_cwg_json(path: PathLike) -> CWG:
    """Load a CWG from a JSON file produced by :func:`save_json`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return cwg_from_dict(data)


def load_cdcg_json(path: PathLike) -> CDCG:
    """Load a CDCG from a JSON file produced by :func:`save_json`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return cdcg_from_dict(data)


# ---------------------------------------------------------------------------
# DOT export
# ---------------------------------------------------------------------------


def _dot_escape(label: str) -> str:
    return label.replace('"', '\\"')


def cwg_to_dot(cwg: CWG) -> str:
    """Render a CWG as a Graphviz DOT digraph (edge labels = bit volumes)."""
    lines = [f'digraph "{_dot_escape(cwg.name)}" {{']
    for core in cwg.cores:
        lines.append(f'  "{_dot_escape(core)}" [shape=box];')
    for comm in cwg.communications():
        lines.append(
            f'  "{_dot_escape(comm.source)}" -> "{_dot_escape(comm.target)}" '
            f'[label="{comm.bits}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def cdcg_to_dot(cdcg: CDCG) -> str:
    """Render a CDCG as a Graphviz DOT digraph including Start/End."""
    lines = [f'digraph "{_dot_escape(cdcg.name)}" {{']
    lines.append('  "Start" [shape=circle];')
    lines.append('  "End" [shape=doublecircle];')
    for packet in cdcg.packets:
        label = (
            f"{packet.bits} {packet.source}->{packet.target}\\n"
            f"t{packet.source}: {packet.computation_time:g}"
        )
        lines.append(f'  "{_dot_escape(packet.name)}" [shape=box, label="{label}"];')
    for pred, succ in cdcg.dependences():
        lines.append(f'  "{_dot_escape(pred)}" -> "{_dot_escape(succ)}";')
    for packet in cdcg.initial_packets():
        lines.append(f'  "Start" -> "{_dot_escape(packet.name)}";')
    for packet in cdcg.final_packets():
        lines.append(f'  "{_dot_escape(packet.name)}" -> "End";')
    lines.append("}")
    return "\n".join(lines)


def crg_to_dot(crg: CRG) -> str:
    """Render a CRG as a Graphviz DOT digraph with tile positions."""
    lines = [f'digraph "{_dot_escape(crg.name)}" {{']
    for tile in crg.tiles:
        lines.append(
            f'  "{tile.name}" [shape=square, '
            f'pos="{tile.x},{tile.y}!", label="{tile.name}\\n({tile.x},{tile.y})"];'
        )
    for link in crg.links:
        source = crg.tile(link.source)
        target = crg.tile(link.target)
        lines.append(f'  "{source.name}" -> "{target.name}";')
    lines.append("}")
    return "\n".join(lines)


__all__ = [
    "cwg_to_dict",
    "cwg_from_dict",
    "cdcg_to_dict",
    "cdcg_from_dict",
    "save_json",
    "load_cwg_json",
    "load_cdcg_json",
    "cwg_to_dot",
    "cdcg_to_dot",
    "crg_to_dot",
]
