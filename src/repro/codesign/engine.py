"""Routing×mapping co-design: co-evolving next-hop tables and mappings.

The paper's pipeline fixes the routing (XY on a mesh) and searches mappings
against it.  :class:`CodesignSearch` widens the genome to the pair
``(routing table, mapping)`` and evolves both together under NSGA-III
reference-point selection (:mod:`repro.search.nsga3`), with two invariants
the subsystem exists to enforce:

* **certify before price** — every table a child carries passes
  :meth:`~repro.codesign.synthesis.TableSynthesizer.certify` (the
  :func:`~repro.noc.deadlock.validate_deadlock_free` gate, repair-or-reject)
  before any mapping is priced on it; an uncertified table never reaches an
  evaluation context, structurally (contexts are only ever created for
  certified routings);
* **context reuse by routing identity** — evaluation contexts are keyed by
  the table's content digest (its
  :attr:`~repro.codesign.synthesis.SynthesizedRouting.cache_token`), so the
  shared route table, memo and (for CWM) the vector kernel are built once
  per distinct table and reused across the whole population and every
  generation it survives.

Pricing goes through each context's ``evaluate_metrics_batch`` with one
shared :class:`~repro.eval.parallel.BatchBackend`, children grouped by
routing in first-seen order — the same deterministic parallel seam as the
population engines, so seeded runs are bit-identical across serial and
pooled pricing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.graphs.cdcg import CDCG
from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.codesign.synthesis import (
    DEFAULT_POLICY,
    NextHopTable,
    SynthesizedRouting,
    TableSynthesizer,
)
from repro.eval.context import CdcmEvaluationContext, EvaluationContext
from repro.noc.deadlock import Channel
from repro.noc.platform import Platform
from repro.search.base import PoolOwnerMixin, Searcher, SearchResult
from repro.search.genetic import swap_mutation, uniform_assignment_crossover
from repro.search.nsga2 import fast_non_dominated_sort
from repro.search.nsga3 import (
    _normalise,
    associate_to_references,
    das_dennis_reference_points,
    default_divisions,
    niche_select,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng

#: Builds the pricing context for one certified routing's platform.
ContextFactory = Callable[[Platform], EvaluationContext]

#: Preferred dominance keys when the caller passes none: the many-objective
#: energy × time × congestion trade-off, falling back like NSGA-II/III when
#: the objective prices fewer components.
DEFAULT_CODESIGN_KEYS: Tuple[str, ...] = (
    "energy",
    "time",
    "max_link_utilisation",
)


@dataclass(frozen=True)
class CodesignParameters:
    """Knobs of :class:`CodesignSearch`.

    Attributes
    ----------
    population_size:
        ``(table, mapping)`` individuals per generation (at least 4).
    generations:
        Number of (mu + lambda) generations to evolve.
    tournament_size:
        Individuals drawn per niched tournament.
    crossover_rate:
        Probability a child's *mapping* comes from uniform crossover.
    mutation_rate:
        Probability a child's mapping is mutated by one tile swap.
    table_mutation_rate:
        Probability a child's *table* is mutated (otherwise it inherits the
        first parent's certified table unchanged — alternation between
        mapping moves and routing moves emerges from the two rates).
    table_mutations:
        Minimal-next-hop entry flips per table mutation.
    divisions:
        Das–Dennis divisions of the NSGA-III reference lattice (``None``
        auto-picks the smallest lattice covering the population).
    n_workers:
        Parallel pricing fan-out (bit-identical to serial, as everywhere).
    """

    population_size: int = 16
    generations: int = 12
    tournament_size: int = 2
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    table_mutation_rate: float = 0.5
    table_mutations: int = 2
    divisions: Optional[int] = None
    n_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ConfigurationError("population_size must be at least 4")
        if self.generations < 1:
            raise ConfigurationError("generations must be positive")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size must be between 1 and population_size"
            )
        for name in ("crossover_rate", "mutation_rate", "table_mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.table_mutations < 1:
            raise ConfigurationError(
                f"table_mutations must be positive, got {self.table_mutations}"
            )
        if self.divisions is not None and self.divisions < 1:
            raise ConfigurationError(
                f"divisions must be positive, got {self.divisions}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {self.n_workers}"
            )


class _Individual(NamedTuple):
    """One genome: a certified routing and a mapping priced under it."""

    routing: SynthesizedRouting
    mapping: Mapping


@dataclass
class CodesignResult(SearchResult):
    """A :class:`~repro.search.base.SearchResult` plus the routing genome.

    Attributes
    ----------
    best_routing:
        The certified table the incumbent mapping was priced under.
    front_routings:
        The routing of each ``front`` point, aligned index-for-index.
    tables_certified:
        How many tables passed the deadlock gate over the run (seeds,
        random fills and mutated children alike).
    tables_rejected:
        How many tables the gate rejected (``"reject"`` policy); rejected
        children fall back to their parent's certified table.
    tables_repaired:
        How many gated tables came out repaired (``"repair"`` policy).
    last_witness:
        The most recent witness cycle a gate surfaced (empty when every
        gated table was deadlock-free as submitted).
    """

    best_routing: Optional[SynthesizedRouting] = None
    front_routings: List[SynthesizedRouting] = field(default_factory=list)
    tables_certified: int = 0
    tables_rejected: int = 0
    tables_repaired: int = 0
    last_witness: Tuple[Channel, ...] = ()


class CodesignSearch(PoolOwnerMixin, Searcher):
    """NSGA-III co-evolution of deadlock-free route tables and mappings.

    Parameters
    ----------
    cdcg:
        Packet-level application model (used by the default CDCM context
        factory; a custom ``context_factory`` may ignore it).
    platform:
        Base architecture — its topology, parameters and technology are
        kept; its routing is replaced per genome via
        :meth:`~repro.noc.platform.Platform.with_routing`.
    parameters:
        Evolution knobs; defaults to :class:`CodesignParameters`.
    keys:
        Dominance keys, validated against the pricing context's components.
        ``None`` picks the components of :data:`DEFAULT_CODESIGN_KEYS` the
        context prices (all three for CDCM), falling back to the full
        component set when fewer than two match.
    synthesizer:
        Optional pre-built :class:`~repro.codesign.synthesis.TableSynthesizer`
        (must cover ``platform.mesh``); built from the platform's topology
        by default.
    certification_policy:
        ``"repair"`` (default) or ``"reject"`` — forwarded to
        :meth:`~repro.codesign.synthesis.TableSynthesizer.certify` for every
        generated or mutated table.
    context_factory:
        ``Platform -> EvaluationContext`` building the pricing context for
        one certified routing.  Defaults to a
        :class:`~repro.eval.context.CdcmEvaluationContext` over *cdcg*.
        Factories must be deterministic in the platform (contexts are
        cached by routing digest).
    backend:
        Optional explicit batch backend (caller-owned), shared by every
        context's pricing calls.
    n_workers:
        Convenience override of ``parameters.n_workers``.
    """

    name = "codesign"

    def __init__(
        self,
        cdcg: Optional[CDCG],
        platform: Platform,
        parameters: Optional[CodesignParameters] = None,
        keys: Optional[Sequence[str]] = None,
        synthesizer: Optional[TableSynthesizer] = None,
        certification_policy: str = DEFAULT_POLICY,
        context_factory: Optional[ContextFactory] = None,
        backend=None,
        n_workers: Optional[int] = None,
    ) -> None:
        params = parameters or CodesignParameters()
        if n_workers is not None:
            params = replace(params, n_workers=n_workers)
        self.parameters = params
        self.platform = platform
        self.certification_policy = certification_policy
        if context_factory is None:
            if cdcg is None:
                raise ConfigurationError(
                    "CodesignSearch needs a CDCG for the default CDCM "
                    "pricing context (or pass an explicit context_factory)"
                )
            application = cdcg
            context_factory = lambda routed: CdcmEvaluationContext(
                application, routed
            )
        self.context_factory = context_factory
        if keys is not None and not tuple(keys):
            raise ConfigurationError(
                "dominance keys must name at least one metric (or pass None "
                "for the energy/time/congestion default)"
            )
        self.keys = tuple(keys) if keys is not None else None
        self.synthesizer = synthesizer or TableSynthesizer(platform.mesh)
        if self.synthesizer.topology is not platform.mesh:
            if self.synthesizer.topology.num_tiles != platform.num_tiles:
                raise ConfigurationError(
                    f"synthesizer covers {self.synthesizer.topology} but the "
                    f"platform fabric is {platform.mesh}"
                )
        self._backend = backend
        self._owned_backend = None

    # ------------------------------------------------------------------
    # Certification and pricing plumbing
    # ------------------------------------------------------------------
    def _resolve_keys(self, source: EvaluationContext) -> Tuple[str, ...]:
        names = tuple(source.metric_names)
        if self.keys is None:
            preferred = tuple(
                key for key in DEFAULT_CODESIGN_KEYS if key in names
            )
            return preferred if len(preferred) >= 2 else names
        unknown = [key for key in self.keys if key not in names]
        if unknown:
            raise ConfigurationError(
                f"dominance keys {unknown!r} are not components of the "
                f"pricing context; available metrics are {names}"
            )
        return self.keys

    def _context_for(
        self,
        routing: SynthesizedRouting,
        contexts: Dict[str, EvaluationContext],
    ) -> EvaluationContext:
        # Contexts exist only for certified routings: every entry to this
        # dict goes through _certify below, which is the structural form of
        # the certify-before-price invariant.
        context = contexts.get(routing.digest)
        if context is None:
            context = self.context_factory(self.platform.with_routing(routing))
            contexts[routing.digest] = context
        return context

    def _price(
        self,
        individuals: Sequence[_Individual],
        contexts: Dict[str, EvaluationContext],
        backend,
    ) -> List[MetricVector]:
        """Batch-price *individuals*, grouped by routing in first-seen order."""
        groups: Dict[str, List[int]] = {}
        for index, individual in enumerate(individuals):
            groups.setdefault(individual.routing.digest, []).append(index)
        vectors: List[Optional[MetricVector]] = [None] * len(individuals)
        for digest, indices in groups.items():
            context = self._context_for(individuals[indices[0]].routing, contexts)
            priced = context.evaluate_metrics_batch(
                [individuals[i].mapping for i in indices], backend=backend
            )
            for position, vector in zip(indices, priced):
                vectors[position] = vector
        return vectors  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # The search loop
    # ------------------------------------------------------------------
    def search(
        self,
        objective=None,
        initial: Optional[Mapping] = None,
        rng: RandomSource = None,
    ) -> CodesignResult:
        """Co-evolve (table, mapping) genomes from *initial* mapping.

        Parameters
        ----------
        objective:
            Optional per-run ``Platform -> EvaluationContext`` factory
            overriding the constructor's; ``None`` (the usual call) uses
            the configured one.  Plain scalar objectives make no sense
            here — pricing depends on each genome's routing.
        initial:
            Seed mapping, paired with every certified seed table; must know
            the NoC size.
        rng:
            Seed or generator driving all variation.

        Returns
        -------
        CodesignResult
            ``front`` / ``front_routings`` carry the final non-dominated
            genomes; ``best_mapping`` / ``best_routing`` / ``best_cost``
            the incumbent under the context's scalar weight view; the
            ``tables_*`` counters and ``last_witness`` describe the gate's
            traffic.
        """
        if initial is None:
            raise ConfigurationError(
                "CodesignSearch.search requires an initial mapping"
            )
        if objective is not None and not callable(objective):
            raise ConfigurationError(
                "CodesignSearch prices through context factories; pass None "
                "(use the configured factory) or a Platform -> "
                "EvaluationContext callable"
            )
        factory = self.context_factory
        if objective is not None:
            self.context_factory = objective
        try:
            return self._search(initial, rng)
        finally:
            self.context_factory = factory

    def _search(self, initial: Mapping, rng: RandomSource) -> CodesignResult:
        from repro.analysis.pareto import ParetoPoint

        params = self.parameters
        synthesizer = self.synthesizer
        policy = self.certification_policy
        generator = ensure_rng(rng)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "co-design search requires the initial mapping to know the "
                "NoC size"
            )
        cores = initial.cores
        backend = self._resolve_backend(params.n_workers)
        contexts: Dict[str, EvaluationContext] = {}
        certified_count = 0
        rejected_count = 0
        repaired_count = 0
        last_witness: Tuple[Channel, ...] = ()

        def certify(table: NextHopTable) -> Optional[SynthesizedRouting]:
            nonlocal certified_count, rejected_count, repaired_count
            nonlocal last_witness
            result = synthesizer.certify(table, policy=policy)
            if result.witness:
                last_witness = result.witness
            if not result.certified:
                rejected_count += 1
                return None
            certified_count += 1
            if result.repaired:
                repaired_count += 1
            return result.routing

        # Seed population: every certified registry seed paired with the
        # initial mapping, then random (table, mapping) genomes — random
        # tables still pass the gate (repair policy keeps them; reject
        # policy falls back to the first seed).
        seeds = list(synthesizer.seed_tables().values())
        population: List[_Individual] = []
        for table in seeds[: params.population_size]:
            routing = certify(table)
            assert routing is not None  # seeds certified at construction
            population.append(_Individual(routing, initial))
        fallback_routing = population[0].routing
        while len(population) < params.population_size:
            routing = certify(synthesizer.random_table(generator))
            if routing is None:
                routing = fallback_routing
            mapping = Mapping.random(cores, num_tiles, generator)
            population.append(_Individual(routing, mapping))

        first_context = self._context_for(population[0].routing, contexts)
        keys = self._resolve_keys(first_context)
        divisions = params.divisions
        if divisions is None:
            divisions = default_divisions(len(keys), params.population_size)
        references = das_dennis_reference_points(len(keys), divisions)
        weights = dict(getattr(first_context, "weights", None) or {})

        def score(vector: MetricVector) -> float:
            if weights:
                return vector.weighted_sum(weights, strict=False)
            return vector[keys[0]]

        vectors = self._price(population, contexts, backend)
        evaluations = len(population)
        mutations = 0

        costs = [score(vector) for vector in vectors]
        best_idx = min(range(len(population)), key=costs.__getitem__)
        best, best_cost = population[best_idx], costs[best_idx]
        best_vector = vectors[best_idx]
        history: List[Tuple[int, float]] = [(evaluations, best_cost)]

        for _ in range(params.generations):
            fronts = fast_non_dominated_sort(vectors, keys)
            ranks = [0] * len(population)
            for rank, front in enumerate(fronts):
                for index in front:
                    ranks[index] = rank
            normalised = _normalise(range(len(population)), vectors, keys)
            association = associate_to_references(normalised, references)
            niche_counts = [0] * len(references)
            for index in range(len(population)):
                niche_counts[association[index][0]] += 1

            # Whole brood first (fixed RNG consumption order per child:
            # two tournaments, mapping coins, table coin), then grouped
            # batch pricing — the deterministic parallel seam.
            children: List[_Individual] = []
            while len(children) < params.population_size:
                parent_a = self._tournament(
                    population, ranks, association, niche_counts, generator
                )
                parent_b = self._tournament(
                    population, ranks, association, niche_counts, generator
                )
                if generator.random() < params.crossover_rate:
                    mapping = uniform_assignment_crossover(
                        parent_a.mapping,
                        parent_b.mapping,
                        cores,
                        num_tiles,
                        generator,
                    )
                else:
                    mapping = parent_a.mapping
                if generator.random() < params.mutation_rate:
                    mapping = swap_mutation(mapping, num_tiles, generator)
                    mutations += 1
                routing = parent_a.routing
                if generator.random() < params.table_mutation_rate:
                    mutated = synthesizer.mutate(
                        routing.next_hops,
                        generator,
                        mutations=params.table_mutations,
                    )
                    candidate = certify(mutated)
                    if candidate is not None:
                        routing = candidate
                        mutations += 1
                    # Rejected tables fall back to the parent's certified
                    # routing: nothing uncertified ever reaches pricing.
                children.append(_Individual(routing, mapping))
            child_vectors = self._price(children, contexts, backend)
            evaluations += len(children)

            for individual, vector in zip(children, child_vectors):
                cost = score(vector)
                if cost < best_cost:
                    best, best_cost, best_vector = individual, cost, vector
                    history.append((evaluations, best_cost))

            # (mu + lambda) environmental selection, NSGA-III style.
            combined = population + children
            combined_vectors = vectors + child_vectors
            survivors: List[int] = []
            for front in fast_non_dominated_sort(combined_vectors, keys):
                if len(survivors) + len(front) <= params.population_size:
                    survivors.extend(front)
                    if len(survivors) == params.population_size:
                        break
                    continue
                survivors.extend(
                    niche_select(
                        survivors,
                        front,
                        combined_vectors,
                        keys,
                        references,
                        params.population_size - len(survivors),
                    )
                )
                break
            population = [combined[i] for i in survivors]
            vectors = [combined_vectors[i] for i in survivors]

            # Contexts for extinct routings are dropped (their route tables
            # stay in the process cache); survivors keep their memos warm.
            live = {individual.routing.digest for individual in population}
            live.add(best.routing.digest)
            for digest in [d for d in contexts if d not in live]:
                del contexts[digest]

        # Final non-dominated genomes, routings kept aligned (dominance on
        # rank-0 indices rather than repro.analysis.pareto.non_dominated,
        # which would lose the mapping->routing pairing).
        front_indices = fast_non_dominated_sort(vectors, keys)[0]
        front_points: List[ParetoPoint] = []
        front_routings: List[SynthesizedRouting] = []
        seen = set()
        for index in front_indices:
            individual = population[index]
            key = (
                individual.routing.digest,
                tuple(sorted(individual.mapping.assignments().items())),
            )
            if key in seen:
                continue
            seen.add(key)
            front_points.append(
                ParetoPoint(mapping=individual.mapping, metrics=vectors[index])
            )
            front_routings.append(individual.routing)

        return CodesignResult(
            best_mapping=best.mapping,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            accepted_moves=mutations,
            best_metrics=best_vector,
            front=front_points,
            best_routing=best.routing,
            front_routings=front_routings,
            tables_certified=certified_count,
            tables_rejected=rejected_count,
            tables_repaired=repaired_count,
            last_witness=last_witness,
        )

    # ------------------------------------------------------------------
    def _tournament(
        self,
        population: List[_Individual],
        ranks: List[int],
        association: Dict[int, Tuple[int, float]],
        niche_counts: List[int],
        rng,
    ) -> _Individual:
        """Niched tournament over genomes (same key as NSGA-III)."""
        size = self.parameters.tournament_size
        indices = rng.integers(0, len(population), size=size)
        winner = min(
            (int(index) for index in indices),
            key=lambda index: (
                ranks[index],
                niche_counts[association[index][0]],
                association[index][1],
                index,
            ),
        )
        return population[winner]


__all__ = [
    "ContextFactory",
    "DEFAULT_CODESIGN_KEYS",
    "CodesignParameters",
    "CodesignResult",
    "CodesignSearch",
]
