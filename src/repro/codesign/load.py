"""Per-link congestion objectives over the route table.

The CWM model (Equation 3) prices a mapping by total routed energy, which is
blind to *where* the traffic lands: two mappings with identical energy can
push very different peak loads onto individual links, and the overloaded one
is the one that saturates first when the static volumes are replayed under
contention.  This module exposes that difference as first-class
:class:`~repro.core.metrics.MetricVector` components so multi-objective
search (and the co-design engine) can trade energy against congestion:

* :func:`link_loads` — the bits each directed mesh link carries under a
  mapping, accumulated over the shared
  :class:`~repro.eval.route_table.RouteTable` (CWM volumes pushed onto the
  route of every communication);
* ``max_link_load`` — the hottest link's volume, the static analogue of the
  CDCM schedule's :meth:`~repro.noc.scheduler.ScheduleResult.max_link_utilisation`;
* ``link_load_spread`` — hottest minus mean over *all* directed links of the
  fabric, a balance measure that distinguishes "everything busy" from "one
  column saturated".

:class:`LoadAwareCwmContext` appends both components to the CWM vector
through the usual context-memoised path.  The components ride **at the end**
of the name tuple and no scalarisation weight ever names them, so every
legacy weighted view (``weighted_sum`` skips zero-weight components without
touching their values) and every
:class:`~repro.analysis.comparison.ComparisonConfig` reproduction row stays
bit-identical — the same append-only contract that lets
``max_link_utilisation`` join :data:`~repro.core.metrics.CDCM_METRIC_NAMES`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graphs.cwg import CWG
from repro.core.mapping import Mapping
from repro.core.metrics import CWM_METRIC_NAMES, MetricVector
from repro.eval.context import CwmEvaluationContext
from repro.eval.route_table import RouteTable

#: Directed mesh link, as produced by ``RouteTable.links``.
Link = Tuple[int, int]

#: Metric components of :class:`LoadAwareCwmContext` — the CWM vector with
#: the two congestion components appended (append-only: legacy weight views
#: must stay bit-identical).
LOAD_METRIC_NAMES: Tuple[str, ...] = CWM_METRIC_NAMES + (
    "max_link_load",
    "link_load_spread",
)


def link_loads(
    cwg: CWG,
    mapping: Union[Mapping, Dict[str, int]],
    route_table: RouteTable,
) -> Dict[Link, float]:
    """Bits carried by each directed mesh link under *mapping*.

    Every communication's full volume is pushed onto every link of its route
    (the CWM static view — no contention, no time axis).  Links that carry no
    traffic are absent from the result.
    """
    tiles = mapping.assignments() if isinstance(mapping, Mapping) else mapping
    loads: Dict[Link, float] = {}
    for comm in cwg.communications():
        source = tiles[comm.source]
        target = tiles[comm.target]
        if source == target:
            continue
        bits = float(comm.bits)
        for link in route_table.links(source, target):
            loads[link] = loads.get(link, 0.0) + bits
    return loads


def max_link_load(loads: Dict[Link, float]) -> float:
    """The hottest directed link's volume (0.0 for an empty load map)."""
    return max(loads.values(), default=0.0)


def link_load_spread(loads: Dict[Link, float], num_links: int) -> float:
    """Hottest-minus-mean volume over *num_links* directed fabric links.

    The mean runs over **all** links of the topology, not just loaded ones —
    an idle fabric half lowers the mean and widens the spread, which is
    exactly the imbalance the component is meant to price.  Returns 0.0 when
    the fabric has no links.
    """
    if num_links <= 0:
        return 0.0
    return max_link_load(loads) - sum(loads.values()) / num_links


class LoadAwareCwmContext(CwmEvaluationContext):
    """CWM pricing extended with per-link congestion components.

    The vector is ``("dynamic_energy", "max_link_load", "link_load_spread")``
    — see :data:`LOAD_METRIC_NAMES`.  The energy component is produced by the
    parent's machinery unmodified (scalar loop *or* array kernel — the chunk
    path delegates to :class:`~repro.eval.context.CwmEvaluationContext`, so
    kernel-priced energies stay bit-identical to serial); the two congestion
    components are accumulated from the same shared route table.

    The constructor signature, default ``weights`` (``{"dynamic_energy":
    1.0}``) and picklable-light ``__getstate__``/``__setstate__`` are all
    inherited, so pooled pricing through
    :class:`~repro.eval.parallel.ProcessPoolBackend` rebuilds an identical
    context and stays bit-identical to serial pricing.

    Incremental swap pricing: the scalar :meth:`delta` stays exact (the
    scalar cost is the energy component alone), but per-component deltas are
    disabled — a swap moves link loads non-locally and the parent's
    one-component ``metric_delta`` would silently report the wrong shape.
    """

    metric_names = LOAD_METRIC_NAMES
    supports_metric_delta = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.name = f"cwm+load({self.cwg.name})"
        self._num_links = len(self.platform.mesh.links())

    def _load_components(
        self, tiles: Dict[str, int]
    ) -> Tuple[float, float]:
        loads: Dict[Link, float] = {}
        table_links = self.route_table.links
        for source, target, bits in self._edges:
            source_tile = tiles[source]
            target_tile = tiles[target]
            if source_tile == target_tile:
                continue
            for link in table_links(source_tile, target_tile):
                loads[link] = loads.get(link, 0.0) + bits
        peak = max_link_load(loads)
        return peak, link_load_spread(loads, self._num_links)

    def _compute_metrics(
        self, mapping: Union[Mapping, Dict[str, int]]
    ) -> MetricVector:
        energy = super()._compute_metrics(mapping)["dynamic_energy"]
        peak, spread = self._load_components(self._tile_assignments(mapping))
        return MetricVector(LOAD_METRIC_NAMES, (energy, peak, spread))

    def _compute_metrics_chunk(
        self, mappings: Sequence[Union[Mapping, Dict[str, int]]]
    ) -> List[MetricVector]:
        items = list(mappings)
        energies = super()._compute_metrics_chunk(items)
        out: List[MetricVector] = []
        for mapping, vector in zip(items, energies):
            peak, spread = self._load_components(
                self._tile_assignments(mapping)
            )
            out.append(
                MetricVector(
                    LOAD_METRIC_NAMES,
                    (vector["dynamic_energy"], peak, spread),
                )
            )
        return out

    def metric_delta(
        self, mapping: Mapping, tile_a: int, tile_b: int
    ) -> MetricVector:
        raise NotImplementedError(
            "LoadAwareCwmContext does not support incremental metric-delta "
            "evaluation: swaps move link loads non-locally; check "
            "supports_metric_delta before calling metric_delta()"
        )


__all__ = [
    "Link",
    "LOAD_METRIC_NAMES",
    "link_loads",
    "max_link_load",
    "link_load_spread",
    "LoadAwareCwmContext",
]
