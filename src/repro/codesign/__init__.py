"""Routing×mapping co-design: synthesised deadlock-free tables + NSGA-III.

The reproduction pipeline (PRs 1–9) treats the routing as a fixed platform
ingredient and searches mappings against it.  This subsystem makes the
routing part of the genome:

* :mod:`repro.codesign.synthesis` — generators and mutation operators over
  per-target next-hop tables that preserve reachability by construction,
  gated by the :func:`~repro.noc.deadlock.validate_deadlock_free` certifier
  (repair-or-reject, witness cycles surfaced) before anything prices on
  them;
* :mod:`repro.codesign.load` — per-link congestion objectives
  (``max_link_load``, ``link_load_spread``) over the shared route table,
  exposed as append-only :class:`~repro.core.metrics.MetricVector`
  components so legacy weighted views stay bit-identical;
* :mod:`repro.codesign.engine` — :class:`~repro.codesign.engine.CodesignSearch`,
  the NSGA-III co-evolution driver over ``(table, mapping)`` genomes with
  per-routing context reuse and the structural certify-before-price gate.

See ``docs/codesign.md`` for the genome model, the certification gate and
the reference-point selection scheme.
"""

from repro.codesign.engine import (
    DEFAULT_CODESIGN_KEYS,
    CodesignParameters,
    CodesignResult,
    CodesignSearch,
)
from repro.codesign.load import (
    LOAD_METRIC_NAMES,
    LoadAwareCwmContext,
    link_load_spread,
    link_loads,
    max_link_load,
)
from repro.codesign.synthesis import (
    DEFAULT_SEED_SPECS,
    CertificationResult,
    NextHopTable,
    SynthesizedRouting,
    TableSynthesizer,
    register_synthesized,
)

__all__ = [
    "DEFAULT_CODESIGN_KEYS",
    "CodesignParameters",
    "CodesignResult",
    "CodesignSearch",
    "LOAD_METRIC_NAMES",
    "LoadAwareCwmContext",
    "link_load_spread",
    "link_loads",
    "max_link_load",
    "DEFAULT_SEED_SPECS",
    "CertificationResult",
    "NextHopTable",
    "SynthesizedRouting",
    "TableSynthesizer",
    "register_synthesized",
]
