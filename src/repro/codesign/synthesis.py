"""Deadlock-free next-hop table synthesis — routing as a searchable genome.

PR 5 turned routing into data: :class:`~repro.noc.routing.TableRouting`
derives deterministic per-target next-hop tables, and
:func:`~repro.noc.deadlock.validate_deadlock_free` makes deadlock freedom a
checkable predicate.  This module closes the loop and makes tables
*synthesisable*:

* :class:`SynthesizedRouting` — an immutable
  :class:`~repro.noc.routing.RoutingAlgorithm` wrapping an explicit
  ``next_hops[target][tile]`` table, whose :attr:`cache_token` embeds a
  content digest so every distinct table keys its own shared
  :class:`~repro.eval.route_table.RouteTable` (and pooled pricing rebuilds
  bit-identical tables from the pickled contents);
* :class:`TableSynthesizer` — generators and mutation operators over such
  tables that preserve reachability **by construction**: every entry is a
  *minimal* next hop (one step closer to the target by BFS distance), so
  every route strictly decreases the distance and terminates at the target;
* :meth:`TableSynthesizer.certify` — the deadlock gate every table passes
  before anything prices mappings on it, with a repair-or-reject policy:
  ``"reject"`` surfaces the witness cycle of the channel dependency graph,
  ``"repair"`` reverts the entries feeding the witness cycle's links to a
  certified fallback table (BFS/XY on meshes) until the CDG is acyclic.

Synthesized routings are addressable through the routing registry via
:func:`register_synthesized`, so a winning table can be installed as a named
platform spec (``Platform(mesh, routing="my-table")``) like any shipped
routing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.noc.deadlock import Channel, DeadlockReport, validate_deadlock_free
from repro.noc.routing import (
    RoutingAlgorithm,
    available_routings,
    get_routing,
    register_routing,
)
from repro.noc.topology import Topology
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng

#: A per-target next-hop table: ``table[target][tile]`` is the tile the
#: header steps to next on its way to ``target`` (``-1`` on the diagonal and
#: for unreachable pairs).
NextHopTable = Tuple[Tuple[int, ...], ...]

#: Registry specs the synthesizer seeds its initial tables from, in order.
DEFAULT_SEED_SPECS: Tuple[str, ...] = (
    "xy",
    "yx",
    "west-first",
    "negative-first",
    "table",
)

#: Default certification policy (see :meth:`TableSynthesizer.certify`).
DEFAULT_POLICY = "repair"

_POLICIES = ("reject", "repair")

#: How many witness-guided revert rounds a repair attempts before falling
#: back to the certified seed table wholesale.
_MAX_REPAIR_ROUNDS = 8


class SynthesizedRouting(RoutingAlgorithm):
    """A routing algorithm defined by an explicit per-target next-hop table.

    Parameters
    ----------
    next_hops:
        ``next_hops[target][tile]`` — the next tile on the route from
        ``tile`` to ``target`` (``-1`` marks the diagonal and unreachable
        pairs).  Rows are copied into immutable tuples.

    Notes
    -----
    Instances are stateless and deterministic, so they satisfy the
    :class:`~repro.noc.routing.RoutingAlgorithm` contract and can share
    process-wide route tables.  The :attr:`cache_token` embeds a SHA-256
    digest of the table contents — two instances route identically exactly
    when their tokens agree, which is what lets the co-design engine key
    evaluation contexts (and the route-table cache) per table.
    """

    name = "synthesized"

    def __init__(self, next_hops: Sequence[Sequence[int]]) -> None:
        table = tuple(tuple(int(hop) for hop in row) for row in next_hops)
        if not table:
            raise ConfigurationError("next-hop table must not be empty")
        size = len(table)
        for target, row in enumerate(table):
            if len(row) != size:
                raise ConfigurationError(
                    f"next-hop row for target {target} has {len(row)} entries; "
                    f"expected one per tile ({size})"
                )
            for tile, hop in enumerate(row):
                if hop >= size:
                    raise ConfigurationError(
                        f"next hop {hop} of tile {tile} towards target "
                        f"{target} is outside the {size}-tile table"
                    )
        self._next_hops = table
        digest = hashlib.sha256(repr(table).encode("ascii")).hexdigest()
        self._digest = digest[:16]

    @property
    def next_hops(self) -> NextHopTable:
        """The immutable ``[target][tile]`` next-hop table."""
        return self._next_hops

    @property
    def num_tiles(self) -> int:
        """Number of tiles the table covers."""
        return len(self._next_hops)

    @property
    def digest(self) -> str:
        """Content digest identifying the table (hex, 16 chars)."""
        return self._digest

    @property
    def cache_token(self) -> Tuple:
        """Content-addressed identity: equal tables share route caches."""
        return (type(self).__module__, type(self).__qualname__, self._digest)

    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """The table route from *source* to *target*, endpoints included."""
        if topology.num_tiles != len(self._next_hops):
            raise ConfigurationError(
                f"next-hop table covers {len(self._next_hops)} tiles but "
                f"{topology} has {topology.num_tiles}"
            )
        for tile in (source, target):
            if not topology.contains(tile):
                raise ConfigurationError(f"tile {tile} outside {topology}")
        if source == target:
            return [source]
        row = self._next_hops[target]
        path = [source]
        current = source
        limit = len(row)
        while current != target:
            step = row[current]
            if step < 0:
                raise ConfigurationError(
                    f"no route from tile {source} to tile {target} in the "
                    f"synthesized table {self._digest}"
                )
            path.append(step)
            current = step
            if len(path) > limit:
                raise ConfigurationError(
                    f"routing loop from tile {source} to tile {target} in "
                    f"the synthesized table {self._digest}"
                )
        return path

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SynthesizedRouting):
            return NotImplemented
        return self._next_hops == other._next_hops

    def __hash__(self) -> int:
        return hash(self._next_hops)

    def __repr__(self) -> str:
        return f"SynthesizedRouting(digest={self._digest!r})"


def register_synthesized(
    name: str, routing: SynthesizedRouting, overwrite: bool = False
) -> None:
    """Install a synthesized table in the routing registry under *name*.

    The registered factory returns the (immutable) instance itself, so
    ``Platform(mesh, routing=name)`` resolves to the exact table —
    addressable end to end like the shipped specs.
    """
    register_routing(name, lambda: routing, overwrite=overwrite)


@dataclass(frozen=True)
class CertificationResult:
    """Outcome of gating one table through the deadlock validator.

    Attributes
    ----------
    routing:
        The certified routing — ``None`` exactly when :attr:`certified` is
        False (the table was rejected).
    report:
        The final :class:`~repro.noc.deadlock.DeadlockReport` (of the
        certified table, or of the rejected one).
    certified:
        Whether a deadlock-free routing came out of the gate.
    repaired:
        Whether the certified table differs from the submitted one (repair
        policy reverted entries).
    witness:
        The first witness cycle encountered (empty when the submitted table
        was already deadlock-free) — the closed channel-dependency loop the
        validator found, surfaced for diagnostics and property tests.
    """

    routing: Optional[SynthesizedRouting]
    report: DeadlockReport
    certified: bool
    repaired: bool
    witness: Tuple[Channel, ...] = ()


class TableSynthesizer:
    """Generator and mutator of reachability-preserving next-hop tables.

    Parameters
    ----------
    topology:
        The fabric tables are synthesised for (any
        :class:`~repro.noc.topology.Topology`).
    seed_specs:
        Routing-registry specs the seed tables are materialised from;
        specs that do not apply to the topology (e.g. turn models on a
        torus) or fail the deadlock gate are skipped.  At least one seed
        must certify — it becomes the repair fallback.

    Notes
    -----
    All generated and mutated entries are *minimal*: a next hop is only ever
    a neighbour one BFS step closer to the target, so synthesized tables
    route every reachable pair by construction (distance strictly decreases
    along every route).  Deadlock freedom is **not** guaranteed by
    minimality — arbitrary minimal tables mix turns freely — which is
    exactly what :meth:`certify` gates.
    """

    def __init__(
        self,
        topology: Topology,
        seed_specs: Sequence[str] = DEFAULT_SEED_SPECS,
    ) -> None:
        self.topology = topology
        n = topology.num_tiles
        out = [list(topology.neighbours(index)) for index in topology.tiles()]
        incoming: List[List[int]] = [[] for _ in range(n)]
        for index, neighbours in enumerate(out):
            for neighbour in neighbours:
                incoming[neighbour].append(index)
        # distance[target][tile] and the per-(target, tile) minimal next-hop
        # choices, in the topology's neighbour order (the tie-break contract
        # that makes choice 0 reproduce BFS TableRouting).
        self._choices: List[List[Tuple[int, ...]]] = []
        for target in range(n):
            distance = [-1] * n
            distance[target] = 0
            frontier = [target]
            while frontier:
                next_frontier: List[int] = []
                for tile in frontier:
                    for predecessor in incoming[tile]:
                        if distance[predecessor] < 0:
                            distance[predecessor] = distance[tile] + 1
                            next_frontier.append(predecessor)
                frontier = next_frontier
            rows: List[Tuple[int, ...]] = []
            for tile in range(n):
                if tile == target or distance[tile] < 0:
                    rows.append(())
                    continue
                rows.append(
                    tuple(
                        neighbour
                        for neighbour in out[tile]
                        if distance[neighbour] == distance[tile] - 1
                    )
                )
            self._choices.append(rows)
        self._mutable: Tuple[Tuple[int, int], ...] = tuple(
            (target, tile)
            for target in range(n)
            for tile in range(n)
            if len(self._choices[target][tile]) > 1
        )
        self._seed_tables: Dict[str, NextHopTable] = {}
        self._fallback: Optional[NextHopTable] = None
        for spec in seed_specs:
            if spec not in available_routings():
                continue
            try:
                table = self.materialise(get_routing(spec))
                result = self.certify(table, policy="reject")
            except ConfigurationError:
                continue
            if not result.certified:
                continue
            self._seed_tables[spec] = table
            if self._fallback is None:
                self._fallback = table
        if self._fallback is None:
            raise ConfigurationError(
                f"no seed routing of {tuple(seed_specs)} certifies "
                f"deadlock-free on {topology}; cannot synthesise tables "
                f"without a repair fallback"
            )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    def materialise(self, routing: RoutingAlgorithm) -> NextHopTable:
        """The next-hop table of an existing routing over the topology.

        Entries outside the minimal choice set (a non-minimal routing) are
        clamped to the first minimal next hop, preserving the synthesizer's
        reachability-by-construction invariant.
        """
        n = self.topology.num_tiles
        table: List[List[int]] = [[-1] * n for _ in range(n)]
        for target in range(n):
            for tile in range(n):
                if tile == target:
                    continue
                choices = self._choices[target][tile]
                if not choices:
                    continue
                hop = routing.route(self.topology, tile, target)[1]
                table[target][tile] = hop if hop in choices else choices[0]
        return tuple(tuple(row) for row in table)

    def seed_tables(self) -> Dict[str, NextHopTable]:
        """The certified seed tables, keyed by their registry spec."""
        return dict(self._seed_tables)

    def random_table(self, rng: RandomSource = None) -> NextHopTable:
        """A uniformly random minimal table (reachable by construction)."""
        generator = ensure_rng(rng)
        n = self.topology.num_tiles
        table: List[List[int]] = [[-1] * n for _ in range(n)]
        for target in range(n):
            for tile in range(n):
                if tile == target:
                    continue
                choices = self._choices[target][tile]
                if not choices:
                    continue
                table[target][tile] = choices[
                    int(generator.integers(len(choices)))
                ]
        return tuple(tuple(row) for row in table)

    def mutate(
        self,
        table: NextHopTable,
        rng: RandomSource = None,
        mutations: int = 1,
    ) -> NextHopTable:
        """Re-point up to *mutations* entries at alternative minimal hops.

        Each mutation picks a ``(target, tile)`` pair with more than one
        minimal next hop and switches the entry to a different one, so the
        result stays reachability-preserving.  Topologies with no such pair
        (a 1×n chain) return the table unchanged.
        """
        if mutations < 1:
            raise ConfigurationError(
                f"mutations must be positive, got {mutations}"
            )
        if not self._mutable:
            return table
        generator = ensure_rng(rng)
        rows = [list(row) for row in table]
        for _ in range(mutations):
            target, tile = self._mutable[
                int(generator.integers(len(self._mutable)))
            ]
            choices = self._choices[target][tile]
            alternatives = tuple(
                choice for choice in choices if choice != rows[target][tile]
            )
            rows[target][tile] = alternatives[
                int(generator.integers(len(alternatives)))
            ]
        return tuple(tuple(row) for row in rows)

    # ------------------------------------------------------------------
    # The deadlock gate
    # ------------------------------------------------------------------
    def certify(
        self, table: NextHopTable, policy: str = DEFAULT_POLICY
    ) -> CertificationResult:
        """Gate *table* through the deadlock validator before any pricing.

        Parameters
        ----------
        table:
            The candidate next-hop table.
        policy:
            ``"reject"`` — a cyclic channel dependency graph rejects the
            table, surfacing the witness cycle; ``"repair"`` — entries
            feeding the witness cycle's links are reverted to the certified
            fallback table round by round, falling back wholesale when no
            entry reverts or when :data:`_MAX_REPAIR_ROUNDS` rounds are
            exhausted, and the repaired table re-enters the gate.  Repair
            therefore always certifies (the fallback itself is certified
            at construction).

        Returns
        -------
        CertificationResult
            Always carries the final :class:`~repro.noc.deadlock.DeadlockReport`;
            ``routing`` is set exactly when the gate passed.
        """
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown certification policy {policy!r}; "
                f"expected one of {_POLICIES}"
            )
        routing = SynthesizedRouting(table)
        report = validate_deadlock_free(
            self.topology, routing, raise_on_cycle=False
        )
        if report.deadlock_free:
            return CertificationResult(
                routing=routing, report=report, certified=True, repaired=False
            )
        first_witness = report.cycle
        if policy == "reject":
            return CertificationResult(
                routing=None,
                report=report,
                certified=False,
                repaired=False,
                witness=first_witness,
            )
        fallback = self._fallback
        assert fallback is not None  # constructor guarantees a fallback
        rows = [list(row) for row in table]
        for round_index in range(_MAX_REPAIR_ROUNDS):
            cycle_links = set(report.cycle)
            reverted = False
            for target in range(len(rows)):
                row = rows[target]
                for tile, hop in enumerate(row):
                    if hop < 0:
                        continue
                    if (tile, hop) in cycle_links and hop != fallback[target][tile]:
                        row[tile] = fallback[target][tile]
                        reverted = True
            if not reverted:
                # The witness survives on fallback entries alone; only the
                # full fallback (certified at construction) can clear it.
                rows = [list(row) for row in fallback]
            candidate = tuple(tuple(row) for row in rows)
            routing = SynthesizedRouting(candidate)
            report = validate_deadlock_free(
                self.topology, routing, raise_on_cycle=False
            )
            if report.deadlock_free:
                return CertificationResult(
                    routing=routing,
                    report=report,
                    certified=True,
                    repaired=True,
                    witness=first_witness,
                )
        # Witness-guided reverts are monotone (entries only ever move toward
        # the fallback) but a large mesh can surface more distinct cycles
        # than there are rounds; when the budget runs out, revert wholesale
        # to the fallback, which is certified by construction.
        routing = SynthesizedRouting(fallback)
        report = validate_deadlock_free(
            self.topology, routing, raise_on_cycle=False
        )
        if report.deadlock_free:
            return CertificationResult(
                routing=routing,
                report=report,
                certified=True,
                repaired=True,
                witness=first_witness,
            )
        return CertificationResult(  # pragma: no cover - defensive
            routing=None,
            report=report,
            certified=False,
            repaired=True,
            witness=first_witness,
        )


__all__ = [
    "NextHopTable",
    "DEFAULT_SEED_SPECS",
    "DEFAULT_POLICY",
    "SynthesizedRouting",
    "register_synthesized",
    "CertificationResult",
    "TableSynthesizer",
]
