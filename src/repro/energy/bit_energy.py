"""Bit-energy model — equations (1) and (2) of the paper.

``EBit`` is the dynamic energy one bit dissipates when traversing the NoC.
Equation (1) decomposes it into the router component ``ERbit``, the inter-tile
link component ``ELbit`` (horizontal and vertical links are assumed equal for
square tiles) and the local core-link component ``ECbit``.  Equation (2)
generalises it to a route through ``K`` routers:

    EBit_ij = K x ERbit + (K - 1) x ELbit

The paper neglects ``ECbit`` for large tiles; the functions below accept an
``include_local`` flag so the local links can be accounted for when a
technology provides a non-zero ``ECbit``.
"""

from __future__ import annotations

from repro.energy.technology import Technology
from repro.utils.errors import ConfigurationError


def bit_energy_per_hop(technology: Technology, vertical: bool = False) -> float:
    """``EBit`` of equation (1): energy of one bit crossing one router and one link.

    The *vertical* flag exists for completeness; with square tiles
    ``ELHbit == ELVbit`` and the flag has no effect.
    """
    del vertical  # square tiles: horizontal and vertical links are identical
    return technology.e_rbit + technology.e_lbit + technology.e_cbit


def bit_energy_route(
    technology: Technology,
    hop_count: int,
    include_local: bool = True,
) -> float:
    """``EBit_ij`` of equation (2): energy of one bit traversing *hop_count* routers.

    Parameters
    ----------
    technology:
        Per-bit energy parameters.
    hop_count:
        ``K`` — number of routers on the route (source and target routers
        included), at least 1.
    include_local:
        When True, the two local core-router links (injection at the source
        tile, ejection at the target tile) contribute ``2 x ECbit``.  The
        paper neglects this term; technologies with ``e_cbit == 0`` make the
        flag irrelevant.
    """
    if hop_count < 1:
        raise ConfigurationError(
            f"a route traverses at least one router, got hop_count={hop_count}"
        )
    energy = hop_count * technology.e_rbit + (hop_count - 1) * technology.e_lbit
    if include_local:
        energy += 2 * technology.e_cbit
    return energy


__all__ = ["bit_energy_per_hop", "bit_energy_route"]
