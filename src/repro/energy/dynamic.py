"""Dynamic (switching) energy — equations (3) and (4) of the paper.

Dynamic energy is proportional to the traffic crossing each router and link.
For CWM the traffic is the per-flow bit volume of the CWG (equation 3); for
CDCM it is the per-packet bit volume of the CDCG (equation 4).  Both models
estimate the *same* dynamic energy for a given mapping — the difference
between them is the ability to estimate execution time and hence static
energy, not the dynamic term.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping as TypingMapping, Union

from repro.energy.bit_energy import bit_energy_route
from repro.energy.technology import Technology
from repro.graphs.cwg import CWG
from repro.noc.resources import (
    LinkResource,
    LocalLinkResource,
    Resource,
    RouterResource,
)
from repro.utils.errors import MappingError

if TYPE_CHECKING:  # pragma: no cover - imported for type checking only
    from repro.noc.platform import Platform
    from repro.noc.scheduler import ScheduleResult


def _assignments(mapping: Union["TypingMapping[str, int]", object]) -> Dict[str, int]:
    """Accept either a plain dict or a :class:`repro.core.mapping.Mapping`."""
    if hasattr(mapping, "assignments"):
        return dict(mapping.assignments())
    return dict(mapping)  # type: ignore[arg-type]


def communication_dynamic_energy(
    bits: int,
    hop_count: int,
    technology: Technology,
    include_local: bool = True,
) -> float:
    """Dynamic energy of one communication of *bits* bits over *hop_count* routers.

    This is ``w_ab x EBit_ij`` (CWM) or ``w_abq x EBit_ij`` (CDCM, per packet).
    """
    return bits * bit_energy_route(technology, hop_count, include_local)


def cwm_dynamic_energy(
    cwg: CWG,
    mapping: Union["TypingMapping[str, int]", object],
    platform: Platform,
    include_local: bool = True,
) -> float:
    """``EDyNoC`` under CWM (equation 3) for a given mapping.

    Sums, over every CWG edge, the edge's bit volume multiplied by the
    per-bit energy of the XY route between the tiles its endpoints are mapped
    to.
    """
    tiles = _assignments(mapping)
    technology = platform.technology
    total = 0.0
    for comm in cwg.communications():
        try:
            source_tile = tiles[comm.source]
            target_tile = tiles[comm.target]
        except KeyError as exc:
            raise MappingError(
                f"mapping does not place core {exc.args[0]!r} of CWG {cwg.name!r}"
            ) from exc
        hops = platform.hop_count(source_tile, target_tile)
        total += communication_dynamic_energy(
            comm.bits, hops, technology, include_local
        )
    return total


def cdcm_dynamic_energy(
    schedule: ScheduleResult,
    technology: Technology,
    include_local: bool = True,
) -> float:
    """``EDyNoC`` under CDCM (equation 4) from a schedule result.

    Sums, over every packet, the packet's bit volume multiplied by the per-bit
    energy of its route.  For a common application this equals the CWM value
    of the same mapping — both count the same bits over the same routes.
    """
    total = 0.0
    for packet_schedule in schedule.packet_schedules.values():
        total += communication_dynamic_energy(
            packet_schedule.packet.bits,
            packet_schedule.hop_count,
            technology,
            include_local,
        )
    return total


def dynamic_energy_breakdown(
    schedule: ScheduleResult,
    technology: Technology,
) -> Dict[Resource, float]:
    """Per-resource dynamic energy, from the schedule's cost-variable lists.

    Routers dissipate ``ERbit`` per bit, inter-router links ``ELbit`` per bit,
    local core links ``ECbit`` per bit.  Summing the returned values gives the
    same total as :func:`cdcm_dynamic_energy` (with ``include_local=True``).
    """
    breakdown: Dict[Resource, float] = {}
    for resource, occupations in schedule.occupations.items():
        bits = sum(o.bits for o in occupations)
        if isinstance(resource, RouterResource):
            per_bit = technology.e_rbit
        elif isinstance(resource, LinkResource):
            per_bit = technology.e_lbit
        elif isinstance(resource, LocalLinkResource):
            per_bit = technology.e_cbit
        else:  # pragma: no cover - exhaustive over Resource union
            raise TypeError(f"unknown resource type {type(resource).__name__}")
        breakdown[resource] = bits * per_bit
    return breakdown


__all__ = [
    "communication_dynamic_energy",
    "cwm_dynamic_energy",
    "cdcm_dynamic_energy",
    "dynamic_energy_breakdown",
]
