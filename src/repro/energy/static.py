"""Static (leakage) power and energy — equations (5) and (9) of the paper.

Static power comes from leakage current and is proportional to the number of
gates; at the NoC level the paper models it as the router leakage ``PSRouter``
multiplied by the number of tiles (equation 5).  Static *energy* is that power
integrated over the application execution time (equation 9) — which is why
only a model that can estimate ``texec`` (CDCM) can estimate it at all.
"""

from __future__ import annotations

from repro.energy.technology import Technology
from repro.utils.errors import ConfigurationError


def noc_static_power(technology: Technology, num_tiles: int) -> float:
    """``PstNoC = n x PSRouter`` (equation 5), in pJ/ns.

    Parameters
    ----------
    technology:
        Provides the per-router leakage power ``PSRouter``.
    num_tiles:
        ``n`` — number of tiles (routers) of the NoC.
    """
    if num_tiles <= 0:
        raise ConfigurationError(f"number of tiles must be positive, got {num_tiles}")
    return num_tiles * technology.router_static_power


def noc_static_energy(
    technology: Technology, num_tiles: int, execution_time: float
) -> float:
    """``EstNoC = PstNoC x texec`` (equation 9), in pJ.

    Parameters
    ----------
    execution_time:
        Application execution time ``texec`` in nanoseconds, as produced by
        the CDCM scheduler.
    """
    if execution_time < 0:
        raise ConfigurationError(
            f"execution time must be non-negative, got {execution_time}"
        )
    return noc_static_power(technology, num_tiles) * execution_time


__all__ = ["noc_static_power", "noc_static_energy"]
