"""Technology descriptions: per-bit energies and router leakage power.

The paper evaluates its energy model for two CMOS processes:

* **0.35 um** — leakage is negligible, so static energy is a vanishing share
  of NoC energy and CWM/CDCM mappings consume almost the same energy
  (ECS column "0.35" of Table 2 is below 1 %);
* **0.07 um** — leakage is a significant share of total energy (the paper,
  citing Duarte et al. [8], puts static consumption at up to ~20 % of total
  in new technologies), so the shorter execution times of CDCM mappings
  translate into ~20 % energy savings (ECS column "0.07").

The absolute per-bit energies of the original work come from electrical
simulation of a specific router implementation and are not published; the
presets below are calibrated substitutes (see DESIGN.md): the dynamic per-bit
energies follow published switch-fabric analyses in order of magnitude, and
the router leakage power is chosen so that the static share of NoC energy for
the benchmark suite lands near 1 % (0.35 um) and in the tens of percent
(0.07 um).  All paper claims being *relative* (CDCM vs CWM), only this split
matters for reproducing the shape of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class Technology:
    """Per-technology energy parameters.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports).
    feature_size_um:
        Process feature size in micrometres (informational).
    e_rbit:
        ``ERbit`` — dynamic energy dissipated by one bit traversing one router
        (buffers, crossbar, control), in picojoules per bit.
    e_lbit:
        ``ELbit`` — dynamic energy dissipated by one bit traversing one
        inter-tile link (horizontal and vertical links are assumed equal, as
        the paper does for square tiles), in picojoules per bit.
    e_cbit:
        ``ECbit`` — dynamic energy of one bit on the local link between a
        router and its IP core.  Negligible for large tiles; kept for
        completeness and ablations.
    router_static_power:
        ``PSRouter`` — leakage power of one router, in picojoules per
        nanosecond (equivalently milliwatts).  NoC static power is
        ``n x PSRouter`` (equation 5).
    """

    name: str
    feature_size_um: float
    e_rbit: float
    e_lbit: float
    e_cbit: float
    router_static_power: float

    def __post_init__(self) -> None:
        if self.feature_size_um <= 0:
            raise ConfigurationError(
                f"feature size must be positive, got {self.feature_size_um}"
            )
        for label, value in (
            ("e_rbit", self.e_rbit),
            ("e_lbit", self.e_lbit),
            ("e_cbit", self.e_cbit),
            ("router_static_power", self.router_static_power),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be non-negative, got {value}")

    @property
    def bit_energy_single_hop(self) -> float:
        """``EBit`` of equation (1): one router plus one link plus local link."""
        return self.e_rbit + self.e_lbit + self.e_cbit

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: ERbit={self.e_rbit} pJ/bit, ELbit={self.e_lbit} pJ/bit, "
            f"ECbit={self.e_cbit} pJ/bit, PSRouter={self.router_static_power} pJ/ns"
        )


#: Technology used by the paper's worked example (Section 4.1):
#: ``ERbit = ELbit = 1e-12 J/bit`` and ``PstNoC = 0.1e-12 J/ns`` for the 2x2
#: NoC, i.e. 0.025 pJ/ns per router.  ECbit is ignored, as in the example.
TECH_PAPER_EXAMPLE = Technology(
    name="paper-example",
    feature_size_um=0.35,
    e_rbit=1.0,
    e_lbit=1.0,
    e_cbit=0.0,
    router_static_power=0.025,
)

#: Mature 0.35 um process: leakage is negligible relative to switching energy
#: (the static share of NoC energy stays around or below one percent for the
#: benchmark suite, matching the near-zero ECS column of Table 2).
TECH_0_35UM = Technology(
    name="0.35um",
    feature_size_um=0.35,
    e_rbit=1.10,
    e_lbit=0.90,
    e_cbit=0.05,
    router_static_power=0.02,
)

#: Deep-submicron 0.07 um process: switching energy per bit drops by roughly
#: an order of magnitude, while leakage per router grows to a significant
#: share (tens of percent) of total NoC energy for the benchmark suite — the
#: regime in which shorter execution times translate into real energy savings.
TECH_0_07UM = Technology(
    name="0.07um",
    feature_size_um=0.07,
    e_rbit=0.16,
    e_lbit=0.12,
    e_cbit=0.01,
    router_static_power=1.2,
)


def scale_static_power(technology: Technology, factor: float) -> Technology:
    """Return a copy of *technology* with its leakage power scaled by *factor*.

    Used by the ablation benches to sweep the static/dynamic split and show
    how the ECS metric of Table 2 depends on it.
    """
    if factor < 0:
        raise ConfigurationError(f"scale factor must be non-negative, got {factor}")
    return replace(
        technology,
        name=f"{technology.name}(leakage x{factor:g})",
        router_static_power=technology.router_static_power * factor,
    )


__all__ = [
    "Technology",
    "TECH_PAPER_EXAMPLE",
    "TECH_0_35UM",
    "TECH_0_07UM",
    "scale_static_power",
]
