"""Total NoC energy — equation (10) of the paper, plus reporting helpers.

``ENoC(CDCM) = EstNoC + EDyNoC(CDCM)``: only the CDCM model, which knows the
application execution time, can add the static term.  For CWM the total is the
dynamic term alone (the model simply cannot see the rest), which is exactly
the blind spot the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.energy.dynamic import cdcm_dynamic_energy, cwm_dynamic_energy
from repro.energy.static import noc_static_energy
from repro.energy.technology import Technology
from repro.graphs.cwg import CWG
from repro.utils.units import format_energy, format_time

if TYPE_CHECKING:  # pragma: no cover - imported for type checking only
    from repro.noc.platform import Platform
    from repro.noc.scheduler import ScheduleResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic + static decomposition of NoC energy for one evaluated mapping.

    Attributes
    ----------
    dynamic:
        ``EDyNoC`` in pJ.
    static:
        ``EstNoC`` in pJ (zero when the model cannot estimate it, i.e. CWM).
    execution_time:
        ``texec`` in ns (``None`` for CWM, which cannot estimate it).
    technology_name:
        Name of the technology the figures were computed for.
    """

    dynamic: float
    static: float
    execution_time: float | None
    technology_name: str

    @property
    def total(self) -> float:
        """``ENoC`` in pJ."""
        return self.dynamic + self.static

    @property
    def static_fraction(self) -> float:
        """Share of static energy in the total (0 when total is 0)."""
        total = self.total
        return self.static / total if total > 0 else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        time_part = (
            f", texec={format_time(self.execution_time)}"
            if self.execution_time is not None
            else ""
        )
        return (
            f"[{self.technology_name}] total={format_energy(self.total)} "
            f"(dynamic={format_energy(self.dynamic)}, "
            f"static={format_energy(self.static)}, "
            f"{self.static_fraction:.1%} static{time_part})"
        )


def total_energy_cdcm(
    schedule: ScheduleResult,
    platform: Platform,
    technology: Technology | None = None,
    include_local: bool = True,
) -> EnergyBreakdown:
    """``ENoC`` under CDCM (equation 10) for an already-computed schedule.

    Parameters
    ----------
    schedule:
        Result of :meth:`repro.noc.scheduler.CdcmScheduler.schedule`.
    platform:
        Provides the number of tiles; its technology is used unless
        *technology* overrides it (useful to re-price one schedule under
        several technologies, as Table 2 does with its two ECS columns).
    """
    tech = technology or platform.technology
    dynamic = cdcm_dynamic_energy(schedule, tech, include_local)
    static = noc_static_energy(tech, platform.num_tiles, schedule.execution_time)
    return EnergyBreakdown(
        dynamic=dynamic,
        static=static,
        execution_time=schedule.execution_time,
        technology_name=tech.name,
    )


def total_energy_cwm(
    cwg: CWG,
    mapping,
    platform: Platform,
    technology: Technology | None = None,
    include_local: bool = True,
) -> EnergyBreakdown:
    """``ENoC`` under CWM: the dynamic term only (equation 3).

    The static term is reported as zero — not because the NoC does not leak,
    but because the CWM abstraction has no execution time to integrate the
    leakage power over.  That modelling blind spot is the paper's point.
    """
    tech = technology or platform.technology
    dynamic = cwm_dynamic_energy(cwg, mapping, platform, include_local)
    return EnergyBreakdown(
        dynamic=dynamic,
        static=0.0,
        execution_time=None,
        technology_name=tech.name,
    )


__all__ = ["EnergyBreakdown", "total_energy_cdcm", "total_energy_cwm"]
