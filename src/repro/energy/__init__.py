"""Energy models: bit energy, dynamic energy, static energy, technologies.

Implements Section 3.2 of the paper:

* equation (1)–(2): the *bit energy* ``EBit`` decomposition into router energy
  ``ERbit``, inter-tile link energy ``ELbit`` and local (core) link energy
  ``ECbit``, and the energy of one bit traversing ``K`` routers;
* equation (3)–(4): total NoC dynamic energy for CWM and CDCM;
* equation (5) and (9): NoC static power and static energy;
* equation (10): total (static + dynamic) NoC energy under CDCM.

Technology presets for a 0.35 um and a 0.07 um process are provided in
:mod:`repro.energy.technology`; they are calibrated so the *static* share of
NoC energy is negligible for the older process and significant (tens of
percent) for the deep-submicron one, which is the property the paper's
Table 2 exercises.
"""

from repro.energy.technology import (
    Technology,
    TECH_0_35UM,
    TECH_0_07UM,
    TECH_PAPER_EXAMPLE,
    scale_static_power,
)
from repro.energy.bit_energy import bit_energy_per_hop, bit_energy_route
from repro.energy.dynamic import (
    communication_dynamic_energy,
    cwm_dynamic_energy,
    cdcm_dynamic_energy,
    dynamic_energy_breakdown,
)
from repro.energy.static import noc_static_power, noc_static_energy
from repro.energy.totals import EnergyBreakdown, total_energy_cdcm, total_energy_cwm

__all__ = [
    "Technology",
    "TECH_0_35UM",
    "TECH_0_07UM",
    "TECH_PAPER_EXAMPLE",
    "scale_static_power",
    "bit_energy_per_hop",
    "bit_energy_route",
    "communication_dynamic_energy",
    "cwm_dynamic_energy",
    "cdcm_dynamic_energy",
    "dynamic_energy_breakdown",
    "noc_static_power",
    "noc_static_energy",
    "EnergyBreakdown",
    "total_energy_cdcm",
    "total_energy_cwm",
]
