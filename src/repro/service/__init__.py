"""Mapping-as-a-service: persistent pricing across runs and processes.

The evaluation engine (:mod:`repro.eval`) makes pricing fast *within* one
context; this package makes it persistent *across* them.  Three layers, each
usable on its own:

* :mod:`repro.service.store` — :class:`~repro.service.store.ResultStore`, an
  on-disk, atomically written, versioned cache of priced
  :class:`~repro.core.metrics.MetricVector`s keyed by the full pricing
  identity (model + platform + workload content hash + mapping digest).  A
  candidate priced once — by any process, in any run — is never priced again.
* :mod:`repro.service.shm` —
  :class:`~repro.service.shm.SharedArrayBackend`, a process-pool backend
  that ships candidate batches to workers as one shared-memory ``(pop,
  cores)`` index array instead of pickled per-mapping dicts, with automatic
  fallback to the pickle path for batches the array protocol cannot express.
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the resident
  :class:`~repro.service.daemon.MappingDaemon` (warm route tables, warm
  kernels, warm memos, job queue) with an in-process
  :class:`~repro.service.client.ServiceBackend` that plugs into the ordinary
  ``backend=`` seam, and a Unix-socket
  :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.ServiceServer` pair (see the ``tools/serve``
  CLI) for external processes.

Everything is bit-identical to :class:`~repro.eval.parallel.SerialBackend`
by construction: store entries round-trip floats exactly, misses are priced
by the same chunk arithmetic, and results are reassembled in submission
order.  :class:`~repro.analysis.comparison.ComparisonConfig` keeps its
``backend`` knob at ``None``, so the reproduced paper tables never touch the
service.  See ``docs/service.md`` for the full tour.
"""

from repro.service.client import ServiceBackend, ServiceClient, ServiceServer
from repro.service.daemon import (
    DEFAULT_MAX_CONTEXTS,
    JOB_MODELS,
    EvalJob,
    JobResult,
    MappingDaemon,
)
from repro.service.shm import SharedArrayBackend, shared_memory_available
from repro.service.store import (
    STORE_VERSION,
    ResultStore,
    StoreCorruptionWarning,
    StoreStats,
    mapping_digest,
    platform_digest,
    scope_for_context,
    workload_digest,
)

__all__ = [
    "STORE_VERSION",
    "StoreCorruptionWarning",
    "StoreStats",
    "ResultStore",
    "mapping_digest",
    "platform_digest",
    "scope_for_context",
    "workload_digest",
    "SharedArrayBackend",
    "shared_memory_available",
    "ServiceBackend",
    "ServiceClient",
    "ServiceServer",
    "DEFAULT_MAX_CONTEXTS",
    "JOB_MODELS",
    "EvalJob",
    "JobResult",
    "MappingDaemon",
]
