"""Client-side entry points of the mapping service.

Two ways in, one pricing contract:

* :class:`ServiceBackend` — an in-process
  :class:`~repro.eval.parallel.BatchBackend` that drains the persistent
  :class:`~repro.service.store.ResultStore` before pricing: candidates whose
  ``(scope, mapping_digest)`` key is already stored are answered from the
  store, only the misses are priced (inline, or through a wrapped inner
  backend such as :class:`~repro.service.shm.SharedArrayBackend`), and newly
  priced vectors are written back.  It plugs into the ordinary ``backend=``
  seam of every evaluation context, so any search engine becomes
  store-accelerated without code changes.
* :class:`ServiceClient` / :class:`ServiceServer` — a small
  length-prefixed-pickle protocol over a Unix-domain socket, so external
  processes (the :mod:`tools.serve` CLI, long-running sweep scripts) can
  submit jobs to one resident :class:`~repro.service.daemon.MappingDaemon`
  and share its warm caches.

Stored vectors round-trip bit-exactly (see
:class:`~repro.service.store.ResultStore`), so a store hit is
indistinguishable from a recompute — the service's results are bit-identical
to :class:`~repro.eval.parallel.SerialBackend` whether a candidate was priced
this run, last run, or by another process.
"""

from __future__ import annotations

import pickle
import socket
import struct
import weakref
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.eval.parallel import BatchBackend
from repro.service.store import ResultStore, mapping_digest, scope_for_context
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-checking only, no runtime cycle
    from repro.service.daemon import MappingDaemon

#: Wire format: an 8-byte big-endian length prefix before each pickle frame.
_FRAME_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame (guards against a corrupt length prefix).
_MAX_FRAME_BYTES = 1 << 31


def _send_frame(sock: socket.socket, payload: Any) -> None:
    """Send one length-prefixed pickle frame over *sock*."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_FRAME_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"socket closed mid-frame ({remaining} of {count} bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Any:
    """Receive one length-prefixed pickle frame from *sock*."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    (length,) = _FRAME_HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ConnectionError(f"frame length {length} exceeds protocol bound")
    return pickle.loads(_recv_exact(sock, length))


class ServiceBackend(BatchBackend):
    """Store-draining batch backend: answer hits from the store, price misses.

    Wraps the ``backend=`` seam of
    :meth:`~repro.eval.context.EvaluationContext.evaluate_metrics_batch`:
    for each batch it digests the candidates, looks them up in the
    :class:`~repro.service.store.ResultStore`, prices only the misses
    (through *inner* when given, else inline via the context's own chunk
    pricer — the serial reference arithmetic) and persists what it priced.

    Parameters
    ----------
    store:
        The persistent result store to drain and refill.
    inner:
        Optional backend that prices the misses (e.g. a
        :class:`~repro.service.shm.SharedArrayBackend`); ``None`` prices
        inline.

    Notes
    -----
    The per-context scope digest is cached in a ``WeakKeyDictionary``, so
    repeated batches from one context do not re-hash the workload.  The
    :attr:`priced` / :attr:`store_hits` counters let callers assert warm-path
    behaviour (a warm weight sweep must show a ``priced`` delta of zero).
    """

    name = "service"

    def __init__(
        self, store: ResultStore, inner: Optional[BatchBackend] = None
    ) -> None:
        self.store = store
        self.inner = inner
        #: Candidates actually priced (store misses), cumulative.
        self.priced = 0
        #: Candidates answered from the store, cumulative.
        self.store_hits = 0
        self._scopes: "weakref.WeakKeyDictionary[Any, str]" = (
            weakref.WeakKeyDictionary()
        )

    def _scope(self, context: Any) -> str:
        scope = self._scopes.get(context)
        if scope is None:
            scope = scope_for_context(context)
            self._scopes[context] = scope
        return scope

    def evaluate_metrics(
        self, context: Any, mappings: Sequence[Any]
    ) -> List[Any]:
        """Metric vectors of *mappings*: store hits + freshly priced misses.

        Store lookups and pricing both preserve submission order, and misses
        run the same chunk pricer as
        :class:`~repro.eval.parallel.SerialBackend`, so the returned vectors
        are bit-identical to a recompute regardless of the hit pattern.
        """
        items = list(mappings)
        if not items:
            return []
        scope = self._scope(context)
        digests = [mapping_digest(item) for item in items]
        cached = self.store.get_many(scope, digests)
        miss_positions = [i for i, vector in enumerate(cached) if vector is None]
        self.store_hits += len(items) - len(miss_positions)
        if miss_positions:
            misses = [items[i] for i in miss_positions]
            if self.inner is not None:
                priced = self.inner.evaluate_metrics(context, misses)
            else:
                priced = list(context._compute_metrics_chunk(misses))
            self.priced += len(misses)
            self.store.put_many(
                scope,
                [
                    (digests[position], vector)
                    for position, vector in zip(miss_positions, priced)
                ],
            )
            for position, vector in zip(miss_positions, priced):
                cached[position] = vector
        return cached

    def evaluate(self, context: Any, mappings: Sequence[Any]) -> List[float]:
        """Scalar costs via :meth:`evaluate_metrics` + the context's weights.

        Scalarisation happens after the store lookup, so one stored component
        vector serves every weight view of the same candidate.
        """
        vectors = self.evaluate_metrics(context, mappings)
        return [context._scalarise(vector) for vector in vectors]

    def map(
        self, fn: Callable[..., Any], argslist: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Delegate generic tasks to the inner backend (serial when none).

        Coarse-grained work (annealing restarts, route-table shards) has no
        store key, so the service adds nothing — it just forwards.
        """
        if self.inner is not None:
            return self.inner.map(fn, argslist)
        return super().map(fn, argslist)

    def close(self) -> None:
        """Close the wrapped inner backend, if any (the store stays usable)."""
        if self.inner is not None:
            self.inner.close()

    def __repr__(self) -> str:
        return (
            f"ServiceBackend(store={self.store!r}, inner={self.inner!r}, "
            f"hits={self.store_hits}, priced={self.priced})"
        )


class ServiceServer:
    """Unix-domain-socket front of a resident :class:`MappingDaemon`.

    Accepts connections on *path* and serves one request frame per
    connection: a dict with an ``"op"`` key (``ping``, ``submit``, ``poll``,
    ``result``, ``stats``, ``shutdown``) answered by a dict with an ``"ok"``
    boolean.  Each connection is handled on its own thread, so a slow
    ``result`` wait never blocks a ``submit``.

    Parameters
    ----------
    daemon:
        The resident daemon jobs are forwarded to.
    path:
        Filesystem path of the Unix socket (unlinked and re-bound on start).
    """

    def __init__(self, daemon: "MappingDaemon", path: str) -> None:
        import os
        import threading

        self.daemon = daemon
        self.path = path
        if os.path.exists(path):
            os.unlink(path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen()
        self._running = True
        self._threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        import threading

        while self._running:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="service-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            request = _recv_frame(connection)
            response = self._handle(request)
            _send_frame(connection, response)
        except (ConnectionError, EOFError, OSError):
            pass
        finally:
            connection.close()

    def _handle(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "malformed request (no op)"}
        op = request["op"]
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "submit":
                job_id = self.daemon.submit(request["job"])
                return {"ok": True, "job_id": job_id}
            if op == "poll":
                return {"ok": True, "status": self.daemon.poll(request["job_id"])}
            if op == "result":
                result = self.daemon.result(
                    request["job_id"], timeout=request.get("timeout")
                )
                return {"ok": True, "result": result}
            if op == "stats":
                return {"ok": True, "stats": self.daemon.stats()}
            if op == "shutdown":
                self.stop()
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # surfaced to the client, not the server log
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def stop(self) -> None:
        """Stop accepting connections and unbind the socket (idempotent)."""
        import os

        if not self._running:
            return
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "listening" if self._running else "stopped"
        return f"ServiceServer(path={self.path!r}, {state})"


class ServiceClient:
    """Submit/poll/result access to a :class:`ServiceServer` socket.

    Connects per request (the protocol is one frame each way), so a client
    object is cheap, stateless and safe to share across threads.

    Parameters
    ----------
    path:
        Filesystem path of the server's Unix socket.
    timeout:
        Per-connection socket timeout in seconds (``None`` blocks forever —
        the default, since ``result`` legitimately waits for pricing).
    """

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        self.path = path
        self.timeout = timeout

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            if self.timeout is not None:
                sock.settimeout(self.timeout)
            sock.connect(self.path)
            _send_frame(sock, payload)
            response = _recv_frame(sock)
        finally:
            sock.close()
        if not isinstance(response, dict):
            raise ConfigurationError(
                f"malformed service response: {response!r}"
            )
        if not response.get("ok"):
            raise ConfigurationError(
                f"service error: {response.get('error', 'unknown')}"
            )
        return response

    def ping(self) -> bool:
        """``True`` when the server answers (raises on connection failure)."""
        return bool(self._request({"op": "ping"}).get("pong"))

    def submit(self, job: Any) -> str:
        """Enqueue an :class:`~repro.service.daemon.EvalJob`; returns its id."""
        return self._request({"op": "submit", "job": job})["job_id"]

    def poll(self, job_id: str) -> str:
        """Job status: ``"pending"``, ``"running"``, ``"done"`` or ``"error"``."""
        return self._request({"op": "poll", "job_id": job_id})["status"]

    def result(self, job_id: str, timeout: Optional[float] = None) -> Any:
        """Block until the job finishes; returns its
        :class:`~repro.service.daemon.JobResult` (re-raising job errors)."""
        return self._request(
            {"op": "result", "job_id": job_id, "timeout": timeout}
        )["result"]

    def stats(self) -> Dict[str, Any]:
        """The daemon's live statistics snapshot."""
        return self._request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the server to stop accepting connections."""
        self._request({"op": "shutdown"})

    def __repr__(self) -> str:
        return f"ServiceClient(path={self.path!r})"


__all__ = [
    "ServiceBackend",
    "ServiceClient",
    "ServiceServer",
]
