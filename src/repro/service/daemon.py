"""The resident evaluation daemon: mapping pricing as a service.

A :class:`MappingDaemon` owns everything that is expensive to build and cheap
to keep — the persistent :class:`~repro.service.store.ResultStore`, a pool of
worker processes (via any :class:`~repro.eval.parallel.BatchBackend`, by
default the shared-memory :class:`~repro.service.shm.SharedArrayBackend`) and
an LRU of *resident evaluation contexts*, each holding a warm
:class:`~repro.eval.route_table.RouteTable`, a bound
:class:`~repro.eval.vector.VectorizedCwmKernel` and a populated memo.  Jobs
(:class:`EvalJob`: a workload, a platform, a model and a batch of candidate
mappings) arrive on a queue, are matched to a resident context (or build one
on first sight), drained against the store through a
:class:`~repro.service.client.ServiceBackend` so only cache-miss candidates
are priced, and answered as :class:`JobResult`s carrying both the component
vectors and the requested scalarisation.

The daemon never changes a number: pricing goes through the same
``evaluate_metrics_batch`` seam as a plain context, the store round-trips
vectors bit-exactly, and scalarisation applies the same
:meth:`~repro.core.metrics.MetricVector.weighted_sum` arithmetic — so a job
result is bit-identical to a cold
:class:`~repro.eval.parallel.SerialBackend` run (pinned by
``tests/test_service.py``).
"""

from __future__ import annotations

import itertools
import queue
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.eval.parallel import BatchBackend
from repro.noc.platform import Platform
from repro.service.client import ServiceBackend
from repro.service.shm import SharedArrayBackend
from repro.service.store import (
    ResultStore,
    platform_digest,
    workload_digest,
)
from repro.utils.errors import ConfigurationError

#: Models a job may request.
JOB_MODELS = ("cwm", "cdcm")

#: How many resident contexts the daemon keeps warm by default.
DEFAULT_MAX_CONTEXTS = 8


@dataclass
class EvalJob:
    """One unit of service work: price a batch of candidates.

    Attributes
    ----------
    application:
        The workload — a :class:`~repro.graphs.cwg.CWG` for ``model="cwm"``
        or a :class:`~repro.graphs.cdcg.CDCG` (a CDCG is also accepted for
        CWM jobs and collapsed through
        :func:`~repro.graphs.convert.cdcg_to_cwg`).
    platform:
        Target architecture (topology, routing, technology, parameters).
    mappings:
        Candidate core-to-tile assignments to price.
    model:
        ``"cwm"`` or ``"cdcm"``.
    weights:
        Optional scalarisation weights for the returned ``costs``; ``None``
        uses the model's default view (CWM: dynamic energy; CDCM: energy).
        Weights never affect which vectors are priced or stored.
    include_local:
        Whether local core-router links contribute per-bit energy.
    label:
        Free-form tag echoed into the :class:`JobResult` (for sweep drivers
        correlating submissions with results).
    """

    application: Any
    platform: Platform
    mappings: Sequence[Union[Mapping, Dict[str, int]]]
    model: str = "cdcm"
    weights: Optional[Dict[str, float]] = None
    include_local: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.model not in JOB_MODELS:
            raise ConfigurationError(
                f"job model must be one of {JOB_MODELS}, got {self.model!r}"
            )


@dataclass(frozen=True)
class JobResult:
    """The priced answer to one :class:`EvalJob`.

    Attributes
    ----------
    job_id:
        Identifier assigned at submission.
    label:
        The job's echo tag.
    vectors:
        One :class:`~repro.core.metrics.MetricVector` per candidate, in
        submission order.
    costs:
        The vectors scalarised under the job's weight view (or the model
        default), in the same order.
    store_hits:
        Candidates of this job answered from the persistent store.
    priced:
        Candidates of this job actually priced (store misses after memo and
        batch dedup).
    elapsed:
        Wall-clock seconds the job spent executing (queue wait excluded).
    """

    job_id: str
    label: str
    vectors: Tuple[MetricVector, ...]
    costs: Tuple[float, ...]
    store_hits: int
    priced: int
    elapsed: float

    @property
    def hit_rate(self) -> float:
        """Fraction of this job's candidates answered without pricing."""
        total = len(self.vectors)
        return (total - self.priced) / total if total else 0.0


@dataclass
class _JobSlot:
    """Internal per-job bookkeeping (status, result, completion event)."""

    job: EvalJob
    status: str = "pending"
    result: Optional[JobResult] = None
    error: Optional[BaseException] = None
    done: threading.Event = field(default_factory=threading.Event)


class MappingDaemon:
    """Resident pricing daemon: warm contexts + persistent store + job queue.

    Parameters
    ----------
    store:
        The persistent result store; ``None`` creates a private store in a
        temporary directory that lives (and dies) with the daemon — handy
        for tests and one-shot sweeps, while long-running deployments pass a
        store rooted in a durable path.
    backend:
        Backend that prices store misses.  ``None`` with ``n_workers`` unset
        prices inline (serial reference arithmetic); ``None`` with
        ``n_workers`` set builds an owned
        :class:`~repro.service.shm.SharedArrayBackend` that is shut down
        with the daemon.  A caller-supplied backend is borrowed, never
        closed.
    n_workers:
        Pool size of the owned backend (ignored when *backend* is given).
    max_contexts:
        How many resident evaluation contexts the daemon keeps warm; least
        recently used contexts are dropped beyond this (their priced vectors
        survive in the store).

    Notes
    -----
    One worker thread drains the queue — jobs run strictly one at a time
    (parallelism lives *inside* a job, across the backend's process pool),
    which keeps resident-context access single-threaded and lock-free.  Use
    the daemon as a context manager, or call :meth:`close`, to release the
    thread, the owned pool and the owned store.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        backend: Optional[BatchBackend] = None,
        n_workers: Optional[int] = None,
        max_contexts: int = DEFAULT_MAX_CONTEXTS,
    ) -> None:
        if max_contexts < 1:
            raise ConfigurationError(
                f"max_contexts must be positive, got {max_contexts}"
            )
        self._owned_tempdir: Optional[tempfile.TemporaryDirectory] = None
        if store is None:
            self._owned_tempdir = tempfile.TemporaryDirectory(
                prefix="repro-service-"
            )
            store = ResultStore(self._owned_tempdir.name)
        self.store = store
        self._owned_backend: Optional[BatchBackend] = None
        if backend is None and n_workers is not None:
            backend = SharedArrayBackend(n_workers=n_workers)
            self._owned_backend = backend
        self.backend = backend
        self.service = ServiceBackend(store, inner=backend)
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[Tuple[str, str, str], Any]" = OrderedDict()
        self._slots: Dict[str, _JobSlot] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._jobs_done = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="mapping-daemon", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------
    def submit(self, job: EvalJob) -> str:
        """Enqueue *job*; returns its id (non-blocking)."""
        if self._closed:
            raise ConfigurationError("daemon is closed")
        if not isinstance(job, EvalJob):
            raise ConfigurationError(
                f"submit() takes an EvalJob, got {type(job).__name__}"
            )
        job_id = f"job-{next(self._ids)}"
        with self._lock:
            self._slots[job_id] = _JobSlot(job=job)
        self._queue.put(job_id)
        return job_id

    def poll(self, job_id: str) -> str:
        """Status of *job_id*: ``"pending"``, ``"running"``, ``"done"`` or ``"error"``."""
        return self._slot(job_id).status

    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until *job_id* completes and return its :class:`JobResult`.

        Re-raises the job's exception if it failed; raises
        :class:`~repro.utils.errors.ConfigurationError` on timeout.
        """
        slot = self._slot(job_id)
        if not slot.done.wait(timeout):
            raise ConfigurationError(
                f"job {job_id} did not complete within {timeout}s"
            )
        if slot.error is not None:
            raise slot.error
        assert slot.result is not None  # done + no error implies a result
        return slot.result

    def run(self, job: EvalJob) -> JobResult:
        """Submit *job* and wait for its result (the synchronous convenience)."""
        return self.result(self.submit(job))

    def stats(self) -> Dict[str, Any]:
        """Live daemon statistics: jobs, store counters, transport counters."""
        store_stats = self.store.stats
        payload: Dict[str, Any] = {
            "jobs_done": self._jobs_done,
            "jobs_queued": self._queue.qsize(),
            "resident_contexts": len(self._contexts),
            "priced": self.service.priced,
            "store_hits": self.service.store_hits,
            "store": {
                "hits": store_stats.hits,
                "misses": store_stats.misses,
                "hit_rate": store_stats.hit_rate,
                "writes": store_stats.writes,
                "evictions": store_stats.evictions,
                "corrupt_skipped": store_stats.corrupt_skipped,
            },
        }
        if isinstance(self.backend, SharedArrayBackend):
            payload["transport"] = {
                "shm_batches": self.backend.shm_batches,
                "pickle_batches": self.backend.pickle_batches,
            }
        return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker thread and release owned resources (idempotent).

        Queued jobs are drained before the stop sentinel is honoured; the
        owned backend (and its worker processes) and the owned temporary
        store directory are released.  Borrowed backends and stores are left
        untouched.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join()
        if self._owned_backend is not None:
            self._owned_backend.close()
        if self._owned_tempdir is not None:
            self._owned_tempdir.cleanup()
            self._owned_tempdir = None

    def __enter__(self) -> "MappingDaemon":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "running"
        return (
            f"MappingDaemon(contexts={len(self._contexts)}, "
            f"jobs_done={self._jobs_done}, {state})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _slot(self, job_id: str) -> _JobSlot:
        with self._lock:
            slot = self._slots.get(job_id)
        if slot is None:
            raise ConfigurationError(f"unknown job id {job_id!r}")
        return slot

    def _drain(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                break
            slot = self._slot(job_id)
            slot.status = "running"
            try:
                slot.result = self._execute(job_id, slot.job)
                slot.status = "done"
                self._jobs_done += 1
            except BaseException as exc:  # job errors answer the poller
                slot.error = exc
                slot.status = "error"
            finally:
                slot.done.set()

    def _context_for(self, job: EvalJob) -> Any:
        key = (
            job.model,
            workload_digest(job.application),
            platform_digest(job.platform, job.include_local),
        )
        context = self._contexts.get(key)
        if context is not None:
            self._contexts.move_to_end(key)
            return context
        context = self._build_context(job)
        self._contexts[key] = context
        while len(self._contexts) > self.max_contexts:
            self._contexts.popitem(last=False)
        return context

    def _build_context(self, job: EvalJob) -> Any:
        from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
        from repro.graphs.cdcg import CDCG
        from repro.graphs.cwg import CWG

        application = job.application
        if job.model == "cwm":
            if isinstance(application, CDCG):
                from repro.graphs.convert import cdcg_to_cwg

                application = cdcg_to_cwg(application)
            if not isinstance(application, CWG):
                raise ConfigurationError(
                    f"cwm jobs need a CWG or CDCG application, got "
                    f"{type(job.application).__name__}"
                )
            return CwmEvaluationContext(
                application, job.platform, include_local=job.include_local
            )
        if not isinstance(application, CDCG):
            raise ConfigurationError(
                f"cdcm jobs need a CDCG application, got "
                f"{type(job.application).__name__}"
            )
        return CdcmEvaluationContext(
            application, job.platform, include_local=job.include_local
        )

    def _execute(self, job_id: str, job: EvalJob) -> JobResult:
        started = time.perf_counter()
        context = self._context_for(job)
        service = self.service
        priced_before = service.priced
        hits_before = service.store_hits
        vectors = context.evaluate_metrics_batch(job.mappings, backend=service)
        weights = job.weights if job.weights is not None else context.weights
        costs = tuple(
            vector.weighted_sum(weights, strict=False) for vector in vectors
        )
        return JobResult(
            job_id=job_id,
            label=job.label,
            vectors=tuple(vectors),
            costs=costs,
            store_hits=service.store_hits - hits_before,
            priced=service.priced - priced_before,
            elapsed=time.perf_counter() - started,
        )


__all__ = [
    "DEFAULT_MAX_CONTEXTS",
    "JOB_MODELS",
    "EvalJob",
    "JobResult",
    "MappingDaemon",
]
