"""Shared-memory batch transport for process-pool pricing.

:class:`~repro.eval.parallel.ProcessPoolBackend` ships every candidate chunk
to its workers by pickling the ``Mapping`` objects — dict payloads whose
serialisation cost grows with population size and core count.  But a
population of mappings over one core set is exactly a ``(pop, cores)`` int64
array under the pinned :meth:`~repro.core.mapping.Mapping.to_index_array`
contract, and an array crosses the process boundary for free through
:mod:`multiprocessing.shared_memory`: the parent writes the population into
one shared segment, workers attach, slice their ``[start:stop)`` rows and
rebuild mappings locally with
:meth:`~repro.core.mapping.Mapping.from_index_array`.

:class:`SharedArrayBackend` implements that transport as a drop-in
:class:`~repro.eval.parallel.ProcessPoolBackend` subclass.  It is
*transport-only*: the worker prices through the same
``_compute_metrics_chunk`` as every other backend, chunks are reassembled in
submission order, and any batch the array protocol cannot express (mixed core
sets, assignment dicts) silently falls back to the pickling path — so results
stay bit-identical to :class:`~repro.eval.parallel.SerialBackend` by
construction (pinned by ``tests/test_service.py``).
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping import Mapping
from repro.eval.parallel import ProcessPoolBackend, _worker_context
from repro.eval.vector import population_to_array
from repro.utils.errors import ConfigurationError, MappingError

_PROBE_RESULT: Optional[bool] = None


def shared_memory_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works on this host.

    Probes once per process by creating (and immediately unlinking) a tiny
    segment; containers without a usable ``/dev/shm`` fail the probe and
    :class:`SharedArrayBackend` then falls back to pickle transport for every
    batch instead of erroring mid-search.
    """
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        try:
            segment = shared_memory.SharedMemory(create=True, size=8)
            segment.close()
            segment.unlink()
            _PROBE_RESULT = True
        except (OSError, ValueError):
            _PROBE_RESULT = False
    return _PROBE_RESULT


def _price_shm_chunk(
    token: int,
    payload: bytes,
    shm_name: str,
    pop: int,
    core_order: Tuple[str, ...],
    num_tiles: Optional[int],
    start: int,
    stop: int,
) -> List[Any]:
    """Worker task: price rows ``[start, stop)`` of a shared population array.

    Attaches to the named segment, copies its row slice out (so the segment
    can be closed before any pricing work), rebuilds ``Mapping`` objects
    under the pinned core order and prices them through the same
    ``_compute_metrics_chunk`` as the pickle path — transport changes,
    arithmetic does not.

    The attach registers the segment with the resource tracker (POSIX
    Pythons < 3.13 register unconditionally), but pool workers inherit the
    parent's tracker, whose name set is idempotent — the parent's
    ``unlink()`` removes the single entry, so workers neither unregister
    (which would double-remove and spam ``KeyError``) nor leak warnings.
    """
    segment = shared_memory.SharedMemory(name=shm_name)
    try:
        tiles = np.ndarray(
            (pop, len(core_order)), dtype=np.int64, buffer=segment.buf
        )
        rows = tiles[start:stop].copy()
        del tiles  # release the exported buffer before closing the mmap
    finally:
        segment.close()
    context = _worker_context(token, payload)
    mappings = [
        Mapping.from_index_array(core_order, row, num_tiles) for row in rows
    ]
    return list(context._compute_metrics_chunk(mappings))


class SharedArrayBackend(ProcessPoolBackend):
    """Process-pool backend shipping candidate batches via shared memory.

    A drop-in :class:`~repro.eval.parallel.ProcessPoolBackend` whose
    ``evaluate_metrics`` writes the whole batch into one
    :class:`multiprocessing.shared_memory.SharedMemory` segment as a
    ``(pop, cores)`` int64 array; each worker attaches and copies out only
    its row slice.  Per-batch pickling cost drops from O(pop x cores) dict
    payloads to a constant-size task tuple.

    Parameters
    ----------
    n_workers, chunk_size, min_batch_size, start_method:
        As for :class:`~repro.eval.parallel.ProcessPoolBackend`.
    transport:
        ``"auto"`` (default) uses shared memory when the batch qualifies and
        the host supports it, pickling otherwise; ``"shm"`` and ``"pickle"``
        force one path (``"shm"`` still falls back per-batch when a batch
        cannot be expressed as an array — forcing is about benchmarking, not
        about turning correctness into an error).

    Notes
    -----
    A batch qualifies for array transport when every candidate is a
    :class:`~repro.core.mapping.Mapping` over one common core set.  Batches
    of assignment dicts or mixed core sets take the inherited pickle path;
    the :attr:`shm_batches` / :attr:`pickle_batches` counters record which
    transport each fanned-out batch used (inline-priced small batches count
    for neither).
    """

    name = "shm-pool"

    #: Transport modes accepted by ``transport=``.
    TRANSPORTS = ("auto", "shm", "pickle")

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        min_batch_size: Optional[int] = None,
        start_method: Optional[str] = None,
        transport: str = "auto",
    ) -> None:
        if transport not in self.TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {self.TRANSPORTS}, got {transport!r}"
            )
        super().__init__(
            n_workers=n_workers,
            chunk_size=chunk_size,
            min_batch_size=min_batch_size,
            start_method=start_method,
        )
        self.transport = transport
        #: Batches fanned out through the shared-memory path.
        self.shm_batches = 0
        #: Batches fanned out through the inherited pickle path.
        self.pickle_batches = 0

    # ------------------------------------------------------------------
    def _array_plan(
        self, items: Sequence[Any]
    ) -> Optional[Tuple[np.ndarray, Tuple[str, ...], Optional[int]]]:
        """The ``(rows, core_order, num_tiles)`` plan of a batch, or ``None``.

        ``None`` means the batch cannot ride the array transport: a
        non-``Mapping`` candidate, or core sets that disagree.  Equal
        lengths plus a successful
        :func:`~repro.eval.vector.population_to_array` build under the
        first mapping's core order imply equal core sets, so no per-item
        set comparison is needed.
        """
        first = items[0]
        if not isinstance(first, Mapping):
            return None
        order = tuple(first.cores)
        num_tiles = first.num_tiles
        for item in items:
            if not isinstance(item, Mapping) or len(item) != len(order):
                return None
        try:
            rows = population_to_array(items, order)
        except MappingError:
            return None
        return rows, order, num_tiles

    def evaluate_metrics(
        self, context: "Any", mappings: Sequence[Any]
    ) -> List[Any]:
        """Metric vectors of *mappings*, shipped by shared memory when possible.

        Small batches (below ``min_batch_size``) are priced inline exactly as
        the parent class does; qualifying large batches go through one shared
        segment; everything else falls back to the inherited pickling
        fan-out.  All three paths run the same pricing code in the same
        order, so the choice of transport never changes a result.
        """
        items = list(mappings)
        if len(items) < self.min_batch_size:
            return list(context._compute_metrics_chunk(items))
        if self.transport == "pickle" or not shared_memory_available():
            self.pickle_batches += 1
            return super().evaluate_metrics(context, items)
        plan = self._array_plan(items)
        if plan is None:
            self.pickle_batches += 1
            return super().evaluate_metrics(context, items)
        rows, order, num_tiles = plan
        try:
            return self._evaluate_shm(context, rows, order, num_tiles)
        except (OSError, ValueError):
            # /dev/shm full or segment creation raced an rlimit — price the
            # batch anyway, just over the slower transport.
            self.pickle_batches += 1
            return super().evaluate_metrics(context, items)

    def _evaluate_shm(
        self,
        context: "Any",
        rows: np.ndarray,
        order: Tuple[str, ...],
        num_tiles: Optional[int],
    ) -> List[Any]:
        token, payload = self._context_payload(context)
        pop = rows.shape[0]
        chunk = self.chunk_size or math.ceil(pop / self.n_workers)
        pool = self._ensure_pool()
        segment = shared_memory.SharedMemory(
            create=True, size=max(rows.nbytes, 8)
        )
        try:
            view = np.ndarray(rows.shape, dtype=np.int64, buffer=segment.buf)
            view[:] = rows
            del view  # release the exported buffer before close()
            futures = [
                pool.submit(
                    _price_shm_chunk,
                    token,
                    payload,
                    segment.name,
                    pop,
                    order,
                    num_tiles,
                    start,
                    min(start + chunk, pop),
                )
                for start in range(0, pop, chunk)
            ]
            results: List[Any] = []
            for future in futures:
                results.extend(future.result())
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass
        self.shm_batches += 1
        return results

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return (
            f"SharedArrayBackend(n_workers={self.n_workers}, "
            f"transport={self.transport!r}, {state})"
        )


__all__ = [
    "SharedArrayBackend",
    "shared_memory_available",
]
