"""Persistent, cross-run result store for priced metric vectors.

The store is the memory of the mapping service: a
:class:`~repro.core.metrics.MetricVector` priced once — by any process, in
any run — never has to be priced again.  Entries live as small versioned JSON
files on disk, fronted by an in-memory LRU, and are keyed by the full pricing
identity:

* the **scope** digest (:func:`scope_for_context`) — model (CWM/CDCM),
  topology ``cache_token``, routing ``cache_token``, technology, wormhole
  :class:`~repro.noc.platform.NocParameters`, the local-link flag and the
  workload ``content_hash()`` (note the wormhole parameters: the shared
  route-table cache can omit them because routes and bit energies do not
  depend on them, but CDCM *prices* do, so the store key must not);
* the **mapping** digest (:func:`mapping_digest`) — SHA-256 over the sorted
  core names and the pinned :meth:`~repro.core.mapping.Mapping.to_index_array`
  row.

Because contexts memoise weight-independent component vectors, one stored
vector serves every scalarisation — a weight sweep against a warm store
prices nothing.

Durability contract: writes are atomic (temp file + ``os.replace``, so
concurrent writers can interleave freely and readers never observe a torn
file), loads are corruption-tolerant (a truncated, garbled or
version-mismatched file is skipped with a :class:`StoreCorruptionWarning`
and treated as a miss — never an exception), and an optional byte budget is
enforced by evicting the oldest entries first.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.noc.platform import Platform
from repro.noc.topology import topology_cache_token
from repro.utils.errors import ConfigurationError
from repro.utils.hashing import stable_digest

#: Version stamp written into every entry file.  Bump it when the entry
#: layout (or the semantics of stored vectors) changes; old files are then
#: skipped with a warning and transparently re-priced.
STORE_VERSION = 1


class StoreCorruptionWarning(UserWarning):
    """A store entry file was unreadable or stale and has been skipped.

    Emitted (never raised) when a load hits a truncated/garbled JSON file, a
    version-stamp mismatch or a malformed payload; the entry is treated as a
    cache miss and rebuilt by the next write.
    """


@dataclass(frozen=True)
class StoreStats:
    """Counters of one :class:`ResultStore` instance.

    Attributes
    ----------
    hits, misses:
        Lookup outcomes (a hit from either tier counts once).
    memory_hits, disk_hits:
        Which tier answered the hits.
    writes:
        Entries written to disk.
    evictions:
        Entry files deleted by byte-budget enforcement.
    corrupt_skipped:
        Unreadable or version-mismatched files skipped during loads.
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt_skipped: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def mapping_digest(mapping: Union[Mapping, Dict[str, int]]) -> str:
    """Stable digest of a candidate's core-to-tile assignment.

    SHA-256 over the sorted core names and the pinned
    :meth:`~repro.core.mapping.Mapping.to_index_array` row (sorted-core
    column order), so equal assignments digest equal regardless of how the
    mapping was built, and across processes.  Plain assignment dicts are
    accepted and validated through the :class:`~repro.core.mapping.Mapping`
    constructor.
    """
    if not isinstance(mapping, Mapping):
        mapping = Mapping(mapping)
    digest = hashlib.sha256()
    digest.update("\x1f".join(mapping.cores).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(mapping.to_index_array().tobytes())
    return digest.hexdigest()


def workload_digest(application: Any) -> str:
    """The ``content_hash()`` of an application graph (CWG or CDCG).

    Raises
    ------
    ConfigurationError
        When *application* exposes no ``content_hash()`` — the store cannot
        key results on an object without a stable content identity.
    """
    content = getattr(application, "content_hash", None)
    if not callable(content):
        raise ConfigurationError(
            f"{type(application).__name__!r} has no content_hash(); the "
            f"result store needs a stable workload identity (CWG/CDCG "
            f"provide one)"
        )
    return content()


def platform_digest(platform: Platform, include_local: bool = True) -> str:
    """Stable digest of everything a price can depend on in a platform.

    Extends the route-table cache key (topology token, routing token,
    technology, local-link flag) with the wormhole
    :class:`~repro.noc.platform.NocParameters` — route tables may ignore
    them, CDCM schedules cannot.
    """
    return stable_digest(
        (
            "platform",
            topology_cache_token(platform.mesh),
            _routing_token(platform.routing),
            platform.technology,
            platform.parameters,
            bool(include_local),
        )
    )


def _routing_token(routing: Any) -> Tuple:
    token = getattr(routing, "cache_token", None)
    if token is not None:
        return token
    cls = type(routing)
    return (cls.__module__, cls.__qualname__)


def scope_for_context(context: Any) -> str:
    """The store scope digest of an evaluation context.

    A *scope* is one pricing universe — every mapping digest inside it is
    priced by the same model over the same workload on the same platform, so
    ``(scope, mapping_digest)`` fully identifies a stored vector.  Supports
    the two shipped contexts
    (:class:`~repro.eval.context.CwmEvaluationContext`,
    :class:`~repro.eval.context.CdcmEvaluationContext`); CDCM scopes ignore
    scalarisation weights deliberately — stored vectors are component
    vectors, so every weight view shares one scope.
    """
    from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext

    if isinstance(context, CwmEvaluationContext):
        model = "cwm"
        application = context.cwg
        include_local = context.include_local
    elif isinstance(context, CdcmEvaluationContext):
        model = "cdcm"
        application = context.cdcg
        include_local = context.evaluator.include_local
    else:
        raise ConfigurationError(
            f"cannot derive a store scope for {type(context).__name__!r}; "
            f"the result store supports CwmEvaluationContext and "
            f"CdcmEvaluationContext"
        )
    return stable_digest(
        (
            "scope",
            model,
            platform_digest(context.platform, include_local),
            workload_digest(application),
        )
    )


class ResultStore:
    """On-disk, atomically written, versioned cache of metric vectors.

    Layout: one directory per scope under *root*, one JSON file per mapping
    digest inside it, each stamped with :data:`STORE_VERSION`.  An in-memory
    LRU front (``memory_entries`` vectors) answers repeated lookups without
    touching the filesystem.

    Parameters
    ----------
    root:
        Directory the store lives in (created if missing).
    byte_budget:
        Optional cap on the total size of entry files; when a write pushes
        the store above it, the oldest entries (by modification time) are
        deleted until the store fits.  ``None`` (default) never evicts.
    memory_entries:
        Size of the in-memory LRU front (0 disables it).

    Notes
    -----
    Values survive bit-exactly: entry JSON stores each component via
    ``repr(float)`` round-tripping, so a cache hit equals a recompute to the
    last ulp — the property the service's bit-identity contract rests on
    (pinned by ``tests/test_service.py``).
    """

    def __init__(
        self,
        root: Union[str, Path],
        byte_budget: Optional[int] = None,
        memory_entries: int = 4096,
    ) -> None:
        if byte_budget is not None and byte_budget <= 0:
            raise ConfigurationError(
                f"byte_budget must be positive (or None), got {byte_budget}"
            )
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be non-negative, got {memory_entries}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.byte_budget = byte_budget
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[Tuple[str, str], MetricVector]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._memory_hits = 0
        self._disk_hits = 0
        self._writes = 0
        self._evictions = 0
        self._corrupt_skipped = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def get(self, scope: str, digest: str) -> Optional[MetricVector]:
        """The stored vector for ``(scope, digest)``, or ``None`` on a miss.

        Checks the memory front first, then disk (promoting disk hits into
        the front).  Unreadable or version-mismatched files are skipped with
        a :class:`StoreCorruptionWarning` and reported as a miss.
        """
        key = (scope, digest)
        vector = self._memory.get(key)
        if vector is not None:
            self._memory.move_to_end(key)
            self._hits += 1
            self._memory_hits += 1
            return vector
        vector = self._load(scope, digest)
        if vector is None:
            self._misses += 1
            return None
        self._hits += 1
        self._disk_hits += 1
        self._remember(key, vector)
        return vector

    def get_many(
        self, scope: str, digests: Sequence[str]
    ) -> List[Optional[MetricVector]]:
        """Batch :meth:`get`: one optional vector per digest, in order."""
        return [self.get(scope, digest) for digest in digests]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, scope: str, digest: str, vector: MetricVector) -> None:
        """Persist one vector (atomic write, then memory-front insert).

        Concurrent writers of the same entry are safe: each writes a private
        temp file and installs it with ``os.replace``, and since both priced
        the same key their payloads are identical — last-rename-wins changes
        nothing.
        """
        self._write(scope, digest, vector)
        self._remember((scope, digest), vector)
        if self.byte_budget is not None:
            self._enforce_budget()

    def put_many(
        self, scope: str, entries: Iterable[Tuple[str, MetricVector]]
    ) -> None:
        """Persist several ``(digest, vector)`` entries of one scope."""
        for digest, vector in entries:
            self._write(scope, digest, vector)
            self._remember((scope, digest), vector)
        if self.byte_budget is not None:
            self._enforce_budget()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Current counters as an immutable :class:`StoreStats` snapshot."""
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            memory_hits=self._memory_hits,
            disk_hits=self._disk_hits,
            writes=self._writes,
            evictions=self._evictions,
            corrupt_skipped=self._corrupt_skipped,
        )

    def reset_stats(self) -> None:
        """Zero all counters (entries are untouched)."""
        self._hits = self._misses = 0
        self._memory_hits = self._disk_hits = 0
        self._writes = self._evictions = self._corrupt_skipped = 0

    def clear_memory(self) -> None:
        """Drop the in-memory front (disk entries are untouched).

        Used by tests to force the disk path, and by long-lived daemons to
        shed memory between unrelated job bursts.
        """
        self._memory.clear()

    def disk_entries(self) -> int:
        """Number of entry files currently on disk."""
        return sum(1 for _ in self._entry_files())

    def disk_bytes(self) -> int:
        """Total size of all entry files, in bytes."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"memory={len(self._memory)}/{self.memory_entries})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry_path(self, scope: str, digest: str) -> Path:
        return self.root / scope / f"{digest}.json"

    def _entry_files(self) -> Iterable[Path]:
        if not self.root.exists():
            return
        for scope_dir in self.root.iterdir():
            if not scope_dir.is_dir():
                continue
            yield from scope_dir.glob("*.json")

    def _remember(self, key: Tuple[str, str], vector: MetricVector) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = vector
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _load(self, scope: str, digest: str) -> Optional[MetricVector]:
        path = self._entry_path(scope, digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            version = payload["version"]
            if version != STORE_VERSION:
                self._skip(path, f"version {version} != {STORE_VERSION}")
                return None
            names = payload["names"]
            values = payload["values"]
            if not isinstance(names, list) or not isinstance(values, list):
                self._skip(path, "malformed names/values payload")
                return None
            return MetricVector(names, values)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # json.JSONDecodeError is a ValueError; MetricVector construction
            # errors surface as ConfigurationError (a ValueError subclass is
            # not guaranteed, so it is listed via its own except below).
            self._skip(path, f"{type(exc).__name__}: {exc}")
            return None
        except ConfigurationError as exc:
            self._skip(path, f"invalid vector: {exc}")
            return None

    def _skip(self, path: Path, reason: str) -> None:
        self._corrupt_skipped += 1
        warnings.warn(
            f"result store: skipping unreadable entry {path} ({reason}); "
            f"the entry will be re-priced and rewritten",
            StoreCorruptionWarning,
            stacklevel=3,
        )

    def _write(self, scope: str, digest: str, vector: MetricVector) -> None:
        path = self._entry_path(scope, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": STORE_VERSION,
            "names": list(vector.names),
            "values": list(vector.values),
        }
        temp = path.with_name(
            f".{digest}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp, path)
        finally:
            if temp.exists():  # only on a failed dump/replace
                try:
                    temp.unlink()
                except OSError:
                    pass
        self._writes += 1

    def _enforce_budget(self) -> None:
        budget = self.byte_budget
        if budget is None:
            return
        entries: List[Tuple[float, Path, int]] = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
            total += stat.st_size
        if total <= budget:
            return
        entries.sort(key=lambda item: (item[0], str(item[1])))
        for _, path, size in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self._evictions += 1
            self._memory.pop(
                (path.parent.name, path.stem), None
            )


__all__ = [
    "STORE_VERSION",
    "StoreCorruptionWarning",
    "StoreStats",
    "ResultStore",
    "mapping_digest",
    "workload_digest",
    "platform_digest",
    "scope_for_context",
]
