"""Pluggable batch-pricing backends — the parallel half of the evaluation engine.

:meth:`repro.eval.context.EvaluationContext.evaluate_batch` is the seam every
population-based engine prices through (GA generations, exhaustive chunks,
multi-restart annealing, weight sweeps).  This module makes that seam
pluggable: a :class:`BatchBackend` decides *where* the uncached candidates of
a batch are priced —

* :class:`SerialBackend` prices them inline in the calling process (the
  default, and the reference semantics);
* :class:`ProcessPoolBackend` fans them out over a ``concurrent.futures``
  process pool.  Contexts are *picklable-light*: pickling drops the memo, the
  backend and the route table, and each worker rebuilds the table locally
  through the process-wide :func:`~repro.eval.route_table.get_route_table`
  cache — so tasks ship only the application graph and the candidate
  mappings, never the O(n^2) route arrays.

Both backends are bit-identical by construction: they run the same
``_compute_cost`` code on the same inputs, and the caller reassembles results
in submission order, so a seeded search returns the same mapping and the same
cost no matter which backend priced it (pinned by ``tests/test_parallel.py``).

The same pool also shards eager route-table construction by source row
(:func:`warm_route_table`), so >16x16 NoC sweeps do not pay the O(n^2)
warm-up on one core.
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import weakref
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.eval.route_table import (
    RouteTable,
    get_route_table,
    register_route_table,
)
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - imports only used by type checkers
    from repro.eval.context import EvaluationContext
    from repro.noc.platform import Platform

#: Tokens identifying contexts across the process boundary.  Monotonic within
#: the parent process, so a worker's per-token cache can never confuse two
#: different contexts (unlike ``id()``, which the allocator reuses).
_TOKEN_COUNTER = itertools.count(1)

#: How many unpickled contexts each worker process keeps alive.
_WORKER_CONTEXT_LIMIT = 8

#: Per-worker cache of rebuilt contexts, keyed by the parent-side token.
_WORKER_CONTEXTS: "OrderedDict[int, EvaluationContext]" = OrderedDict()


def _worker_context(token: int, payload: bytes) -> "EvaluationContext":
    """Resolve one task's context from the per-worker cache (unpickle on miss).

    The pickled context travels with every task (any worker may see a token
    first), but unpickling — which rebuilds the route table and the edge
    arrays — only happens on a per-worker cache miss.
    """
    context = _WORKER_CONTEXTS.get(token)
    if context is None:
        context = pickle.loads(payload)
        _WORKER_CONTEXTS[token] = context
        while len(_WORKER_CONTEXTS) > _WORKER_CONTEXT_LIMIT:
            _WORKER_CONTEXTS.popitem(last=False)
    else:
        _WORKER_CONTEXTS.move_to_end(token)
    return context


def _price_chunk(
    token: int, payload: bytes, mappings: Sequence[Any]
) -> List[float]:
    """Worker task: price one chunk of candidates with a cached context."""
    context = _worker_context(token, payload)
    return [context._compute_cost(mapping) for mapping in mappings]


def _price_metrics_chunk(
    token: int, payload: bytes, mappings: Sequence[Any]
) -> List[Any]:
    """Worker task: metric vectors of one chunk (the vector-objective twin).

    Prices through ``_compute_metrics_chunk`` so a vectorised context uses
    its array kernel per worker chunk instead of per-candidate loops.
    """
    context = _worker_context(token, payload)
    return list(context._compute_metrics_chunk(mappings))


def _call(task: Tuple[Callable[..., Any], Tuple[Any, ...]]) -> Any:
    """Worker task: apply ``fn(*args)`` (the generic :meth:`BatchBackend.map` unit)."""
    fn, args = task
    return fn(*args)


def _route_rows(
    platform: "Platform", include_local: bool, start: int, stop: int
) -> Tuple[List[Tuple[int, ...]], List[Tuple[Tuple[int, int], ...]], List[int], List[float]]:
    """Worker task: route-table rows for source tiles ``start <= s < stop``.

    Returns the four row-major arrays (paths, links, hops, bit energy) for
    the slice, ready to be concatenated by
    :meth:`~repro.eval.route_table.RouteTable.from_tables`.
    """
    from repro.energy.bit_energy import bit_energy_route

    mesh = platform.mesh
    routing = platform.routing
    technology = platform.technology
    n = mesh.num_tiles
    paths: List[Tuple[int, ...]] = []
    links: List[Tuple[Tuple[int, int], ...]] = []
    hops: List[int] = []
    energy: List[float] = []
    for source in range(start, stop):
        for target in range(n):
            path = tuple(routing.route(mesh, source, target))
            paths.append(path)
            links.append(tuple(zip(path, path[1:])))
            hops.append(len(path))
            energy.append(bit_energy_route(technology, len(path), include_local))
    return paths, links, hops, energy


class BatchBackend(ABC):
    """Strategy deciding where a batch of uncached candidates is priced.

    A backend receives the context and the candidates that missed the memo
    (deduplication and memo bookkeeping stay in
    :meth:`~repro.eval.context.EvaluationContext.evaluate_batch`) and must
    return their costs in order.  Implementations must be *bit-identical* to
    serial pricing: same ``_compute_cost`` code, same inputs, same order.
    """

    #: Short identifier used in reports and benchmark tables.
    name: str = "backend"

    @abstractmethod
    def evaluate(
        self, context: "EvaluationContext", mappings: Sequence[Any]
    ) -> List[float]:
        """Price *mappings* under *context* and return costs in order.

        Parameters
        ----------
        context:
            The evaluation context whose ``_compute_cost`` defines the price.
        mappings:
            Candidates to price (``Mapping`` objects or assignment dicts).

        Returns
        -------
        list of float
            ``[context._compute_cost(m) for m in mappings]``, possibly
            computed elsewhere.
        """

    def evaluate_metrics(
        self, context: "EvaluationContext", mappings: Sequence[Any]
    ) -> List[Any]:
        """Metric vectors of *mappings* under *context*, in order.

        The vector-objective twin of :meth:`evaluate` — this is what
        :meth:`~repro.eval.context.EvaluationContext.evaluate_metrics_batch`
        (and therefore every scalar batch too) prices misses through, so
        memoised component vectors are shared by all scalarisation views.

        The base class deliberately raises instead of pricing inline: a
        backend written against the pre-vector protocol (overriding
        :meth:`evaluate` only) would otherwise keep type-checking while its
        fan-out silently stopped being used.  Subclasses must implement this
        method — :class:`SerialBackend` prices inline,
        :class:`ProcessPoolBackend` chunks across the pool.

        Parameters
        ----------
        context:
            The evaluation context whose ``_compute_metrics`` defines the
            components.
        mappings:
            Candidates to price (``Mapping`` objects or assignment dicts).

        Returns
        -------
        list of MetricVector
            ``[context._compute_metrics(m) for m in mappings]``, possibly
            computed elsewhere.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement evaluate_metrics(); "
            f"since the vector-objective redesign batch misses price metric "
            f"vectors, so backends must override evaluate_metrics (not just "
            f"the legacy scalar evaluate())"
        )

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Apply ``fn(*args)`` to every argument tuple, preserving order.

        The generic escape hatch for coarse-grained work that is not a batch
        of mappings — multi-restart annealing runs and route-table row shards
        go through here.  The default implementation runs serially.

        Parameters
        ----------
        fn:
            A picklable module-level callable.
        argslist:
            One positional-argument tuple per task.

        Returns
        -------
        list
            ``[fn(*args) for args in argslist]`` in submission order.
        """
        return [fn(*args) for args in argslist]

    def close(self) -> None:
        """Release any resources held by the backend (idempotent)."""

    def __enter__(self) -> "BatchBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(BatchBackend):
    """Price batches inline in the calling process.

    The reference backend: :class:`ProcessPoolBackend` results are asserted
    bit-identical against it.  Passing ``backend=None`` to a context is
    equivalent but also skips batch-level dedup bookkeeping.
    """

    name = "serial"

    def evaluate(
        self, context: "EvaluationContext", mappings: Sequence[Any]
    ) -> List[float]:
        """Price *mappings* by direct ``_compute_cost`` calls, in order."""
        return [context._compute_cost(mapping) for mapping in mappings]

    def evaluate_metrics(
        self, context: "EvaluationContext", mappings: Sequence[Any]
    ) -> List[Any]:
        """Metric vectors via ``_compute_metrics_chunk``, in order.

        The chunk call keeps serial pricing bit-identical to pooled pricing
        *and* lets a vectorised context price the whole batch with one array
        gather instead of a per-candidate loop.
        """
        return list(context._compute_metrics_chunk(mappings))


class ProcessPoolBackend(BatchBackend):
    """Fan batches out over a lazily created process pool.

    Workers rebuild evaluation contexts locally — contexts pickle *light*
    (application graph + platform, no memo, no route table) and the route
    table is re-derived once per worker through the process-wide
    :func:`~repro.eval.route_table.get_route_table` cache.  Rebuilt contexts
    are cached per worker and keyed by a parent-side token, so a GA pricing
    thousands of candidates unpickles its context a handful of times, not
    once per chunk.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Candidates per worker task; defaults to an even split of the batch
        over the workers (one task per worker).
    min_batch_size:
        Batches smaller than this are priced inline — process fan-out has a
        fixed cost per task that tiny batches cannot amortise.  Defaults to
        ``2 * n_workers``.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.

    Notes
    -----
    The pool is created on first use and survives across batches; call
    :meth:`close` (or use the backend as a context manager) to shut it down.
    Results are reassembled in submission order, so pricing is bit-identical
    to :class:`SerialBackend` regardless of worker scheduling.
    """

    name = "process-pool"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        min_batch_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        resolved = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
        self.n_workers = resolved
        self.chunk_size = chunk_size
        self.min_batch_size = (
            min_batch_size if min_batch_size is not None else 2 * resolved
        )
        self._start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        # token + pickled payload per context, invalidated when the context
        # is garbage collected (WeakKey) — tokens are never reused, so stale
        # worker-side cache entries can only age out, not alias.
        self._payloads: "weakref.WeakKeyDictionary[EvaluationContext, Tuple[int, bytes]]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            mp_context = None
            if self._start_method is not None:
                import multiprocessing

                mp_context = multiprocessing.get_context(self._start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=mp_context
            )
        return self._pool

    def _context_payload(self, context: "EvaluationContext") -> Tuple[int, bytes]:
        entry = self._payloads.get(context)
        if entry is None:
            entry = (
                next(_TOKEN_COUNTER),
                pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL),
            )
            self._payloads[context] = entry
        return entry

    # ------------------------------------------------------------------
    def evaluate(
        self, context: "EvaluationContext", mappings: Sequence[Any]
    ) -> List[float]:
        """Price *mappings* across the pool, preserving submission order.

        Batches below ``min_batch_size`` are priced inline (identical
        arithmetic, no IPC).
        """
        return self._fan_out(
            context,
            mappings,
            _price_chunk,
            lambda items: [context._compute_cost(mapping) for mapping in items],
        )

    def evaluate_metrics(
        self, context: "EvaluationContext", mappings: Sequence[Any]
    ) -> List[Any]:
        """Metric vectors of *mappings* across the pool, preserving order.

        Batches below ``min_batch_size`` are priced inline (identical
        arithmetic, no IPC).
        """
        return self._fan_out(
            context,
            mappings,
            _price_metrics_chunk,
            lambda items: list(context._compute_metrics_chunk(items)),
        )

    def _fan_out(
        self,
        context: "EvaluationContext",
        mappings: Sequence[Any],
        chunk_task,
        inline_price,
    ) -> List[Any]:
        items = list(mappings)
        if len(items) < self.min_batch_size:
            return inline_price(items)
        token, payload = self._context_payload(context)
        chunk = self.chunk_size or math.ceil(len(items) / self.n_workers)
        pool = self._ensure_pool()
        futures = [
            pool.submit(chunk_task, token, payload, items[i : i + chunk])
            for i in range(0, len(items), chunk)
        ]
        results: List[Any] = []
        for future in futures:
            results.extend(future.result())
        return results

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Run ``fn(*args)`` tasks across the pool, preserving order."""
        tasks = [(fn, tuple(args)) for args in argslist]
        if len(tasks) <= 1:
            return [fn(*args) for _, args in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(_call, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down and forget all cached context payloads."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._payloads = weakref.WeakKeyDictionary()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return f"ProcessPoolBackend(n_workers={self.n_workers}, {state})"


def warm_route_table(
    platform: "Platform",
    include_local: bool = True,
    backend: Optional[BatchBackend] = None,
    register: bool = True,
) -> RouteTable:
    """Eagerly build a platform's route table, sharded by source row.

    For NoCs above the lazy threshold (>16x16), the default
    :func:`~repro.eval.route_table.get_route_table` avoids the O(n^2) warm-up
    by materialising pairs on demand — the right default for sparse access,
    the wrong one for a sweep that will touch every pair anyway.  This helper
    forces the eager build and, given a :class:`ProcessPoolBackend`, computes
    it in parallel: the source tiles are split into per-mesh-row shards, each
    worker walks the routes of its rows, and the slices are concatenated with
    :meth:`~repro.eval.route_table.RouteTable.from_tables`.

    Parameters
    ----------
    platform:
        Target architecture (topology, routing, technology).
    include_local:
        Whether local core-router links contribute to per-bit route energy.
    backend:
        Where to compute the rows; ``None`` builds serially.
    register:
        Install the result as the process-wide shared table
        (:func:`~repro.eval.route_table.register_route_table`) so subsequent
        ``get_route_table`` calls — and workers forked after the warm-up —
        reuse it.

    Returns
    -------
    RouteTable
        An eager table identical to ``RouteTable.for_platform(platform,
        include_local, precompute=True)``.
    """
    if backend is None or isinstance(backend, SerialBackend):
        table = RouteTable.for_platform(
            platform, include_local=include_local, precompute=True
        )
    else:
        n = platform.num_tiles
        # One shard per mesh row; topologies without a grid embedding fall
        # back to sqrt(n)-sized slices (same concatenation order either way,
        # so the assembled table is identical regardless of sharding).
        span = getattr(platform.mesh, "width", None) or max(1, math.isqrt(n))
        shards: List[Tuple["Platform", bool, int, int]] = []
        for start in range(0, n, span):
            shards.append((platform, include_local, start, min(start + span, n)))
        rows = backend.map(_route_rows, shards)
        paths: List[Tuple[int, ...]] = []
        links: List[Tuple[Tuple[int, int], ...]] = []
        hops: List[int] = []
        energy: List[float] = []
        for shard_paths, shard_links, shard_hops, shard_energy in rows:
            paths.extend(shard_paths)
            links.extend(shard_links)
            hops.extend(shard_hops)
            energy.extend(shard_energy)
        table = RouteTable.from_tables(
            platform.mesh,
            platform.routing,
            platform.technology,
            include_local,
            paths,
            links,
            hops,
            energy,
        )
    if register:
        register_route_table(platform, table, include_local=include_local)
    return table


__all__ = [
    "BatchBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "warm_route_table",
]
