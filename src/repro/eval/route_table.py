"""Precomputed route tables — the static half of the evaluation engine.

Pricing a candidate mapping only ever asks four questions about a pair of
tiles: *which routers does a packet traverse* (the path), *which inter-router
links does it cross*, *how many hops is that* (``K`` of equation 2), and *how
much dynamic energy does one bit pay along the way* (``EBit_ij``).  For a
deterministic routing function over a fixed platform, every one of those
answers is a pure function of the ``(source_tile, target_tile)`` pair — yet
the seed code re-derived the XY route edge-by-edge on every objective
evaluation, every scheduler replay and every greedy placement probe.

:class:`RouteTable` computes all four answers once per platform and serves
them as O(1) lookups.  Tables are small (``n**2`` entries for an ``n``-tile
NoC; 4 096 entries for an 8x8 mesh) and are shared process-wide through
:func:`get_route_table`, keyed by the topology's stable
:attr:`~repro.noc.topology.Topology.cache_token`, the routing algorithm's
``cache_token``, the technology and the local-link flag — so the CWM
evaluator, the CDCM scheduler, the greedy constructor and the benchmarks all
price mappings against the same precomputed tables, and meshes, tori and
irregular fabrics (with distinct tokens) can never alias each other's
tables.

For very large NoCs (more than ``_EAGER_PAIR_LIMIT`` pairs) the table turns
into a lazy per-pair memo instead of an eager precomputation, so sweeps over
huge meshes never pay an O(n**2) warm-up for pairs they might not touch.

The numeric halves of an eager table (``hops`` and ``energy``) are stored as
dense NumPy arrays rather than Python lists: scalar lookups index the same
allocation the vectorised pricing kernel (:mod:`repro.eval.vector`) gathers
from, exposed as ``(n, n)`` matrices through :meth:`RouteTable.as_arrays`.
Lazy tables can densify those two halves on demand with
:meth:`RouteTable.warm_dense`, which reuses — not re-derives — every pair
already in the per-pair memo.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.energy.bit_energy import bit_energy_route
from repro.noc.topology import topology_cache_token
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - imports only used by type checkers
    from repro.energy.technology import Technology
    from repro.noc.platform import Platform
    from repro.noc.routing import RoutingAlgorithm
    from repro.noc.topology import Topology

#: Above this many (source, target) pairs the table fills lazily on demand.
_EAGER_PAIR_LIMIT = 1 << 16


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark *array* read-only (dense halves are shared across evaluators)."""
    array.setflags(write=False)
    return array


class RouteTable:
    """Per-platform lookup tables for route paths, links, hops and bit energy.

    Parameters
    ----------
    mesh:
        Topology the routes are computed over (mesh, torus or irregular —
        any :class:`~repro.noc.topology.Topology`; the parameter keeps the
        paper's name, aliased as :attr:`topology`).
    routing:
        Deterministic routing algorithm; must be stateless, as all routing
        algorithms in :mod:`repro.noc.routing` are.
    technology:
        Supplies the per-bit energies used to precompute ``EBit_ij``.
    include_local:
        Whether the two local core-router links contribute ``2 x ECbit`` to
        the per-bit route energy (mirrors the evaluator flag).
    precompute:
        Force eager (True) or lazy (False) table construction; by default the
        table is eager up to ``_EAGER_PAIR_LIMIT`` pairs.
    """

    __slots__ = (
        "mesh",
        "routing",
        "technology",
        "include_local",
        "num_tiles",
        "_eager",
        "_paths",
        "_links",
        "_hops",
        "_energy",
        "_dense_hops",
        "_dense_energy",
    )

    def __init__(
        self,
        mesh: "Topology",
        routing: "RoutingAlgorithm",
        technology: "Technology",
        include_local: bool = True,
        precompute: Optional[bool] = None,
    ) -> None:
        self.mesh = mesh
        self.routing = routing
        self.technology = technology
        self.include_local = include_local
        self.num_tiles = mesh.num_tiles
        pairs = self.num_tiles * self.num_tiles
        self._eager = pairs <= _EAGER_PAIR_LIMIT if precompute is None else precompute
        self._dense_hops: Optional[np.ndarray] = None
        self._dense_energy: Optional[np.ndarray] = None
        if self._eager:
            paths: List[Tuple[int, ...]] = []
            links: List[Tuple[Tuple[int, int], ...]] = []
            hops: List[int] = []
            energy: List[float] = []
            for source in range(self.num_tiles):
                for target in range(self.num_tiles):
                    path = tuple(routing.route(mesh, source, target))
                    paths.append(path)
                    links.append(tuple(zip(path, path[1:])))
                    hops.append(len(path))
                    energy.append(
                        bit_energy_route(technology, len(path), include_local)
                    )
            self._paths = paths
            self._links = links
            # Eager numeric halves live in one dense allocation shared by
            # scalar lookups and the vectorised kernel (see as_arrays()).
            self._hops = _freeze(np.array(hops, dtype=np.int64))
            self._energy = _freeze(np.array(energy, dtype=np.float64))
        else:
            self._paths: Dict[int, Tuple[int, ...]] = {}
            self._links: Dict[int, Tuple[Tuple[int, int], ...]] = {}
            self._hops: Dict[int, int] = {}
            self._energy: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_platform(
        cls,
        platform: "Platform",
        include_local: bool = True,
        precompute: Optional[bool] = None,
    ) -> "RouteTable":
        """Table for a :class:`~repro.noc.platform.Platform` (uncached)."""
        return cls(
            platform.mesh,
            platform.routing,
            platform.technology,
            include_local=include_local,
            precompute=precompute,
        )

    @classmethod
    def from_tables(
        cls,
        mesh: "Topology",
        routing: "RoutingAlgorithm",
        technology: "Technology",
        include_local: bool,
        paths: List[Tuple[int, ...]],
        links: List[Tuple[Tuple[int, int], ...]],
        hops: List[int],
        energy: List[float],
    ) -> "RouteTable":
        """Assemble an eager table from already-computed row-major arrays.

        This is the assembly half of the sharded parallel warm-up
        (:func:`repro.eval.parallel.warm_route_table`): workers compute slices
        of the four arrays for disjoint source-tile ranges and the caller
        concatenates them here instead of re-walking every route serially.

        Parameters
        ----------
        mesh, routing, technology, include_local:
            The platform facets the arrays were computed for (same meaning as
            in the constructor).
        paths, links, hops, energy:
            Row-major per-pair arrays (index ``source * num_tiles + target``),
            each of length ``num_tiles ** 2``.

        Returns
        -------
        RouteTable
            An eager table semantically identical to
            ``RouteTable(mesh, routing, technology, include_local)``.
        """
        num_tiles = mesh.num_tiles
        expected = num_tiles * num_tiles
        for label, table in (
            ("paths", paths),
            ("links", links),
            ("hops", hops),
            ("energy", energy),
        ):
            if len(table) != expected:
                raise ConfigurationError(
                    f"{label} table has {len(table)} entries, expected "
                    f"{expected} for the {num_tiles}-tile {mesh}"
                )
        instance = object.__new__(cls)
        instance.mesh = mesh
        instance.routing = routing
        instance.technology = technology
        instance.include_local = include_local
        instance.num_tiles = num_tiles
        instance._eager = True
        instance._paths = list(paths)
        instance._links = list(links)
        instance._hops = _freeze(np.array(hops, dtype=np.int64))
        instance._energy = _freeze(np.array(energy, dtype=np.float64))
        instance._dense_hops = None
        instance._dense_energy = None
        return instance

    @property
    def is_precomputed(self) -> bool:
        """True when every pair was materialised eagerly at construction."""
        return self._eager

    @property
    def topology(self) -> "Topology":
        """The topology the routes are computed over (alias of ``mesh``)."""
        return self.mesh

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _index(self, source: int, target: int) -> int:
        n = self.num_tiles
        if not (0 <= source < n and 0 <= target < n):
            raise ConfigurationError(
                f"tile pair ({source}, {target}) outside the {n}-tile {self.mesh}"
            )
        return source * n + target

    def _materialise(self, index: int, source: int, target: int) -> None:
        path = tuple(self.routing.route(self.mesh, source, target))
        self._paths[index] = path
        self._links[index] = tuple(zip(path, path[1:]))
        self._hops[index] = len(path)
        self._energy[index] = bit_energy_route(
            self.technology, len(path), self.include_local
        )

    def path(self, source: int, target: int) -> Tuple[int, ...]:
        """Router (tile) indices traversed, both endpoints included."""
        index = self._index(source, target)
        if not self._eager and index not in self._paths:
            self._materialise(index, source, target)
        return self._paths[index]

    def links(self, source: int, target: int) -> Tuple[Tuple[int, int], ...]:
        """Inter-router links of the route, as ``(from, to)`` tile pairs."""
        index = self._index(source, target)
        if not self._eager and index not in self._links:
            self._materialise(index, source, target)
        return self._links[index]

    def hop_count(self, source: int, target: int) -> int:
        """``K`` — number of routers traversed."""
        index = self._index(source, target)
        if self._eager:
            return int(self._hops[index])
        if self._dense_hops is not None:
            return int(self._dense_hops[index])
        if index not in self._hops:
            self._materialise(index, source, target)
        return self._hops[index]

    def bit_energy(self, source: int, target: int) -> float:
        """``EBit_ij`` of equation (2) for this pair, in pJ per bit."""
        index = self._index(source, target)
        if self._eager:
            return float(self._energy[index])
        if self._dense_energy is not None:
            return float(self._dense_energy[index])
        if index not in self._energy:
            self._materialise(index, source, target)
        return self._energy[index]

    def flat_bit_energy(self) -> Optional[np.ndarray]:
        """Row-major ``EBit`` array (``source * num_tiles + target``).

        Returns the dense per-pair energy vector — the same allocation
        :meth:`as_arrays` reshapes — for eager tables and for lazy tables
        that have been :meth:`warm_dense`-ed; ``None`` for cold lazy tables.
        Hot loops that get the array can index it directly and skip per-call
        method dispatch.
        """
        if self._eager:
            return self._energy
        return self._dense_energy

    # ------------------------------------------------------------------
    # Dense (vectorised) views
    # ------------------------------------------------------------------
    @property
    def is_dense(self) -> bool:
        """True when :meth:`as_arrays` can answer without densifying first."""
        return self._eager or self._dense_energy is not None

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(n, n)`` matrices ``(energy, hops)`` of the whole table.

        ``energy[i, j]`` is ``bit_energy(i, j)`` (float64) and ``hops[i, j]``
        is ``hop_count(i, j)`` (int64).  The matrices are read-only reshape
        views of the table's own row-major storage — computed once, never
        copied — and are what :class:`repro.eval.vector.VectorizedCwmKernel`
        gathers from.  A cold lazy table raises
        :class:`~repro.utils.errors.ConfigurationError`; call
        :meth:`warm_dense` (which returns the same views) to densify it.
        """
        if self._eager:
            energy, hops = self._energy, self._hops
        elif self._dense_energy is not None:
            energy, hops = self._dense_energy, self._dense_hops
        else:
            raise ConfigurationError(
                f"{self!r} is lazy and has no dense matrices yet; call "
                f"warm_dense() to materialise them"
            )
        n = self.num_tiles
        return energy.reshape(n, n), hops.reshape(n, n)

    def warm_dense(self) -> Tuple[np.ndarray, np.ndarray]:
        """Densify the numeric halves of a lazy table in one pass.

        Pairs already in the per-pair memo are *reused*, not re-routed; only
        the missing pairs walk the routing algorithm.  Paths and links stay
        lazy (densifying them would cost the O(n^2) tuple storage the lazy
        mode exists to avoid) — after warming, ``hop_count``/``bit_energy``
        answer from the dense matrices while ``path``/``links`` keep
        memoising per pair.  Idempotent; eager tables are already dense.

        Returns
        -------
        (energy, hops):
            The same read-only ``(n, n)`` views :meth:`as_arrays` returns.
        """
        if not self._eager and self._dense_energy is None:
            n = self.num_tiles
            energy = np.empty(n * n, dtype=np.float64)
            hops = np.empty(n * n, dtype=np.int64)
            memo_energy = self._energy
            memo_hops = self._hops
            mesh, routing = self.mesh, self.routing
            technology, include_local = self.technology, self.include_local
            index = 0
            for source in range(n):
                for target in range(n):
                    cached = memo_energy.get(index)
                    if cached is not None:
                        energy[index] = cached
                        hops[index] = memo_hops[index]
                    else:
                        count = len(routing.route(mesh, source, target))
                        hops[index] = count
                        energy[index] = bit_energy_route(
                            technology, count, include_local
                        )
                    index += 1
            self._dense_energy = _freeze(energy)
            self._dense_hops = _freeze(hops)
        return self.as_arrays()

    def __repr__(self) -> str:
        mode = "precomputed" if self._eager else "lazy"
        return (
            f"RouteTable({self.mesh}, {self.routing.name} routing, "
            f"{self.technology.name}, {mode})"
        )


# ----------------------------------------------------------------------
# Process-wide sharing
# ----------------------------------------------------------------------
_TABLE_CACHE: Dict[Tuple, RouteTable] = {}

#: Upper bound on distinct cached tables (sweeps over many platforms evict
#: the oldest entries instead of growing without bound).
_TABLE_CACHE_LIMIT = 32


def _routing_token(routing: "RoutingAlgorithm") -> Tuple:
    token = getattr(routing, "cache_token", None)
    if token is not None:
        return token
    cls = type(routing)
    return (cls.__module__, cls.__qualname__)


def _cache_key(platform: "Platform", include_local: bool) -> Tuple:
    return (
        topology_cache_token(platform.mesh),
        _routing_token(platform.routing),
        platform.technology,
        include_local,
    )


def get_route_table(platform: "Platform", include_local: bool = True) -> RouteTable:
    """Shared :class:`RouteTable` for *platform*.

    Tables are cached by ``(topology cache_token, routing cache_token,
    technology, include_local)``; every evaluator, scheduler and search
    helper bound to the same platform therefore reuses one table, and two
    topology objects share a table exactly when their tokens — which embed
    the concrete class, so wrap-capable subclasses never alias — agree.
    The cache assumes routing algorithms are deterministic and stateless
    (true for all of :mod:`repro.noc.routing`); a stateful custom algorithm
    should build :meth:`RouteTable.for_platform` directly.
    """
    key = _cache_key(platform, include_local)
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = RouteTable.for_platform(platform, include_local=include_local)
        while len(_TABLE_CACHE) >= _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
        _TABLE_CACHE[key] = table
    return table


def register_route_table(
    platform: "Platform", table: RouteTable, include_local: bool = True
) -> None:
    """Install *table* as the process-wide shared table for *platform*.

    Used by the parallel warm-up (:func:`repro.eval.parallel.warm_route_table`)
    so that a table assembled from sharded worker results is the one every
    subsequent :func:`get_route_table` call returns — large-NoC sweeps warm up
    once, in parallel, and then price serially (or in a pool) off the shared
    result.

    Parameters
    ----------
    platform:
        Platform the table was built for.
    table:
        The table to share; must match the platform's tile count.
    include_local:
        The local-link flag the table was built with (part of the cache key).
    """
    if table.num_tiles != platform.num_tiles:
        raise ConfigurationError(
            f"table covers {table.num_tiles} tiles but the platform has "
            f"{platform.num_tiles}"
        )
    key = _cache_key(platform, include_local)
    if key not in _TABLE_CACHE:  # overwriting an entry must not evict others
        while len(_TABLE_CACHE) >= _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
    _TABLE_CACHE[key] = table


def is_shared_route_table(
    table: RouteTable, platform: "Platform", include_local: bool = True
) -> bool:
    """Whether *table* is the process-shared table for *platform*.

    Used by the picklable-light contexts to decide what travels across a
    process boundary: the shared table is dropped (workers rebuild an
    identical one via :func:`get_route_table`), while a custom table — e.g.
    one built for a stateful routing algorithm — must ship with the pickle,
    because a worker-side rebuild could resolve different routes and break
    the bit-identity contract of the parallel backend.

    Parameters
    ----------
    table:
        The table a context is bound to.
    platform:
        The context's platform.
    include_local:
        The local-link flag the context was built with.

    Returns
    -------
    bool
        True when *table* is exactly the cached shared instance.
    """
    return _TABLE_CACHE.get(_cache_key(platform, include_local)) is table


def clear_route_table_cache() -> None:
    """Drop all cached tables (used by tests and long-running sweeps)."""
    _TABLE_CACHE.clear()


__all__ = [
    "RouteTable",
    "get_route_table",
    "register_route_table",
    "is_shared_route_table",
    "clear_route_table_cache",
]
