"""repro.eval — the shared mapping-evaluation engine.

This package is the pricing hot path of the whole reproduction.  Every search
engine (simulated annealing, exhaustive, random, genetic, greedy) explores the
space of core-to-tile mappings and needs each candidate priced as cheaply as
possible; the paper's CPU-time story (Section 5, "CDCM costs at most 23 % more
CPU time than CWM") and the ROADMAP's large-NoC sweeps both live or die on
that cost.  The engine is split into a static and a dynamic half:

* :class:`~repro.eval.route_table.RouteTable` (static) — for one platform,
  precomputes the router path, inter-router link list, hop count ``K`` and
  per-bit route energy ``EBit_ij`` of every ``(source_tile, target_tile)``
  pair.  Shared process-wide via
  :func:`~repro.eval.route_table.get_route_table`, and consumed by the CWM
  evaluator, the CDCM scheduler, the greedy constructor and the benchmarks.
* :class:`~repro.eval.context.EvaluationContext` (dynamic) — binds an
  application to a platform and prices mappings: ``cost(mapping)`` with an
  LRU memo keyed by the mapping assignment, ``delta(mapping, tile_a, tile_b)``
  (exact incremental cost of a tile swap, when the model supports it) and
  ``evaluate_batch(mappings)``.

Model-specific contexts:

* :class:`~repro.eval.context.CwmEvaluationContext` — CWM cost is a sum of
  independent per-edge terms, so a tile swap reprices only the CWG edges
  incident to the two moved cores: ``delta`` is exact and O(degree), which is
  what lets simulated annealing skip the full re-evaluation on every move;
* :class:`~repro.eval.context.CdcmEvaluationContext` — CDCM cost is global
  (contention couples all packets), so ``cost`` keeps the full schedule
  replay (plus route table and memo) while swap deltas go through the
  *bounded repair* engine of :mod:`repro.eval.repair` behind the ``repair``
  gate: only the packets a swap can actually disturb are rescheduled
  against a frozen background, exact at every resync point and
  drift-bounded in between.

A third, parallel half (:mod:`repro.eval.parallel`) makes ``evaluate_batch``
pluggable: a :class:`~repro.eval.parallel.BatchBackend` decides where the
uncached candidates of a batch are priced —
:class:`~repro.eval.parallel.SerialBackend` inline,
:class:`~repro.eval.parallel.ProcessPoolBackend` across a process pool
(contexts pickle light; workers rebuild route tables locally).  The same pool
shards eager route-table construction by source row
(:func:`~repro.eval.parallel.warm_route_table`) for >16x16 NoC sweeps.

A fourth, vectorised half (:mod:`repro.eval.vector`) moves batch pricing onto
NumPy: :class:`~repro.eval.vector.VectorizedCwmKernel` binds an application
as flat edge arrays over the route table's dense matrices
(:meth:`~repro.eval.route_table.RouteTable.as_arrays`) and prices a whole
``(pop, cores)`` population per call — bit-identical to the scalar
accumulator, default-on for search and pinned off by the paper-reproduction
comparison config.

A fifth, incremental half (:mod:`repro.eval.repair`) gives the CDCM model a
swap delta after all: :class:`~repro.eval.repair.CdcmRepairEngine` keeps the
per-resource occupation indices of the current mapping incrementally updated
and prices a two-tile swap by replaying only the packets the swap can
disturb, with a running drift estimate and periodic full-replay resyncs
(:class:`~repro.eval.repair.RepairPolicy`) — default-on for search
(:data:`~repro.eval.repair.DEFAULT_REPAIR`) and pinned off by the
paper-reproduction comparison config, like ``use_delta`` / ``vectorize``.

Search engines discover delta support through the objective's
``supports_delta`` attribute (see :func:`repro.search.base.delta_callable`),
batch support through ``supports_batch`` (see
:func:`repro.search.base.batch_callable`), and fall back to full evaluation
otherwise, so custom objectives keep working unchanged.
"""

from repro.eval.route_table import (
    RouteTable,
    clear_route_table_cache,
    get_route_table,
    register_route_table,
)
from repro.eval.context import (
    DEFAULT_CACHE_SIZE,
    CacheInfo,
    CdcmEvaluationContext,
    CwmEvaluationContext,
    EvaluationContext,
)
from repro.eval.parallel import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    warm_route_table,
)
from repro.eval.repair import (
    DEFAULT_REPAIR,
    CdcmRepairEngine,
    RepairOutcome,
    RepairPolicy,
    RepairStats,
)
from repro.eval.vector import (
    DEFAULT_VECTORIZE,
    VectorizedCwmKernel,
    array_to_mappings,
    population_to_array,
)

__all__ = [
    "RouteTable",
    "get_route_table",
    "register_route_table",
    "clear_route_table_cache",
    "DEFAULT_CACHE_SIZE",
    "CacheInfo",
    "EvaluationContext",
    "CwmEvaluationContext",
    "CdcmEvaluationContext",
    "BatchBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "warm_route_table",
    "DEFAULT_VECTORIZE",
    "VectorizedCwmKernel",
    "population_to_array",
    "array_to_mappings",
    "DEFAULT_REPAIR",
    "CdcmRepairEngine",
    "RepairOutcome",
    "RepairPolicy",
    "RepairStats",
]
