"""Array pricing kernel — NumPy batch evaluation of whole populations.

The CWM objective (equation 3) is a sum over CWG edges of
``bits x EBit(tile_source, tile_target)`` — a pure gather over the per-pair
energy table of :class:`~repro.eval.route_table.RouteTable`.  This module
prices an entire population with a handful of NumPy gathers and reductions
instead of one Python loop per candidate:

* a population is a ``(pop, cores)`` int64 array of tile indices whose
  column order is the **pinned core-order contract** — the sorted core names
  of the bound CWG (see :meth:`repro.core.mapping.Mapping.to_index_array`);
* :class:`VectorizedCwmKernel` binds one application as flat edge arrays
  (``src_idx``, ``tgt_idx``, ``bits``) plus the dense route-table matrices
  (:meth:`~repro.eval.route_table.RouteTable.as_arrays`) and prices the whole
  array at once;
* :func:`population_to_array` / :func:`array_to_mappings` interconvert
  populations and :class:`~repro.core.mapping.Mapping` objects.

**Bit-identity.**  The kernel is not merely approximately equal to the scalar
path — it is bit-identical, the same way serial and pooled pricing are.  The
scalar accumulator adds per-edge contributions left to right in CWG edge
order; a matmul or ``np.sum`` would use pairwise summation and round
differently, so the kernel reduces each row with ``np.add.accumulate`` (a
strictly sequential cumulative sum) over the same edge order.  This is what
lets the vector path be default-on for search without perturbing a single
accept/reject decision, and what the property tests in
``tests/test_vector.py`` pin.

The CDCM volume/hop metric components are route-table gathers too: a kernel
built with :meth:`VectorizedCwmKernel.from_cdcg` prices the per-packet
dynamic energy of equation (4) and the bits-times-hops volume in the same
way.  The contention and timing terms of CDCM stay on the scalar scheduler —
they are global replay quantities, not gathers.

Gating follows the ``use_delta`` precedent:
:class:`~repro.eval.context.CwmEvaluationContext` vectorises by default
(:data:`DEFAULT_VECTORIZE`), and
:class:`~repro.analysis.comparison.ComparisonConfig` pins the flag off so the
reproduced paper tables keep the exact seed arithmetic path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

import numpy as np

from repro.core.mapping import Mapping
from repro.utils.errors import ConfigurationError, MappingError

if TYPE_CHECKING:  # pragma: no cover - imports only used by type checkers
    from repro.eval.route_table import RouteTable
    from repro.graphs.cdcg import CDCG
    from repro.graphs.cwg import CWG

#: Default state of the ``vectorize`` gate on contexts that support it
#: (mirrors the ``use_delta`` convention: on for search, pinned off by
#: :class:`~repro.analysis.comparison.ComparisonConfig`).
DEFAULT_VECTORIZE = True

#: Upper bound on the number of gathered elements a single pricing block may
#: materialise; larger populations are priced in row blocks so peak memory
#: stays bounded regardless of population size.
_MAX_GATHER_ELEMENTS = 1 << 22


def population_to_array(
    mappings: Iterable[Union[Mapping, Dict[str, int]]],
    cores: Sequence[str],
    num_tiles: Optional[int] = None,
) -> np.ndarray:
    """Stack candidates into a ``(pop, len(cores))`` int64 tile array.

    Column *c* of every row holds the tile of ``cores[c]`` — pass the pinned
    order (the sorted core names of the bound CWG, i.e.
    :attr:`Mapping.cores` / a kernel's
    :attr:`VectorizedCwmKernel.core_order`) so arrays from different call
    sites agree column-for-column.  Accepts both :class:`Mapping` objects and
    plain assignment dicts.

    Parameters
    ----------
    mappings:
        Candidates to convert.
    cores:
        Column order; every candidate must place each of these cores.
    num_tiles:
        Optional NoC size; when given, tile indices are range-checked.

    Raises
    ------
    MappingError
        If a candidate misses one of *cores*, or a tile is out of range.
    """
    order = list(cores)
    items = list(mappings)
    out = np.empty((len(items), len(order)), dtype=np.int64)
    for row, mapping in enumerate(items):
        if isinstance(mapping, Mapping):
            out[row] = mapping.to_index_array(order)
        else:
            try:
                for column, core in enumerate(order):
                    out[row, column] = mapping[core]
            except KeyError as exc:
                raise MappingError(
                    f"mapping does not place core {exc.args[0]!r}"
                ) from exc
    if num_tiles is not None and out.size:
        low, high = int(out.min()), int(out.max())
        if low < 0 or high >= num_tiles:
            bad = low if low < 0 else high
            raise MappingError(
                f"tile index {bad} outside the {num_tiles}-tile NoC"
            )
    return out


def array_to_mappings(
    tiles: np.ndarray,
    cores: Sequence[str],
    num_tiles: Optional[int] = None,
) -> List[Mapping]:
    """Rebuild :class:`Mapping` objects from a ``(pop, cores)`` tile array.

    The inverse of :func:`population_to_array`:
    ``array_to_mappings(population_to_array(ms, order), order)`` equals
    ``ms`` for any consistent *order*.  Each row goes through the validating
    :meth:`Mapping.from_index_array` constructor (injectivity, range when
    *num_tiles* is given).

    Parameters
    ----------
    tiles:
        ``(pop, len(cores))`` integer array of tile indices.
    cores:
        Column order the array was built with.
    num_tiles:
        Optional NoC size forwarded to each mapping.
    """
    array = np.asarray(tiles)
    if array.ndim != 2 or array.shape[1] != len(cores):
        raise MappingError(
            f"expected a (pop, {len(cores)}) tile array, got shape "
            f"{array.shape}"
        )
    order = list(cores)
    return [
        Mapping.from_index_array(order, row, num_tiles=num_tiles)
        for row in array
    ]


class VectorizedCwmKernel:
    """One application bound as flat edge arrays over a dense route table.

    The kernel snapshots the application's communications as three flat
    arrays — ``src_idx``/``tgt_idx`` (column positions of each edge's
    endpoints in :attr:`core_order`) and ``bits`` — plus the dense
    ``(n, n)`` energy and hops matrices of the route table, and prices a
    whole ``(pop, cores)`` population per call.  Per-edge contributions are
    reduced left to right in the application's edge order with
    ``np.add.accumulate``, so every priced value is bit-identical to the
    scalar accumulator of
    :meth:`~repro.eval.context.CwmEvaluationContext._compute_metrics`.

    Build kernels with :meth:`from_cwg` (CWM, equation 3),
    :meth:`from_cdcg` (the CDCM per-packet volume/energy gathers of
    equation 4) or :meth:`from_edges` (an explicit edge snapshot).

    Parameters
    ----------
    edges:
        ``(source_core, target_core, bits)`` triples, in accumulation order.
    route_table:
        Table supplying the dense matrices; lazy tables are densified via
        :meth:`~repro.eval.route_table.RouteTable.warm_dense` (pairs already
        memoised are reused, not re-routed).
    core_order:
        Column order of the populations this kernel prices.  The pinned
        contract is the sorted core names of the bound application; pass it
        explicitly only to interoperate with arrays built in a custom order.
    name:
        Optional label used in ``repr``.
    """

    __slots__ = (
        "core_order",
        "num_tiles",
        "name",
        "_src_idx",
        "_tgt_idx",
        "_bits",
        "_bits_int",
        "_required",
        "_energy",
        "_hops",
    )

    def __init__(
        self,
        edges: Sequence[Tuple[str, str, int]],
        route_table: "RouteTable",
        core_order: Sequence[str],
        name: str = "cwm-kernel",
    ) -> None:
        self.core_order: Tuple[str, ...] = tuple(core_order)
        self.num_tiles = route_table.num_tiles
        self.name = name
        column = {core: index for index, core in enumerate(self.core_order)}
        if len(column) != len(self.core_order):
            raise ConfigurationError(
                f"core_order contains duplicate names: {self.core_order!r}"
            )
        edge_list = list(edges)
        src = np.empty(len(edge_list), dtype=np.int64)
        tgt = np.empty(len(edge_list), dtype=np.int64)
        bits = np.empty(len(edge_list), dtype=np.float64)
        for index, (source, target, volume) in enumerate(edge_list):
            try:
                src[index] = column[source]
                tgt[index] = column[target]
            except KeyError as exc:
                raise ConfigurationError(
                    f"edge core {exc.args[0]!r} missing from core_order"
                ) from exc
            bits[index] = volume
        self._src_idx = src
        self._tgt_idx = tgt
        self._bits = bits
        self._bits_int = np.array(
            [volume for _, _, volume in edge_list], dtype=np.int64
        )
        self._required = frozenset(
            core for source, target, _ in edge_list for core in (source, target)
        )
        self._energy, self._hops = route_table.warm_dense()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Tuple[str, str, int]],
        route_table: "RouteTable",
        core_order: Sequence[str],
        name: str = "cwm-kernel",
    ) -> "VectorizedCwmKernel":
        """Kernel over an explicit ``(source, target, bits)`` edge snapshot.

        This is what :class:`~repro.eval.context.CwmEvaluationContext` uses:
        the context snapshots its edges at construction, and building the
        kernel from the same snapshot guarantees the two paths accumulate in
        the same order even if the live CWG is mutated afterwards.
        """
        return cls(edges, route_table, core_order, name=name)

    @classmethod
    def from_cwg(
        cls,
        cwg: "CWG",
        route_table: "RouteTable",
        core_order: Optional[Sequence[str]] = None,
    ) -> "VectorizedCwmKernel":
        """Kernel pricing equation (3) for *cwg* over *route_table*.

        Edges bind in ``cwg.communications()`` order (the scalar
        accumulation order); *core_order* defaults to the pinned contract,
        the sorted core names of the CWG.
        """
        order = sorted(cwg.cores) if core_order is None else core_order
        edges = [
            (comm.source, comm.target, comm.bits)
            for comm in cwg.communications()
        ]
        return cls(edges, route_table, order, name=f"cwm-kernel({cwg.name})")

    @classmethod
    def from_cdcg(
        cls,
        cdcg: "CDCG",
        route_table: "RouteTable",
        core_order: Optional[Sequence[str]] = None,
    ) -> "VectorizedCwmKernel":
        """Kernel over the per-packet gathers of a CDCG.

        Each packet becomes one edge (``source, target, bits`` in
        ``cdcg.packets()`` order), so :meth:`price` computes the CDCM dynamic
        energy ``EDyNoC`` of equation (4) and :meth:`hop_volume` the
        bits-times-hops volume — the two CDCM metric components that are pure
        route-table gathers.  Contention and timing (and therefore static
        energy) stay on the scalar scheduler replay.
        """
        order = sorted(cdcg.cores()) if core_order is None else core_order
        edges = [
            (packet.source, packet.target, packet.bits)
            for packet in cdcg.packets
        ]
        return cls(edges, route_table, order, name=f"cdcm-kernel({cdcg.name})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of bound communications (rows of the flat edge arrays)."""
        return int(self._src_idx.size)

    @property
    def required_cores(self) -> frozenset:
        """Cores referenced by at least one edge.

        Only these columns are ever gathered; candidates may leave the other
        (isolated) cores unplaced, exactly as the scalar path allows.
        """
        return self._required

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def _validate(self, tiles: np.ndarray) -> np.ndarray:
        array = np.asarray(tiles, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != len(self.core_order):
            raise MappingError(
                f"expected a (pop, {len(self.core_order)}) tile array for "
                f"{self.name}, got shape {np.shape(tiles)}"
            )
        if array.size:
            low, high = int(array.min()), int(array.max())
            if low < 0 or high >= self.num_tiles:
                bad = low if low < 0 else high
                raise MappingError(
                    f"tile index {bad} outside the {self.num_tiles}-tile NoC"
                )
        return array

    def price(self, tiles: np.ndarray) -> np.ndarray:
        """Dynamic energy of every candidate row, bit-identical to scalar.

        Gathers ``EBit`` for each edge's ``(source_tile, target_tile)`` pair,
        multiplies by the edge's bit volume, and reduces each row with a
        strictly sequential cumulative sum — the float-for-float twin of the
        scalar left-to-right accumulator.  Large populations are priced in
        row blocks to bound peak memory.

        Parameters
        ----------
        tiles:
            ``(pop, cores)`` integer array in :attr:`core_order` column
            order.

        Returns
        -------
        numpy.ndarray
            ``(pop,)`` float64 energies (zeros when the application has no
            communications; empty for an empty population).
        """
        array = self._validate(tiles)
        pop = array.shape[0]
        out = np.empty(pop, dtype=np.float64)
        if pop == 0:
            return out
        if self._src_idx.size == 0:
            out.fill(0.0)
            return out
        block = max(1, _MAX_GATHER_ELEMENTS // self._src_idx.size)
        for start in range(0, pop, block):
            rows = array[start : start + block]
            contrib = self._bits * self._energy[
                rows[:, self._src_idx], rows[:, self._tgt_idx]
            ]
            np.add.accumulate(contrib, axis=1, out=contrib)
            out[start : start + block] = contrib[:, -1]
        return out

    def hop_volume(self, tiles: np.ndarray) -> np.ndarray:
        """Bits-times-hops volume of every candidate row.

        The hop-weighted traffic volume (an exact integer, so summation
        order is irrelevant): for each candidate, the sum over edges of
        ``bits x hop_count(source_tile, target_tile)``.

        Parameters
        ----------
        tiles:
            ``(pop, cores)`` integer array in :attr:`core_order` column
            order.

        Returns
        -------
        numpy.ndarray
            ``(pop,)`` int64 volumes.
        """
        array = self._validate(tiles)
        pop = array.shape[0]
        out = np.empty(pop, dtype=np.int64)
        if pop == 0:
            return out
        if self._src_idx.size == 0:
            out.fill(0)
            return out
        block = max(1, _MAX_GATHER_ELEMENTS // self._src_idx.size)
        for start in range(0, pop, block):
            rows = array[start : start + block]
            gathered = self._hops[rows[:, self._src_idx], rows[:, self._tgt_idx]]
            out[start : start + block] = (self._bits_int * gathered).sum(axis=1)
        return out

    def price_mappings(
        self, mappings: Iterable[Union[Mapping, Dict[str, int]]]
    ) -> np.ndarray:
        """Convenience wrapper: convert candidates and :meth:`price` them.

        Candidates are stacked with :func:`population_to_array` over this
        kernel's :attr:`core_order`; cores not referenced by any edge may be
        left unplaced (their column is filled with tile 0, which no gather
        reads), matching the scalar path's tolerance for isolated cores.
        """
        items = list(mappings)
        order = self.core_order
        required = self._required
        out = np.zeros((len(items), len(order)), dtype=np.int64)
        for row, mapping in enumerate(items):
            lookup = (
                mapping.assignments() if isinstance(mapping, Mapping) else mapping
            )
            try:
                out[row] = [lookup[core] for core in order]
            except KeyError:
                for column, core in enumerate(order):
                    tile = lookup.get(core)
                    if tile is None:
                        if core in required:
                            raise MappingError(
                                f"mapping does not place core {core!r}"
                            )
                        continue
                    out[row, column] = tile
        return self.price(out)

    def __repr__(self) -> str:
        return (
            f"VectorizedCwmKernel({self.name}, {self.num_edges} edges, "
            f"{len(self.core_order)} cores, {self.num_tiles} tiles)"
        )


__all__ = [
    "DEFAULT_VECTORIZE",
    "VectorizedCwmKernel",
    "population_to_array",
    "array_to_mappings",
]
