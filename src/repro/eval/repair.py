"""Bounded-repair CDCM deltas — incremental rescheduling with resync guarantees.

CWM swaps are exactly repriceable in O(degree) because the model is a sum of
independent per-edge terms.  CDCM is not: contention couples every packet
through the link arbiters, so the only always-exact swap price is a full
replay of the schedule.  This module implements the middle ground ROADMAP
item 3 asks for — a *bounded repair*: for a two-tile swap it replays only

1. the **seed** packets whose routes actually change (an endpoint core sits
   on one of the swapped tiles),
2. the packets occupying any contention resource the seeds' old or new
   routes touch *at or after the earliest instant a seed reservation can
   change there* (grants are made in start order, so earlier occupations
   keep their grants and stay frozen), and
3. up to ``closure_depth`` adaptive extension rounds of the packets on the
   step's own *frontier* (see below), capped at ``max_replay_fraction`` of
   the application,

against a frozen background of everything else
(:class:`~repro.noc.scheduler.FrozenOccupations`), extending the replay set
with the dependence successors of any packet whose delivery moved until the
set is closed.  The per-resource occupation indices
(:func:`~repro.noc.scheduler.contention_index`) are kept incrementally
updated across accepted swaps, so consecutive deltas never rebuild them.

**Exact or bounded.**  After a bounded step the engine checks its *frontier*:
background occupations that start at or after the earliest replayed change on
a touched resource.  An empty frontier means no frozen grant could have been
re-arbitrated — the step is exact (the usual case on large fabrics, where a
swap's contention is local).  A non-empty frontier makes the step an
approximation; the engine then accumulates a conservative error estimate
(the frontier packets' potential serialisation shifts, mapped through the
static-power and scalarisation weights) as *drift*.

**Resync.**  Exactness is restored by full-replay resyncs: every
``resync_every``-th accepted swap, or as soon as the accumulated drift
estimate exceeds ``max_drift`` of the tracked cost, the next delta is priced
by a full replay and returned as ``exact - tracked`` — so the running sum
``cost0 + sum(deltas)`` coincides with the true cost at every resync point
*by construction*, regardless of how the estimates behaved in between.  The
conformance bound is pinned by ``tests/delta_harness.py`` /
``tests/test_repair.py``.

The engine is consumed through
:meth:`repro.eval.context.CdcmEvaluationContext.metric_delta` behind the
``repair`` gate (default-on via :data:`DEFAULT_REPAIR`, pinned off by
:class:`repro.analysis.comparison.ComparisonConfig` so the paper-reproduction
rows keep full-replay pricing), mirroring the ``use_delta`` / ``vectorize``
conventions.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.mapping import Mapping
from repro.core.metrics import CDCM_METRIC_NAMES, MetricVector
from repro.energy.dynamic import cdcm_dynamic_energy, communication_dynamic_energy
from repro.energy.static import noc_static_power
from repro.graphs.cdcg import CDCG
from repro.noc.platform import Platform
from repro.noc.resources import LinkResource, Occupation, Resource
from repro.noc.scheduler import (
    CdcmScheduler,
    FrozenOccupations,
    PacketSchedule,
    ScheduleResult,
    contention_index,
)
from repro.utils.errors import ConfigurationError, MappingError

#: Default state of the CDCM bounded-repair gate — on, the right choice for
#: swap-based search; :class:`~repro.analysis.comparison.ComparisonConfig`
#: pins it off for the paper-reproduction rows (the ``use_delta`` /
#: ``vectorize`` convention).
DEFAULT_REPAIR = True

#: Relative floor under which drift comparisons treat the tracked cost as 1.
_DRIFT_FLOOR = 1e-12

#: The zero delta (both tiles empty, or a tile swapped with itself).
_ZERO_DELTA = MetricVector(CDCM_METRIC_NAMES, (0.0, 0.0, 0.0, 0.0, 0.0))


@dataclass(frozen=True)
class RepairPolicy:
    """Knobs of the bounded-repair / resync contract.

    Attributes
    ----------
    resync_every:
        A full-replay resync is scheduled on every ``resync_every``-th
        accepted swap even if the drift estimate stays low — the periodic
        half of the exactness guarantee.
    max_drift:
        Forced-resync threshold: as soon as the accumulated drift estimate
        exceeds ``max_drift x |tracked cost|`` the next delta is priced by a
        full replay.
    closure_depth:
        How many adaptive frontier-extension rounds a bounded step may
        spend pulling its frontier packets into the replay set.  0 replays
        seeds and windowed occupants only; deeper closures make bounded
        steps provably exact more often at higher replay cost.
    max_replay_fraction:
        Cap on the replay-set size as a fraction of the application's
        packets; frontier extension stops once pulling the frontier in
        would exceed it (the step stays bounded and drift-tracked).
    """

    resync_every: int = 64
    max_drift: float = 0.05
    closure_depth: int = 3
    max_replay_fraction: float = 0.5

    def __post_init__(self) -> None:
        """Validate the policy (positive period, non-negative bounds)."""
        if self.resync_every < 1:
            raise ConfigurationError(
                f"resync_every must be >= 1, got {self.resync_every}"
            )
        if self.max_drift < 0:
            raise ConfigurationError(
                f"max_drift must be non-negative, got {self.max_drift}"
            )
        if self.closure_depth < 0:
            raise ConfigurationError(
                f"closure_depth must be non-negative, got {self.closure_depth}"
            )
        if not 0.0 <= self.max_replay_fraction <= 1.0:
            raise ConfigurationError(
                "max_replay_fraction must be within [0, 1], got "
                f"{self.max_replay_fraction}"
            )


@dataclass
class RepairStats:
    """Counters of one engine's life — exposed for benchmarks and tests.

    Attributes
    ----------
    deltas:
        Swap deltas priced (including the zero-delta short-circuits).
    promotions:
        Candidates accepted into the tracked base state.
    anchors:
        Full replays spent (re-)anchoring the base to an unknown mapping.
    resyncs:
        Deltas priced by a full replay because the resync period elapsed.
    forced_resyncs:
        Deltas priced by a full replay because drift exceeded ``max_drift``.
    exact_steps:
        Bounded deltas whose frontier was empty (provably exact).
    bounded_steps:
        Bounded deltas with a non-empty frontier (approximate, drift-tracked).
    replayed_packets:
        Total packets partially replayed across all bounded deltas.
    """

    deltas: int = 0
    promotions: int = 0
    anchors: int = 0
    resyncs: int = 0
    forced_resyncs: int = 0
    exact_steps: int = 0
    bounded_steps: int = 0
    replayed_packets: int = 0


@dataclass(frozen=True)
class RepairOutcome:
    """How the most recent delta was priced (see ``CdcmRepairEngine.last_outcome``).

    Attributes
    ----------
    exact:
        Whether the returned delta is exact — true for resyncs, anchored
        zero-deltas and bounded steps with an empty frontier.
    resynced:
        Whether the delta was priced by a full replay (period elapsed or
        drift exceeded ``max_drift``).
    replayed:
        Number of packets replayed (the whole application for resyncs).
    estimated_error:
        The scalarised error estimate this step would add to the drift if
        accepted (0.0 for exact steps).
    """

    exact: bool
    resynced: bool
    replayed: int
    estimated_error: float


@dataclass
class _BaseState:
    """The engine's tracked world: one mapping's schedule plus repair metadata."""

    mapping: Mapping
    tile_of: Dict[str, int]
    schedules: Dict[str, PacketSchedule]
    index: Dict[Resource, List[Occupation]]
    footprints: Dict[str, List[Tuple[Resource, Occupation]]]
    metrics: MetricVector
    #: Total busy time per inter-router link — the running numerator of the
    #: ``max_link_utilisation`` metric component, spliced incrementally.
    link_busy: Dict[Resource, float] = field(default_factory=dict)
    drift: float = 0.0
    swaps_since_resync: int = 0


@dataclass
class _Candidate:
    """A priced-but-not-yet-accepted swap, promotable into the base state."""

    mapping: Mapping
    origin: _BaseState
    delta: MetricVector
    outcome: RepairOutcome
    #: Full fresh state (resync path) — replaces the base wholesale.
    fresh: Optional[_BaseState] = None
    #: Bounded-repair patch (splice path), applied to ``origin`` in place.
    tile_of: Optional[Dict[str, int]] = None
    replay: FrozenSet[str] = frozenset()
    #: Replayed packets whose contention footprint actually moved — the only
    #: ones whose index entries a promotion must rebuild.
    changed: FrozenSet[str] = frozenset()
    schedules: Dict[str, PacketSchedule] = field(default_factory=dict)
    footprints: Dict[str, List[Tuple[Resource, Occupation]]] = field(
        default_factory=dict
    )
    metrics: Optional[MetricVector] = None
    #: Per-link busy-time change of the ``changed`` packets, applied to the
    #: base's :attr:`_BaseState.link_busy` on promotion.
    link_busy_delta: Dict[Resource, float] = field(default_factory=dict)


def _occupation_start(occupation: Occupation) -> float:
    """Sort key of an occupation inside a per-resource index list."""
    return occupation.start


class CdcmRepairEngine:
    """Stateful bounded-repair pricer of CDCM two-tile swaps.

    The engine tracks one *base* mapping (schedule, occupation indices,
    metric vector).  :meth:`metric_delta` prices the swap ``(tile_a,
    tile_b)`` against it and remembers the candidate; when the next call's
    mapping *is* that candidate (the accept-then-continue pattern of
    annealing and greedy), the candidate's partial replay is spliced into
    the base instead of recomputing anything.  Unknown mappings re-anchor
    with a full replay, so out-of-protocol callers lose speed, never
    correctness.

    Parameters
    ----------
    cdcg:
        Packet-level application model.
    platform:
        Target architecture (topology, wormhole parameters, technology).
    route_table:
        Optional pre-built route table shared with the owning evaluator.
    include_local:
        Whether local core-router links contribute to dynamic energy.
    weights:
        Scalarisation weights used only to map the time-domain error
        estimate onto the tracked cost for drift decisions; defaults to the
        paper objective ``{"energy": 1.0}``.
    policy:
        Resync/drift contract; defaults to :class:`RepairPolicy`.
    """

    def __init__(
        self,
        cdcg: CDCG,
        platform: Platform,
        route_table=None,
        include_local: bool = True,
        weights: Optional[Dict[str, float]] = None,
        policy: Optional[RepairPolicy] = None,
    ) -> None:
        self.cdcg = cdcg
        self.platform = platform
        self.include_local = include_local
        self.weights = dict(weights) if weights else {"energy": 1.0}
        self.policy = policy if policy is not None else RepairPolicy()
        self.scheduler = CdcmScheduler(platform, route_table=route_table)
        self.stats = RepairStats()
        #: :class:`RepairOutcome` of the most recent :meth:`metric_delta`.
        self.last_outcome: Optional[RepairOutcome] = None
        self._serialize_local = platform.parameters.serialize_local_links
        self._link_time = platform.parameters.link_time
        self._routing_time = platform.parameters.routing_time
        self._static_power = noc_static_power(
            platform.technology, platform.num_tiles
        )
        self._base: Optional[_BaseState] = None
        self._candidate: Optional[_Candidate] = None
        # Hot-path lookup tables: per-core packet names (seed discovery)
        # and per-tile-pair contention resources (window construction).
        self._packets_of_core: Dict[str, List[str]] = {}
        for packet in cdcg.packets:
            self._packets_of_core.setdefault(packet.source, []).append(
                packet.name
            )
            if packet.target != packet.source:
                self._packets_of_core.setdefault(packet.target, []).append(
                    packet.name
                )
        self._route_cache: Dict[Tuple[int, int], List[Resource]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def metric_delta(
        self, mapping: Mapping, tile_a: int, tile_b: int
    ) -> MetricVector:
        """Per-component cost change of ``mapping.swap_tiles(tile_a, tile_b)``.

        Exact after a resync or when the bounded step's frontier is empty
        (see :attr:`last_outcome`), bounded by the drift contract otherwise.
        Either tile may be empty; swapping two empty tiles (or a tile with
        itself) prices exactly 0.
        """
        if not isinstance(mapping, Mapping):
            mapping = Mapping(mapping, self.platform.num_tiles)
        n = self.platform.num_tiles
        for tile in (tile_a, tile_b):
            if not 0 <= tile < n:
                raise MappingError(
                    f"tile {tile} outside the {n}-tile {self.platform.mesh}"
                )
        self.stats.deltas += 1
        base = self._ensure_base(mapping)
        core_a = mapping.core_at(tile_a)
        core_b = mapping.core_at(tile_b)
        if tile_a == tile_b or (core_a is None and core_b is None):
            self.last_outcome = RepairOutcome(
                exact=True, resynced=False, replayed=0, estimated_error=0.0
            )
            return _ZERO_DELTA

        candidate_mapping = mapping.swap_tiles(tile_a, tile_b)
        policy = self.policy
        scheduled = base.swaps_since_resync + 1 >= policy.resync_every
        threshold = policy.max_drift * max(
            abs(self._scalarise(base.metrics)), _DRIFT_FLOOR
        )
        forced = base.drift > 0.0 and base.drift > threshold
        if scheduled or forced:
            if scheduled:
                self.stats.resyncs += 1
            else:
                self.stats.forced_resyncs += 1
            candidate = self._resync_candidate(base, candidate_mapping)
        else:
            candidate = self._repair_candidate(
                base, candidate_mapping, core_a, core_b
            )
        self._candidate = candidate
        self.last_outcome = candidate.outcome
        return candidate.delta

    def tracked_metrics(self) -> Optional[MetricVector]:
        """The base state's tracked metric vector (``None`` before any delta)."""
        base = self._base
        return base.metrics if base is not None else None

    def reset(self) -> None:
        """Forget the tracked base and candidate (stats are kept)."""
        self._base = None
        self._candidate = None

    # ------------------------------------------------------------------
    # Base-state lifecycle
    # ------------------------------------------------------------------
    def _ensure_base(self, mapping: Mapping) -> _BaseState:
        """Resolve *mapping* to the tracked base: reuse, promote, or re-anchor."""
        base = self._base
        if base is not None and base.mapping == mapping:
            return base
        candidate = self._candidate
        if (
            candidate is not None
            and candidate.origin is base
            and candidate.mapping == mapping
        ):
            self._promote(candidate)
            assert self._base is not None
            return self._base
        self.stats.anchors += 1
        self._base = self._full_state(mapping)
        self._candidate = None
        return self._base

    def _full_state(self, mapping: Mapping) -> _BaseState:
        """Full replay of *mapping* packaged as an exact base state."""
        result = self.scheduler.schedule(self.cdcg, mapping)
        index = contention_index(result, self._serialize_local)
        footprints: Dict[str, List[Tuple[Resource, Occupation]]] = {
            name: [] for name in result.packet_schedules
        }
        for resource, occupations in index.items():
            for occupation in occupations:
                footprints[occupation.packet].append((resource, occupation))
        tile_of = {core: mapping.tile_of(core) for core in self.cdcg.cores()}
        link_busy: Dict[Resource, float] = {}
        for resource, occupations in index.items():
            if isinstance(resource, LinkResource):
                link_busy[resource] = sum(o.duration for o in occupations)
        return _BaseState(
            mapping=mapping,
            tile_of=tile_of,
            schedules=dict(result.packet_schedules),
            index=index,
            footprints=footprints,
            metrics=self._exact_metrics(result),
            link_busy=link_busy,
        )

    def _exact_metrics(self, result: ScheduleResult) -> MetricVector:
        """Metric vector of a full replay — same arithmetic as the evaluator."""
        technology = self.platform.technology
        dynamic = cdcm_dynamic_energy(result, technology, self.include_local)
        static = self._static_power * result.execution_time
        return MetricVector(
            CDCM_METRIC_NAMES,
            (
                dynamic + static,
                result.execution_time,
                dynamic,
                static,
                result.max_link_utilisation(),
            ),
        )

    def _scalarise(self, metrics: MetricVector) -> float:
        """The engine's weight view of a metric vector (drift bookkeeping)."""
        return metrics.weighted_sum(self.weights, strict=False)

    def _promote(self, candidate: _Candidate) -> None:
        """Accept *candidate*: splice its replay (or fresh state) into the base."""
        self.stats.promotions += 1
        self._candidate = None
        if candidate.fresh is not None:
            self._base = candidate.fresh
            return
        base = candidate.origin
        changed = candidate.changed
        # Rebuild only the dirty resources of the packets whose footprint
        # actually moved: filtering on the packet name is much cheaper than
        # value-equality list removals of Occupations, and replayed packets
        # that rescheduled identically keep their (equal) index entries.
        dirty: Set[Resource] = set()
        added: Dict[Resource, List[Occupation]] = {}
        for name in changed:
            for resource, _ in base.footprints.get(name, ()):
                dirty.add(resource)
            for resource, occupation in candidate.footprints[name]:
                dirty.add(resource)
                added.setdefault(resource, []).append(occupation)
        for resource in dirty:
            entries = [
                o
                for o in base.index.get(resource, ())
                if o.packet not in changed
            ]
            new = added.get(resource)
            if new:
                entries.extend(new)
                entries.sort(key=_occupation_start)
            if entries:
                base.index[resource] = entries
            else:
                base.index.pop(resource, None)
        for name in changed:
            # The candidate is consumed by the promotion, so its footprint
            # lists can be adopted without copying.
            base.footprints[name] = candidate.footprints[name]
        for name in candidate.replay:
            # Schedules are refreshed for every replayed packet: an equal
            # footprint pins the delivery time but not e.g. the injection
            # time, which later window builds read.
            base.schedules[name] = candidate.schedules[name]
        for resource, change in candidate.link_busy_delta.items():
            updated = base.link_busy.get(resource, 0.0) + change
            if updated == 0.0:
                base.link_busy.pop(resource, None)
            else:
                base.link_busy[resource] = updated
        assert candidate.metrics is not None and candidate.tile_of is not None
        base.metrics = candidate.metrics
        base.mapping = candidate.mapping
        base.tile_of = candidate.tile_of
        base.drift += candidate.outcome.estimated_error
        base.swaps_since_resync += 1
        self._base = base

    # ------------------------------------------------------------------
    # Candidate pricing
    # ------------------------------------------------------------------
    def _resync_candidate(
        self, base: _BaseState, candidate_mapping: Mapping
    ) -> _Candidate:
        """Price a swap by full replay; the delta absorbs any tracked drift."""
        fresh = self._full_state(candidate_mapping)
        delta = MetricVector(
            CDCM_METRIC_NAMES,
            tuple(
                new - old
                for new, old in zip(fresh.metrics.values, base.metrics.values)
            ),
        )
        outcome = RepairOutcome(
            exact=True,
            resynced=True,
            replayed=self.cdcg.num_packets,
            estimated_error=0.0,
        )
        return _Candidate(
            mapping=candidate_mapping,
            origin=base,
            delta=delta,
            outcome=outcome,
            fresh=fresh,
        )

    def _repair_candidate(
        self,
        base: _BaseState,
        candidate_mapping: Mapping,
        core_a: Optional[str],
        core_b: Optional[str],
    ) -> _Candidate:
        """Price a swap by bounded partial replay against the frozen base."""
        cdcg = self.cdcg
        moved = {core for core in (core_a, core_b) if core is not None}
        new_tile_of = dict(base.tile_of)
        for core in moved:
            if core in new_tile_of:
                new_tile_of[core] = candidate_mapping.tile_of(core)
        # Cores outside the application may sit on the swapped tiles; they
        # influence nothing the CDCG replays.
        seen: Set[str] = set()
        seeds: List[str] = []
        for core in moved:
            for name in self._packets_of_core.get(core, ()):
                if name not in seen:
                    seen.add(name)
                    seeds.append(name)

        # Per touched resource, the earliest instant a seed's reservation can
        # change there: its old occupation start (removal) on the old route,
        # its injection time plus the zero-contention head latency to that
        # hop (the earliest any new occupation can start) on the new one.
        # Grants are made in start order, so occupations starting before
        # that window cannot move — they stay frozen in the background
        # instead of joining the replay.
        window: Dict[Resource, float] = {}
        touched: Set[Resource] = set()
        for name in seeds:
            for resource, occupation in base.footprints.get(name, ()):
                touched.add(resource)
                known = window.get(resource)
                if known is None or occupation.start < known:
                    window[resource] = occupation.start
            packet = cdcg.packet(name)
            injection = base.schedules[name].injection_time
            for resource, head_latency in self._route_resources(
                new_tile_of[packet.source], new_tile_of[packet.target]
            ):
                touched.add(resource)
                earliest = injection + head_latency
                known = window.get(resource)
                if known is None or earliest < known:
                    window[resource] = earliest

        replay: Set[str] = set(seeds)
        # Pre-pull the *binding cone*: successors whose ready floor is set
        # by a packet already being replayed (base delivery == successor
        # floor).  When a seed's delivery moves, exactly these cascade —
        # predicting them from the base schedule saves the growth fixpoint
        # below a full subset re-replay per cascade level.
        stack = list(seeds)
        while stack:
            name = stack.pop()
            delivery = base.schedules[name].delivery_time
            for successor in cdcg.successors(name):
                if successor in replay:
                    continue
                floor = max(
                    base.schedules[pred].delivery_time
                    for pred in cdcg.predecessors(successor)
                )
                if floor == delivery:
                    replay.add(successor)
                    stack.append(successor)
        replay |= self._occupants_after(base, window)

        # Replay against the frozen rest, then adaptively extend the replay
        # set: with the dependence successors of any delivery that moved
        # (the frozen ready floors must stay consistent), and — while the
        # ``closure_depth`` round budget and the ``max_replay_fraction`` cap
        # last — with the frontier packets themselves, the frozen grants a
        # full replay would have re-arbitrated.  Each extension round
        # either empties the frontier (the step becomes provably exact) or
        # exhausts the budget, leaving a drift-tracked bounded step.
        cap = max(
            len(replay),
            int(cdcg.num_packets * self.policy.max_replay_fraction),
        )
        rounds = self.policy.closure_depth
        # The frozen background is patched, not rebuilt, as the replay set
        # grows: only the resources of newly pulled-in packets need their
        # occupation lists re-filtered.
        bg_map: Dict[Resource, List[Occupation]] = {}
        to_refresh: Set[Resource] = set(touched)
        for name in replay:
            to_refresh.update(r for r, _ in base.footprints.get(name, ()))
        while True:
            while True:
                floors = self._ready_floors(base, replay)
                for resource in to_refresh:
                    occupations = [
                        o
                        for o in base.index.get(resource, ())
                        if o.packet not in replay
                    ]
                    if occupations:
                        bg_map[resource] = occupations
                    else:
                        bg_map.pop(resource, None)
                to_refresh.clear()
                background = FrozenOccupations(bg_map)
                sub = self.scheduler.schedule_subset(
                    cdcg, new_tile_of, replay, floors, background
                )
                # A replayed delivery shift invalidates a frozen successor
                # only when it changes the successor's binding ready floor
                # (ready = max over predecessor deliveries) — with several
                # predecessors the moved one is rarely binding, so the true
                # cascade is much shallower than the dependence cone.
                grew: Set[str] = set()
                for name, schedule in sub.schedules.items():
                    if (
                        schedule.delivery_time
                        == base.schedules[name].delivery_time
                    ):
                        continue
                    for successor in cdcg.successors(name):
                        if successor in replay or successor in grew:
                            continue
                        old_floor = 0.0
                        new_floor = 0.0
                        for pred in cdcg.predecessors(successor):
                            old_delivery = base.schedules[pred].delivery_time
                            if old_delivery > old_floor:
                                old_floor = old_delivery
                            replayed = sub.schedules.get(pred)
                            new_delivery = (
                                replayed.delivery_time
                                if replayed is not None
                                else old_delivery
                            )
                            if new_delivery > new_floor:
                                new_floor = new_delivery
                        if new_floor != old_floor:
                            grew.add(successor)
                if not grew:
                    break
                for name in grew:
                    to_refresh.update(
                        r for r, _ in base.footprints.get(name, ())
                    )
                replay |= grew

            # Frontier: frozen grants at or after the earliest replayed
            # change on a resource would have been re-arbitrated by a full
            # replay — their absence proves the step exact.
            affected: Dict[Resource, float] = {}
            shift: Dict[Resource, float] = {}
            changed: Set[str] = set()
            for name in replay:
                old_footprint = base.footprints.get(name, [])
                new_footprint = sub.footprints[name]
                if old_footprint == new_footprint:
                    continue  # byte-identical reservations constrain nobody
                changed.add(name)
                aligned = len(old_footprint) == len(new_footprint) and all(
                    o[0] == n[0]
                    for o, n in zip(old_footprint, new_footprint)
                )
                if aligned:
                    # Same route: entries pair up positionally, and the
                    # byte-identical pairs constrain nobody either.
                    for (resource, old_occ), (_, new_occ) in zip(
                        old_footprint, new_footprint
                    ):
                        if old_occ == new_occ:
                            continue
                        start = (
                            old_occ.start
                            if old_occ.start < new_occ.start
                            else new_occ.start
                        )
                        known = affected.get(resource)
                        if known is None or start < known:
                            affected[resource] = start
                        shift[resource] = shift.get(resource, 0.0) + abs(
                            new_occ.end - old_occ.end
                        )
                    continue
                old_by = {r: o for r, o in old_footprint}
                new_by = {r: o for r, o in new_footprint}
                for resource, occupation in old_footprint:
                    known = affected.get(resource)
                    if known is None or occupation.start < known:
                        affected[resource] = occupation.start
                    other = new_by.get(resource)
                    moved_by = (
                        abs(other.end - occupation.end)
                        if other is not None
                        else occupation.end - occupation.start
                    )
                    shift[resource] = shift.get(resource, 0.0) + moved_by
                for resource, occupation in new_footprint:
                    known = affected.get(resource)
                    if known is None or occupation.start < known:
                        affected[resource] = occupation.start
                    if resource not in old_by:
                        shift[resource] = shift.get(resource, 0.0) + (
                            occupation.end - occupation.start
                        )
            frontier: Set[str] = set()
            frontier_resources: Set[Resource] = set()
            for resource, start in affected.items():
                blocked = background.starting_at_or_after(resource, start)
                if blocked:
                    frontier_resources.add(resource)
                    frontier.update(o.packet for o in blocked)
            exact = not frontier
            if (
                exact
                or rounds <= 0
                or len(replay) + len(frontier) > cap
            ):
                break
            rounds -= 1
            for name in frontier:
                to_refresh.update(r for r, _ in base.footprints.get(name, ()))
            replay |= frontier
        self.stats.replayed_packets += len(replay)

        # Tracked metric vector of the candidate.  The frozen packets' max
        # delivery is the tracked execution time unless a replayed packet
        # held it — only then is the full scan needed.
        base_execution = base.metrics["time"]
        if any(
            base.schedules[name].delivery_time >= base_execution
            for name in replay
        ):
            execution_time = max(
                (
                    schedule.delivery_time
                    for name, schedule in base.schedules.items()
                    if name not in replay
                ),
                default=0.0,
            )
        else:
            execution_time = base_execution
        for schedule in sub.schedules.values():
            if schedule.delivery_time > execution_time:
                execution_time = schedule.delivery_time
        technology = self.platform.technology
        dynamic_delta = 0.0
        for name in seeds:
            old_hops = base.schedules[name].hop_count
            new_hops = sub.schedules[name].hop_count
            if old_hops != new_hops:
                bits = cdcg.packet(name).bits
                dynamic_delta += communication_dynamic_energy(
                    bits, new_hops, technology, self.include_local
                ) - communication_dynamic_energy(
                    bits, old_hops, technology, self.include_local
                )
        dynamic = base.metrics["dynamic_energy"] + dynamic_delta
        static = self._static_power * execution_time
        # Congestion component: only the ``changed`` packets moved busy time
        # between links, so the tracked per-link numerators are patched by a
        # small delta dict and the max rescanned (division by the shared
        # execution time is monotone, so max(busy)/t == max(busy/t)).
        link_busy_delta: Dict[Resource, float] = {}
        for name in changed:
            for resource, occupation in base.footprints.get(name, ()):
                if isinstance(resource, LinkResource):
                    link_busy_delta[resource] = (
                        link_busy_delta.get(resource, 0.0) - occupation.duration
                    )
            for resource, occupation in sub.footprints[name]:
                if isinstance(resource, LinkResource):
                    link_busy_delta[resource] = (
                        link_busy_delta.get(resource, 0.0) + occupation.duration
                    )
        max_busy = 0.0
        for resource, busy in base.link_busy.items():
            change = link_busy_delta.get(resource)
            if change is not None:
                busy += change
            if busy > max_busy:
                max_busy = busy
        for resource, change in link_busy_delta.items():
            if resource not in base.link_busy and change > max_busy:
                max_busy = change
        utilisation = max_busy / execution_time if execution_time > 0 else 0.0
        metrics = MetricVector(
            CDCM_METRIC_NAMES,
            (dynamic + static, execution_time, dynamic, static, utilisation),
        )
        delta = MetricVector(
            CDCM_METRIC_NAMES,
            tuple(
                new - old
                for new, old in zip(metrics.values, base.metrics.values)
            ),
        )

        if exact:
            self.stats.exact_steps += 1
            error = 0.0
        else:
            self.stats.bounded_steps += 1
            error = self._estimate_error(shift, frontier_resources)
        outcome = RepairOutcome(
            exact=exact,
            resynced=False,
            replayed=len(replay),
            estimated_error=error,
        )
        return _Candidate(
            mapping=candidate_mapping,
            origin=base,
            delta=delta,
            outcome=outcome,
            tile_of=new_tile_of,
            replay=frozenset(replay),
            changed=frozenset(changed),
            schedules=sub.schedules,
            footprints=sub.footprints,
            metrics=metrics,
            link_busy_delta=link_busy_delta,
        )

    # ------------------------------------------------------------------
    # Repair-set helpers
    # ------------------------------------------------------------------
    def _route_resources(
        self, source_tile: int, target_tile: int
    ) -> List[Tuple[Resource, float]]:
        """Contention resources of one route, with their minimum head latency.

        Each entry pairs a resource of the candidate route with the earliest
        offset after the injection instant at which the packet's head can
        reach it under zero contention (``(position + 1) x (t_l + t_r)`` for
        the output at hop *position*) — a sound tightening of the replay
        window on the new route.  Cached per tile pair — routes are fixed,
        and the window build walks a handful of routes on every delta.
        Callers must not mutate the returned list.
        """
        key = (source_tile, target_tile)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        from repro.noc.resources import LinkResource, LocalLinkResource

        hop_latency = self._link_time + self._routing_time
        path = self.scheduler.route_table.path(source_tile, target_tile)
        resources: List[Tuple[Resource, float]] = [
            (LinkResource(a, b), (position + 1) * hop_latency)
            for position, (a, b) in enumerate(zip(path, path[1:]))
        ]
        if self._serialize_local:
            resources.append((LocalLinkResource(source_tile), 0.0))
            resources.append(
                (LocalLinkResource(target_tile), len(path) * hop_latency)
            )
        self._route_cache[key] = resources
        return resources

    @staticmethod
    def _occupants_after(
        base: _BaseState, window: Dict[Resource, float]
    ) -> Set[str]:
        """Packets holding a base occupation inside a per-resource time window.

        Grants on a contention resource are made in start order, so an
        occupation starting before the window — the earliest instant a
        replayed reservation can change there — keeps its grant under any
        full replay.  Those packets stay frozen; only occupations starting
        at or inside the window can move.
        """
        names: Set[str] = set()
        for resource, earliest in window.items():
            occupations = base.index.get(resource)
            if not occupations:
                continue
            starts = [o.start for o in occupations]
            for occupation in occupations[bisect_left(starts, earliest) :]:
                names.add(occupation.packet)
        return names

    def _ready_floors(
        self, base: _BaseState, replay: Set[str]
    ) -> Dict[str, float]:
        """Frozen ready-time floors: old deliveries of out-of-replay predecessors."""
        floors: Dict[str, float] = {}
        for name in replay:
            floor = 0.0
            for predecessor in self.cdcg.predecessors(name):
                if predecessor not in replay:
                    delivery = base.schedules[predecessor].delivery_time
                    if delivery > floor:
                        floor = delivery
            if floor > 0.0:
                floors[name] = floor
        return floors

    def _estimate_error(
        self,
        shift: Dict[Resource, float],
        frontier_resources: Set[Resource],
    ) -> float:
        """Conservative scalar error estimate of one inexact bounded step.

        Replayed packets are re-priced, so their shifts are *accounted*; the
        only error source is the frontier — frozen grants a full replay
        would have re-arbitrated.  Per frontier resource the estimate
        charges how far the replayed reservations there actually moved (the
        accumulated end-time shift, with vacated or newly intruding
        occupations charged at full length) — the serialisation chain
        behind them can move by at most that much.  The time error
        propagates to the energy components through the static power, then
        through the engine's scalarisation weights.  A documented
        heuristic, not a proven bound — which is exactly why the resync
        contract exists.
        """
        time_error = sum(shift[r] for r in frontier_resources)
        energy_error = self._static_power * time_error
        error_by_name = {
            "energy": energy_error,
            "time": time_error,
            "dynamic_energy": 0.0,
            "static_energy": energy_error,
        }
        return sum(
            abs(weight) * error_by_name.get(name, 0.0)
            for name, weight in self.weights.items()
        )


__all__ = [
    "DEFAULT_REPAIR",
    "RepairPolicy",
    "RepairStats",
    "RepairOutcome",
    "CdcmRepairEngine",
]
