"""Evaluation contexts — the dynamic half of the evaluation engine.

An :class:`EvaluationContext` binds one application to one platform and is the
single object every search engine prices mappings through.  Since the
vector-objective redesign the memo stores **named component vectors**
(:class:`~repro.core.metrics.MetricVector`) rather than scalars — the scalar
operations are derived views, which is what lets a weight sweep re-scalarise
an already-priced population for free.  The context exposes:

* :meth:`EvaluationContext.metrics` — the component vector of a mapping
  (energy terms, CDCM makespan), memoised in an LRU keyed by the (immutable,
  hashable) mapping assignment so revisited candidates are free;
* :meth:`EvaluationContext.cost` — the scalar objective value, derived by
  applying the context's :attr:`EvaluationContext.weights` to the memoised
  vector (for the default weights this is bit-identical to the pre-vector
  scalar memo);
* :meth:`EvaluationContext.delta` — for contexts that support it, the *exact*
  incremental cost of swapping the contents of two tiles, computed from the
  edges incident to the moved cores only (O(degree) instead of O(edges));
  :meth:`EvaluationContext.metric_delta` is the per-component variant
  scalarisation views price swaps through;
* :meth:`EvaluationContext.evaluate_batch` /
  :meth:`EvaluationContext.evaluate_metrics_batch` — bulk pricing of many
  candidates (population-based engines, sweep drivers), sharing the same
  memo.  Where the uncached candidates of a batch are priced is pluggable:
  pass a :class:`~repro.eval.parallel.BatchBackend` (``backend=...`` at
  construction or per call) to fan them out over a process pool; the default
  prices inline.

Contexts are *picklable-light*: pickling keeps the application graph and the
platform but drops the memo, the backend and the route table — the unpickling
process rebuilds the table through the process-wide
:func:`~repro.eval.route_table.get_route_table` cache.  The platform carries
the full topology identity (mesh, torus or
:class:`~repro.noc.topology.IrregularTopology` — anything with a stable
``cache_token``), so a worker's rebuilt table is bit-identical to the
parent's for any topology, not just meshes.  This is what lets
:class:`~repro.eval.parallel.ProcessPoolBackend` ship contexts to workers
without serialising O(n^2) route arrays.

Two concrete contexts mirror the paper's two models:

* :class:`CwmEvaluationContext` prices mappings under the communication
  weighted model (equation 3) straight off the precomputed
  :class:`~repro.eval.route_table.RouteTable` bit-energy table, and supports
  exact swap deltas — CWM cost is a sum of independent per-edge terms, so a
  tile swap only reprices the edges incident to the two moved cores;
* :class:`CdcmEvaluationContext` prices mappings under the communication
  dependence and computation model.  Contention makes CDCM cost global (a
  swap can reshuffle every packet's serialisation), so full evaluations keep
  the complete replay — but swap deltas are priced by the *bounded repair*
  engine (:mod:`repro.eval.repair`) behind the ``repair`` gate: only the
  packets a swap can plausibly affect are rescheduled against a frozen
  background, with periodic full-replay resyncs bounding the drift.  The
  gate is default-on (:data:`~repro.eval.repair.DEFAULT_REPAIR`) and pinned
  off by :class:`~repro.analysis.comparison.ComparisonConfig`, mirroring
  ``use_delta`` / ``vectorize``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

import numpy as np

from repro.core.cdcm import CdcmEvaluator, CdcmReport
from repro.core.mapping import Mapping
from repro.core.metrics import (
    CDCM_METRIC_NAMES,
    CWM_METRIC_NAMES,
    MetricVector,
    scalarisation_weights,
)
from repro.energy.technology import Technology
from repro.eval.route_table import (
    RouteTable,
    get_route_table,
    is_shared_route_table,
)
from repro.eval.repair import DEFAULT_REPAIR, CdcmRepairEngine, RepairPolicy
from repro.eval.vector import DEFAULT_VECTORIZE, VectorizedCwmKernel
from repro.graphs.cdcg import CDCG
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform
from repro.utils.errors import ConfigurationError, MappingError

if TYPE_CHECKING:  # pragma: no cover - import only used by type checkers
    from repro.eval.parallel import BatchBackend

#: Default size of the per-context cost memo.
DEFAULT_CACHE_SIZE = 4096


class CacheInfo(NamedTuple):
    """Statistics of a context's cost memo (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    currsize: int
    maxsize: int


class EvaluationContext(ABC):
    """Shared pricing interface for all mapping search engines.

    Subclasses implement :meth:`_compute_metrics` (the full per-mapping
    component vector) and declare :attr:`metric_names` plus a default
    :attr:`weights` view; the base class provides the LRU vector memo, the
    derived scalar operations, batch evaluation (optionally fanned out over
    a :class:`~repro.eval.parallel.BatchBackend`) and the (optional) delta
    protocol.  Engines discover delta support through the ``supports_delta``
    attribute — see :func:`repro.search.base.delta_callable` — and batch
    support through ``supports_batch`` / :func:`repro.search.base.batch_callable`;
    Pareto tooling consumes the vector half of the protocol
    (:meth:`metrics` / :meth:`evaluate_metrics_batch`).

    Parameters
    ----------
    cache_size:
        Size of the metric-vector memo (0 disables memoisation).
    backend:
        Default :class:`~repro.eval.parallel.BatchBackend` used by
        :meth:`evaluate_batch`; ``None`` prices batches inline.
    """

    #: Human-readable identifier used in reports and benchmark tables.
    name: str = "context"

    #: Whether :meth:`delta` returns exact incremental costs.
    supports_delta: bool = False

    #: Whether :meth:`metric_delta` returns exact per-component deltas
    #: (the capability scalarisation views need to re-weight swap pricing).
    supports_metric_delta: bool = False

    #: Whether inline (backend-free) batches should be deduplicated and
    #: priced through :meth:`_compute_metrics_chunk` instead of per-candidate
    #: :meth:`metrics` calls.  Contexts with an array pricing path (see
    #: :mod:`repro.eval.vector`) set this when their ``vectorize`` gate is
    #: on; the base default keeps the legacy per-candidate inline path.
    _chunked_inline: bool = False

    #: Names of the components :meth:`metrics` produces, in scalarisation
    #: accumulation order.  Set by concrete subclasses.
    metric_names: Tuple[str, ...] = ()

    #: The weight view :meth:`cost` applies to memoised vectors.  Set by
    #: concrete subclasses; treat as read-only.
    weights: Dict[str, float] = {}

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional["BatchBackend"] = None,
    ) -> None:
        if cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be non-negative, got {cache_size}"
            )
        self._cache_size = cache_size
        self._backend = backend
        self._memo: "OrderedDict[Mapping, MetricVector]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def backend(self) -> Optional["BatchBackend"]:
        """The default batch backend (``None`` means inline pricing)."""
        return self._backend

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def metrics(self, mapping: Union[Mapping, Dict[str, int]]) -> MetricVector:
        """Named component vector of *mapping*, memoised.

        This is the primitive every other pricing operation derives from:
        :meth:`cost` scalarises the result with the context's
        :attr:`weights`, and scalarisation views
        (:class:`~repro.core.objective.ScalarisedObjective`) apply their own
        weight vectors to the *same* memoised vectors — so sweeping K weight
        vectors over an already-priced population costs zero additional
        pricing passes.
        """
        if self._cache_size == 0 or not isinstance(mapping, Mapping):
            self._misses += 1
            return self._compute_metrics(mapping)
        memo = self._memo
        vector = memo.get(mapping)
        if vector is None:
            self._misses += 1
            vector = self._compute_metrics(mapping)
            memo[mapping] = vector
            if len(memo) > self._cache_size:
                memo.popitem(last=False)
        else:
            self._hits += 1
            memo.move_to_end(mapping)
        return vector

    def cost(self, mapping: Union[Mapping, Dict[str, int]]) -> float:
        """Scalar objective value of *mapping* (lower is better), memoised.

        Derived: the context's :attr:`weights` applied to
        :meth:`metrics` — bit-identical to the pre-vector scalar memo for
        the default single-metric weight views.
        """
        return self._scalarise(self.metrics(mapping))

    def _scalarise(self, vector: MetricVector) -> float:
        """Apply the context's weight view to a component vector."""
        if not self.weights:
            # An empty view would silently price every mapping at 0.0 — a
            # subclass forgot to set self.weights in its constructor.
            raise ConfigurationError(
                f"{type(self).__name__} defines no scalarisation weights; "
                f"set self.weights (a non-empty {{metric_name: weight}} "
                f"dict over metric_names) in the constructor"
            )
        return vector.weighted_sum(self.weights, strict=False)

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Exact cost change of ``mapping.swap_tiles(tile_a, tile_b)``.

        Only available when ``supports_delta`` is True; the base class always
        raises so engines that ignore the capability flag fail loudly instead
        of silently pricing with a wrong model.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental delta "
            f"evaluation; check supports_delta before calling delta()"
        )

    def metric_delta(
        self, mapping: Mapping, tile_a: int, tile_b: int
    ) -> MetricVector:
        """Exact per-component change of ``mapping.swap_tiles(tile_a, tile_b)``.

        Only available when ``supports_metric_delta`` is True; scalarisation
        views use it to re-weight incremental swap pricing without a full
        re-evaluation.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental metric-delta "
            f"evaluation; check supports_metric_delta before calling "
            f"metric_delta()"
        )

    def scalarised(
        self, weights: Dict[str, float], name: Optional[str] = None
    ):
        """A :class:`~repro.core.objective.ScalarisedObjective` view over this context.

        The view shares this context's memo: sweeping several weight vectors
        re-uses one pricing pass per unique candidate.
        """
        from repro.core.objective import ScalarisedObjective

        return ScalarisedObjective(self, weights, name=name)

    def evaluate_metrics_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend: Optional["BatchBackend"] = None,
    ) -> List[MetricVector]:
        """Component vectors of several candidates in one call (shares the memo).

        Candidates already in the memo are answered from it; the misses are
        deduplicated and priced as one chunk — by the backend when one is
        active, else inline through :meth:`_compute_metrics_chunk` (which the
        vectorised CWM context turns into a single array-kernel call) — then
        written back to the memo.  Vectors are bit-identical to per-candidate
        :meth:`metrics` calls regardless of the backend — only *where* the
        arithmetic runs changes.

        Parameters
        ----------
        mappings:
            Candidates to price (:class:`~repro.core.mapping.Mapping`
            objects or plain assignment dicts).
        backend:
            Override of the context's default backend for this call; with
            both ``None`` the batch is priced inline.

        Returns
        -------
        list of MetricVector
            One component vector per candidate, in input order.
        """
        active = backend if backend is not None else self._backend
        if active is None and not self._chunked_inline:
            return [self.metrics(mapping) for mapping in mappings]

        items = list(mappings)
        memo = self._memo
        use_memo = self._cache_size > 0
        vectors: List[Optional[MetricVector]] = [None] * len(items)
        # Unique misses in first-seen order; duplicate Mappings collapse to
        # one computation (dict candidates are not hashable, so each prices
        # on its own).
        unique: List[Any] = []
        targets: List[List[int]] = []
        seen: Dict[Mapping, int] = {}
        for index, mapping in enumerate(items):
            if isinstance(mapping, Mapping):
                if use_memo:
                    cached = memo.get(mapping)
                    if cached is not None:
                        self._hits += 1
                        memo.move_to_end(mapping)
                        vectors[index] = cached
                        continue
                slot = seen.get(mapping)
                if slot is not None:
                    targets[slot].append(index)
                    continue
                seen[mapping] = len(unique)
            unique.append(mapping)
            targets.append([index])
        if unique:
            computed = (
                self._compute_metrics_chunk(unique)
                if active is None
                else active.evaluate_metrics(self, unique)
            )
            for mapping, vector, indices in zip(unique, computed, targets):
                self._misses += 1
                for index in indices:
                    vectors[index] = vector
                if use_memo and isinstance(mapping, Mapping):
                    memo[mapping] = vector
                    if len(memo) > self._cache_size:
                        memo.popitem(last=False)
        return vectors  # type: ignore[return-value]  # every slot is filled

    def evaluate_batch(
        self,
        mappings: Iterable[Union[Mapping, Dict[str, int]]],
        backend: Optional["BatchBackend"] = None,
    ) -> List[float]:
        """Price several candidates in one call (shares the memo).

        The scalar view of :meth:`evaluate_metrics_batch`: component vectors
        are priced (or recalled) once and scalarised with the context's
        :attr:`weights`.  Costs are bit-identical to per-candidate
        :meth:`cost` calls regardless of the backend — only *where* the
        arithmetic runs changes.

        Parameters
        ----------
        mappings:
            Candidates to price (:class:`~repro.core.mapping.Mapping`
            objects or plain assignment dicts).
        backend:
            Override of the context's default backend for this call; with
            both ``None`` the batch is priced inline.

        Returns
        -------
        list of float
            One cost per candidate, in input order.
        """
        active = backend if backend is not None else self._backend
        if active is None:
            return [self.cost(mapping) for mapping in mappings]
        return [
            self._scalarise(vector)
            for vector in self.evaluate_metrics_batch(mappings, backend=active)
        ]

    def _compute_cost(self, mapping: Union[Mapping, Dict[str, int]]) -> float:
        """Uncached objective value of *mapping* (derived from the vector)."""
        return self._scalarise(self._compute_metrics(mapping))

    @abstractmethod
    def _compute_metrics(
        self, mapping: Union[Mapping, Dict[str, int]]
    ) -> MetricVector:
        """Uncached component vector of *mapping*."""

    def _compute_metrics_chunk(
        self, mappings: Sequence[Union[Mapping, Dict[str, int]]]
    ) -> List[MetricVector]:
        """Uncached vectors of a chunk of candidates, in order.

        The unit of work of batch pricing: backends
        (:class:`~repro.eval.parallel.SerialBackend` inline, each
        :class:`~repro.eval.parallel.ProcessPoolBackend` worker per task) and
        the inline dedup path all price misses through this method.  The base
        implementation loops per candidate; contexts with an array pricing
        path (:class:`CwmEvaluationContext` when ``vectorize`` is on)
        override it to price the whole chunk with one kernel call —
        bit-identical by construction, so *where* a chunk is priced never
        changes a value.
        """
        return [self._compute_metrics(mapping) for mapping in mappings]

    # ------------------------------------------------------------------
    # Memo bookkeeping
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the cost memo."""
        return CacheInfo(self._hits, self._misses, len(self._memo), self._cache_size)

    def clear_cache(self) -> None:
        """Drop all memoised costs and zero the statistics."""
        self._memo.clear()
        self._hits = 0
        self._misses = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CwmEvaluationContext(EvaluationContext):
    """Route-table-backed CWM pricing with exact O(degree) swap deltas.

    Parameters
    ----------
    cwg:
        Application communication graph.
    platform:
        Target architecture; supplies mesh, routing and technology.
    include_local:
        Whether local core-router links contribute ``ECbit`` per bit.
    route_table:
        Optional pre-built table (must match *platform* and *include_local*);
        by default the process-wide shared table is used.
    cache_size:
        Size of the cost memo (0 disables it).
    backend:
        Default :class:`~repro.eval.parallel.BatchBackend` for
        :meth:`EvaluationContext.evaluate_batch`; ``None`` prices inline.
    vectorize:
        Whether batch misses are priced by the NumPy array kernel
        (:class:`~repro.eval.vector.VectorizedCwmKernel`) instead of the
        per-candidate scalar loop.  ``None`` (the default) follows
        :data:`~repro.eval.vector.DEFAULT_VECTORIZE` — on, the right choice
        for search, since the kernel is bit-identical to the scalar path by
        construction.  :class:`~repro.analysis.comparison.ComparisonConfig`
        pins it off for the paper-reproduction rows, mirroring the
        ``use_delta`` convention.  Per-candidate pricing (:meth:`cost`,
        :meth:`metrics`, :meth:`delta`) always stays scalar.

    Notes
    -----
    Pickling is *light*: the memo and the backend are always dropped, and
    the process-shared route table is dropped too — the unpickled context
    rebuilds an identical one via
    :func:`~repro.eval.route_table.get_route_table` (the contract the
    process-pool backend relies on).  A *custom* table (one that is not the
    shared instance, e.g. built for a stateful routing algorithm) travels
    with the pickle so pooled pricing stays bit-identical to serial.
    """

    supports_delta = True
    supports_metric_delta = True
    metric_names = CWM_METRIC_NAMES

    def __init__(
        self,
        cwg: CWG,
        platform: Platform,
        include_local: bool = True,
        route_table: Optional[RouteTable] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional["BatchBackend"] = None,
        vectorize: Optional[bool] = None,
    ) -> None:
        super().__init__(cache_size, backend)
        self.cwg = cwg
        self.platform = platform
        self.include_local = include_local
        self.route_table = (
            route_table
            if route_table is not None
            else get_route_table(platform, include_local=include_local)
        )
        self.name = f"cwm({cwg.name})"
        self.weights = {"dynamic_energy": 1.0}
        self.vectorize = (
            DEFAULT_VECTORIZE if vectorize is None else bool(vectorize)
        )
        self._chunked_inline = self.vectorize
        # The kernel binds lazily on the first chunk: building it densifies
        # lazy route tables, which sparse per-candidate use should not pay.
        self._kernel: Optional[VectorizedCwmKernel] = None
        # Flat edge arrays: iterating tuples beats re-walking the CWG object
        # graph on every evaluation, and edge indices give delta() a compact
        # per-core incidence list.
        self._edges: List[Tuple[str, str, int]] = [
            (comm.source, comm.target, comm.bits) for comm in cwg.communications()
        ]
        incident: Dict[str, List[int]] = {}
        for index, (source, target, _) in enumerate(self._edges):
            incident.setdefault(source, []).append(index)
            incident.setdefault(target, []).append(index)
        self._incident = incident
        self._flat_energy = self.route_table.flat_bit_energy()

    # ------------------------------------------------------------------
    # Pickling (picklable-light: workers rebuild tables locally)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # The shared table is dropped (the worker rebuilds an identical one);
        # a custom table must travel, or pooled pricing could silently
        # diverge from serial pricing for non-standard routing.
        shared = is_shared_route_table(
            self.route_table, self.platform, self.include_local
        )
        return {
            "cwg": self.cwg,
            "platform": self.platform,
            "include_local": self.include_local,
            "cache_size": self._cache_size,
            "route_table": None if shared else self.route_table,
            "vectorize": self.vectorize,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(  # type: ignore[misc]  # rebuild = re-run the constructor
            state["cwg"],
            state["platform"],
            include_local=state["include_local"],
            route_table=state.get("route_table"),
            cache_size=state["cache_size"],
            vectorize=state.get("vectorize"),
        )

    # ------------------------------------------------------------------
    def _tile_assignments(
        self, mapping: Union[Mapping, Dict[str, int]]
    ) -> Dict[str, int]:
        n = self.route_table.num_tiles
        if isinstance(mapping, Mapping):
            tiles = mapping.assignments()
            if mapping.num_tiles == n:
                return tiles  # already range-checked at construction
        else:
            tiles = dict(mapping)
        for core, tile in tiles.items():
            if not 0 <= tile < n:
                raise MappingError(
                    f"core {core!r} mapped to tile {tile}, outside the "
                    f"{n}-tile {self.platform.mesh}"
                )
        return tiles

    def _compute_metrics(
        self, mapping: Union[Mapping, Dict[str, int]]
    ) -> MetricVector:
        # Equation 3 over snapshot edge arrays — the hot-loop twin of
        # :meth:`repro.core.cwm.CwmEvaluator.cost`, which prices per call from
        # the live (mutable) CWG and therefore cannot bind these arrays.  The
        # two are kept value-identical by construction (same route table,
        # same edge order) and pinned by tests/test_eval.py.
        tiles = self._tile_assignments(mapping)
        n = self.route_table.num_tiles
        energy = self._flat_energy
        total = 0.0
        try:
            if energy is not None:
                for source, target, bits in self._edges:
                    total += bits * energy[tiles[source] * n + tiles[target]]
            else:
                bit_energy = self.route_table.bit_energy
                for source, target, bits in self._edges:
                    total += bits * bit_energy(tiles[source], tiles[target])
        except KeyError as exc:
            raise MappingError(
                f"mapping does not place core {exc.args[0]!r} of application "
                f"{self.cwg.name!r}"
            ) from exc
        return MetricVector(CWM_METRIC_NAMES, (total,))

    def vector_kernel(self) -> VectorizedCwmKernel:
        """The context's array pricing kernel (built on first use).

        Bound to the same edge snapshot, route table and accumulation order
        as :meth:`_compute_metrics`, so kernel prices are bit-identical to
        scalar prices.  Building the kernel densifies a lazy route table
        (:meth:`~repro.eval.route_table.RouteTable.warm_dense`), which is why
        it is deferred to the first batch rather than paid at construction.
        """
        kernel = self._kernel
        if kernel is None:
            kernel = VectorizedCwmKernel.from_edges(
                self._edges,
                self.route_table,
                sorted(self.cwg.cores),
                name=f"cwm-kernel({self.cwg.name})",
            )
            self._kernel = kernel
        return kernel

    def _compute_metrics_chunk(
        self, mappings: Sequence[Union[Mapping, Dict[str, int]]]
    ) -> List[MetricVector]:
        """Chunk pricing: one kernel gather per chunk when vectorised.

        Candidates are validated exactly like the scalar path (same
        :class:`~repro.utils.errors.MappingError` conditions), stacked into a
        ``(pop, cores)`` array and priced by :meth:`vector_kernel` in one
        call.  With ``vectorize`` off, falls back to the base per-candidate
        loop.
        """
        items = list(mappings)
        if not self.vectorize or not items:
            return [self._compute_metrics(mapping) for mapping in items]
        kernel = self.vector_kernel()
        order = kernel.core_order
        required = kernel.required_cores
        rows = np.zeros((len(items), len(order)), dtype=np.int64)
        for row, mapping in enumerate(items):
            tiles = self._tile_assignments(mapping)
            try:
                rows[row] = [tiles[core] for core in order]
            except KeyError:
                # Isolated cores (no incident edges) may be unplaced — the
                # scalar accumulator never reads them, so neither do we.
                for column, core in enumerate(order):
                    tile = tiles.get(core)
                    if tile is None:
                        if core in required:
                            raise MappingError(
                                f"mapping does not place core {core!r} of "
                                f"application {self.cwg.name!r}"
                            )
                        continue
                    rows[row, column] = tile
        return [
            MetricVector(CWM_METRIC_NAMES, (total,))
            for total in kernel.price(rows)
        ]

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Exact CWM cost change of swapping the contents of two tiles.

        Only the CWG edges incident to the cores on ``tile_a``/``tile_b`` can
        change price, so the swap is priced in O(degree) — the enabler of the
        fast annealing path.  Either tile may be empty; swapping two empty
        tiles (or a tile with itself) costs exactly 0.
        """
        if not isinstance(mapping, Mapping):
            mapping = Mapping(mapping)
        n = self.route_table.num_tiles
        for tile in (tile_a, tile_b):
            if not 0 <= tile < n:
                raise MappingError(
                    f"tile {tile} outside the {n}-tile {self.platform.mesh}"
                )
        if tile_a == tile_b:
            return 0.0
        core_a = mapping.core_at(tile_a)
        core_b = mapping.core_at(tile_b)
        if core_a is None and core_b is None:
            return 0.0
        moved: Dict[str, int] = {}
        if core_a is not None:
            moved[core_a] = tile_b
        if core_b is not None:
            moved[core_b] = tile_a

        incident = self._incident
        if core_a is not None:
            edge_ids = list(incident.get(core_a, ()))
            if core_b is not None:
                seen = set(edge_ids)
                edge_ids.extend(
                    i for i in incident.get(core_b, ()) if i not in seen
                )
        else:
            edge_ids = list(incident.get(core_b, ()))

        edges = self._edges
        energy = self._flat_energy
        bit_energy = self.route_table.bit_energy
        total = 0.0
        for index in edge_ids:
            source, target, bits = edges[index]
            old_source = mapping.tile_of(source)
            old_target = mapping.tile_of(target)
            new_source = moved.get(source, old_source)
            new_target = moved.get(target, old_target)
            if new_source == old_source and new_target == old_target:
                continue
            if energy is not None:
                total += bits * (
                    energy[new_source * n + new_target]
                    - energy[old_source * n + old_target]
                )
            else:
                total += bits * (
                    bit_energy(new_source, new_target)
                    - bit_energy(old_source, old_target)
                )
        return total

    def metric_delta(
        self, mapping: Mapping, tile_a: int, tile_b: int
    ) -> MetricVector:
        """Per-component variant of :meth:`delta` (one component under CWM).

        Scalarisation views re-weight this vector instead of calling
        :meth:`delta`, so a view with a non-unit weight still prices swaps in
        O(degree).
        """
        return MetricVector(
            CWM_METRIC_NAMES, (self.delta(mapping, tile_a, tile_b),)
        )


class CdcmEvaluationContext(EvaluationContext):
    """Memoised CDCM pricing over the shared route table.

    Full evaluations keep the complete schedule replay — contention couples
    every packet, and the replay is accelerated by the shared
    :class:`~repro.eval.route_table.RouteTable` inside the scheduler.  Swap
    deltas, however, are priced incrementally by the *bounded repair* engine
    (:class:`~repro.eval.repair.CdcmRepairEngine`) when the ``repair`` gate
    is on: only the packets a swap can affect are rescheduled against a
    frozen background, with periodic full-replay resyncs bounding the drift
    (see :class:`~repro.eval.repair.RepairPolicy`).

    Parameters
    ----------
    cdcg:
        Packet-level application model.
    platform:
        Target architecture.
    metric:
        ``"energy"`` (equation 10, the default), ``"time"`` or
        ``"weighted"`` — see :class:`~repro.core.cdcm.CdcmEvaluator`.
    energy_weight, time_weight:
        Scalarisation weights for the ``"weighted"`` metric.
    include_local:
        Whether local core-router links contribute to dynamic energy.
    route_table:
        Optional pre-built shared table.
    cache_size:
        Size of the cost memo (0 disables it).
    backend:
        Default :class:`~repro.eval.parallel.BatchBackend` for
        :meth:`EvaluationContext.evaluate_batch`; CDCM replays are orders of
        magnitude more expensive than CWM sums, which makes this context the
        main beneficiary of a process pool.
    repair:
        Whether :meth:`delta` / :meth:`metric_delta` are available, priced
        by the bounded-repair engine.  ``None`` (the default) follows
        :data:`~repro.eval.repair.DEFAULT_REPAIR` — on, the right choice
        for swap-based search (deltas are exact at every resync point and
        drift-bounded between them).
        :class:`~repro.analysis.comparison.ComparisonConfig` pins it off so
        the paper-reproduction rows keep pure full-replay pricing,
        mirroring the ``use_delta`` / ``vectorize`` conventions.  Full
        evaluations (:meth:`EvaluationContext.cost`,
        :meth:`EvaluationContext.metrics`, batches) always stay full-replay.
    repair_policy:
        Optional :class:`~repro.eval.repair.RepairPolicy` overriding the
        default resync/drift contract of the repair engine.

    Notes
    -----
    Pickling is *light*: the memo, backend and repair engine *state* are
    dropped (the ``repair`` gate and policy travel, so an unpickled context
    reprices swaps the same way), the shared route table is rebuilt by the
    unpickling process, and a custom table travels with the pickle (see
    :class:`CwmEvaluationContext`).
    """

    supports_delta = False
    metric_names = CDCM_METRIC_NAMES

    def __init__(
        self,
        cdcg: CDCG,
        platform: Platform,
        metric: str = "energy",
        energy_weight: float = 1.0,
        time_weight: float = 0.0,
        include_local: bool = True,
        route_table: Optional[RouteTable] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional["BatchBackend"] = None,
        repair: Optional[bool] = None,
        repair_policy: Optional[RepairPolicy] = None,
    ) -> None:
        super().__init__(cache_size, backend)
        self.cdcg = cdcg
        self.platform = platform
        self.evaluator = CdcmEvaluator(
            platform,
            metric=metric,
            energy_weight=energy_weight,
            time_weight=time_weight,
            include_local=include_local,
            route_table=route_table,
        )
        self.name = f"cdcm({cdcg.name},{metric})"
        self.weights = scalarisation_weights(metric, energy_weight, time_weight)
        self.repair = DEFAULT_REPAIR if repair is None else bool(repair)
        self.repair_policy = repair_policy
        # Instance-level capability flags shadow the class defaults so
        # engines discover delta support per gate state, exactly like the
        # CWM ``vectorize`` gate toggles its chunked pricing.
        self.supports_delta = self.repair
        self.supports_metric_delta = self.repair
        # The engine binds lazily on the first delta: building it replays
        # nothing, but batch-only users should not even pay the allocation.
        self._repair_engine: Optional[CdcmRepairEngine] = None

    # ------------------------------------------------------------------
    # Pickling (picklable-light: workers rebuild tables locally)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        evaluator = self.evaluator
        # Same custom-table rule as CwmEvaluationContext: the replay
        # scheduler's table ships only when it is not the shared one.
        table = evaluator.route_table
        shared = is_shared_route_table(table, self.platform)
        return {
            "cdcg": self.cdcg,
            "platform": self.platform,
            "metric": evaluator.metric,
            "energy_weight": evaluator.energy_weight,
            "time_weight": evaluator.time_weight,
            "include_local": evaluator.include_local,
            "cache_size": self._cache_size,
            "route_table": None if shared else table,
            "repair": self.repair,
            "repair_policy": self.repair_policy,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(  # type: ignore[misc]  # rebuild = re-run the constructor
            state["cdcg"],
            state["platform"],
            metric=state["metric"],
            energy_weight=state["energy_weight"],
            time_weight=state["time_weight"],
            include_local=state["include_local"],
            route_table=state.get("route_table"),
            cache_size=state["cache_size"],
            repair=state.get("repair"),
            repair_policy=state.get("repair_policy"),
        )

    def _compute_metrics(
        self, mapping: Union[Mapping, Dict[str, int]]
    ) -> MetricVector:
        return self.evaluator.metrics(self.cdcg, mapping)

    def repair_engine(self) -> CdcmRepairEngine:
        """The context's bounded-repair engine (built on first use).

        Raises
        ------
        ConfigurationError
            When the ``repair`` gate is off — callers must check
            ``supports_metric_delta`` first, like any delta consumer.
        """
        if not self.repair:
            raise ConfigurationError(
                f"{self.name}: the repair gate is off; construct the context "
                f"with repair=True to price swap deltas incrementally"
            )
        engine = self._repair_engine
        if engine is None:
            engine = CdcmRepairEngine(
                self.cdcg,
                self.platform,
                route_table=self.evaluator.route_table,
                include_local=self.evaluator.include_local,
                weights=self.weights,
                policy=self.repair_policy,
            )
            self._repair_engine = engine
        return engine

    def metric_delta(
        self, mapping: Mapping, tile_a: int, tile_b: int
    ) -> MetricVector:
        """Per-component change of ``mapping.swap_tiles(tile_a, tile_b)``, repaired.

        Priced by the bounded-repair engine: exact at every resync point
        (and whenever the repair frontier is empty), drift-bounded in
        between — see :mod:`repro.eval.repair` for the contract.  Raises
        :class:`NotImplementedError` when the ``repair`` gate is off, like
        any context without delta support.
        """
        if not self.repair:
            return super().metric_delta(mapping, tile_a, tile_b)
        return self.repair_engine().metric_delta(mapping, tile_a, tile_b)

    def delta(self, mapping: Mapping, tile_a: int, tile_b: int) -> float:
        """Scalar view of :meth:`metric_delta` under the context's weights.

        What swap-based engines (annealing, greedy) consume through
        :func:`repro.search.base.delta_callable`; subject to the same
        exact-at-resync / bounded-between contract as :meth:`metric_delta`.
        """
        if not self.repair:
            return super().delta(mapping, tile_a, tile_b)
        return self.metric_delta(mapping, tile_a, tile_b).weighted_sum(
            self.weights, strict=False
        )

    def evaluate(
        self,
        mapping: Union[Mapping, Dict[str, int]],
        technology: Optional[Technology] = None,
    ) -> CdcmReport:
        """Full CDCM report of a mapping (uncached — reports carry schedules)."""
        return self.evaluator.evaluate(self.cdcg, mapping, technology)


__all__ = [
    "DEFAULT_CACHE_SIZE",
    "CacheInfo",
    "EvaluationContext",
    "CwmEvaluationContext",
    "CdcmEvaluationContext",
]
