"""NSGA-II population-front search over the vector objective.

Scalarised engines collapse the paper's energy/time trade-off to one weighted
cost per run, so producing a front costs K runs (one per weight vector) and
can only ever recover the *supported* points — the ones some convex weight
combination selects.  This engine optimises the front directly: it evolves a
population on the :class:`~repro.core.objective.VectorObjective` protocol
using NSGA-II (Deb et al. 2002) — fast non-dominated sorting into ranks,
crowding-distance diversity preservation and a crowded binary tournament —
and returns the final non-dominated set as
:class:`~repro.analysis.pareto.ParetoPoint` objects in
:attr:`~repro.search.base.SearchResult.front`, interoperable with everything
in :mod:`repro.analysis.pareto` (so an NSGA-II front and a
:func:`~repro.analysis.pareto.weight_sweep_front` front compare directly).

The variation operators are the permutation-GA machinery shared with
:class:`~repro.search.genetic.GeneticSearch`
(:func:`~repro.search.genetic.uniform_assignment_crossover`,
:func:`~repro.search.genetic.swap_mutation`), and generations are priced
through ``evaluate_metrics_batch`` — the same seam every population engine
uses — so the engine inherits the :class:`~repro.eval.parallel.BatchBackend`
parallelism: set :attr:`Nsga2Parameters.n_workers` (or pass a backend) to fan
pricing out over a process pool, with results bit-identical to serial runs
under the same seed.  Under a CWM source the same seam vectorises too: the
context converts each generation to a ``(pop, cores)`` tile array and prices
it with the array kernel of :mod:`repro.eval.vector` — again bit-identical,
so fronts do not depend on the gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.search.base import (
    PoolOwnerMixin,
    SearchResult,
    Searcher,
    as_objective,
    objective_metrics,
)
from repro.search.genetic import swap_mutation, uniform_assignment_crossover
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class Nsga2Parameters:
    """Knobs of :class:`NSGA2Search` (GeneticParameters-style).

    Attributes
    ----------
    population_size:
        Individuals per generation (at least 4 — NSGA-II needs room for a
        ranked front plus diversity).
    generations:
        Number of (mu + lambda) generations to evolve.
    tournament_size:
        Individuals drawn per crowded tournament (2 is the canonical binary
        tournament).
    crossover_rate:
        Probability a child is produced by crossover rather than cloning.
    mutation_rate:
        Probability a child is mutated by one tile swap.
    n_workers:
        Parallel pricing fan-out: ``None`` (or 1) prices generations
        serially; larger values make :class:`NSGA2Search` build a
        :class:`~repro.eval.parallel.ProcessPoolBackend` of that size for
        its ``evaluate_metrics_batch`` calls.  Results are bit-identical
        either way.
    """

    population_size: int = 32
    generations: int = 40
    tournament_size: int = 2
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    n_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ConfigurationError("population_size must be at least 4")
        if self.generations < 1:
            raise ConfigurationError("generations must be positive")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size must be between 1 and population_size"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be in [0, 1]")
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {self.n_workers}"
            )


def fast_non_dominated_sort(
    vectors: Sequence[MetricVector], keys: Sequence[str]
) -> List[List[int]]:
    """Deb's fast non-dominated sort: indices grouped into Pareto ranks.

    Parameters
    ----------
    vectors:
        Metric vectors of the population, in population order.
    keys:
        Component names the dominance check ranges over (all minimised).

    Returns
    -------
    list of list of int
        ``fronts[0]`` is the non-dominated set, ``fronts[1]`` the set
        dominated only by rank 0, and so on.  Every index appears exactly
        once; order within a front is deterministic for a given input order.
    """
    keys = tuple(keys)
    n = len(vectors)
    dominated: List[List[int]] = [[] for _ in range(n)]
    counts = [0] * n
    for p in range(n):
        for q in range(p + 1, n):
            if vectors[p].dominates(vectors[q], keys):
                dominated[p].append(q)
                counts[q] += 1
            elif vectors[q].dominates(vectors[p], keys):
                dominated[q].append(p)
                counts[p] += 1
    fronts: List[List[int]] = [[p for p in range(n) if counts[p] == 0]]
    while fronts[-1]:
        next_front: List[int] = []
        for p in fronts[-1]:
            for q in dominated[p]:
                counts[q] -= 1
                if counts[q] == 0:
                    next_front.append(q)
        fronts.append(next_front)
    fronts.pop()  # the loop always appends one trailing empty front
    return fronts


def crowding_distances(
    front: Sequence[int],
    vectors: Sequence[MetricVector],
    keys: Sequence[str],
) -> Dict[int, float]:
    """Crowding distance of each index of one Pareto rank.

    Boundary points of every key get infinite distance (they anchor the
    front's extent); interior points accumulate the normalised gap between
    their neighbours along each key.  Degenerate keys (zero span across the
    front) contribute nothing.

    Parameters
    ----------
    front:
        Indices of one rank (as produced by :func:`fast_non_dominated_sort`).
    vectors:
        Metric vectors the indices point into.
    keys:
        Component names of the trade-off.

    Returns
    -------
    dict
        ``{index: distance}`` — larger means lonelier, preferred by the
        crowded tournament and by front truncation.
    """
    distances: Dict[int, float] = {index: 0.0 for index in front}
    if len(front) <= 2:
        return {index: math.inf for index in front}
    for key in keys:
        order = sorted(front, key=lambda index: (vectors[index][key], index))
        low = vectors[order[0]][key]
        high = vectors[order[-1]][key]
        distances[order[0]] = math.inf
        distances[order[-1]] = math.inf
        span = high - low
        if span <= 0.0:
            continue
        for position in range(1, len(order) - 1):
            index = order[position]
            if distances[index] == math.inf:
                continue
            gap = (
                vectors[order[position + 1]][key]
                - vectors[order[position - 1]][key]
            )
            distances[index] += gap / span
    return distances


class NSGA2Search(PoolOwnerMixin, Searcher):
    """Non-dominated sorting genetic algorithm (NSGA-II) over mappings.

    Parameters
    ----------
    parameters:
        Evolution knobs; defaults to :class:`Nsga2Parameters`.
    keys:
        Metric names the dominance relation ranges over.  ``None`` (the
        default) selects ``("energy", "time")`` when the objective prices
        both, and falls back to the objective's full component set otherwise
        (a single-component objective degenerates NSGA-II into an elitist
        scalar GA).
    backend:
        Optional explicit :class:`~repro.eval.parallel.BatchBackend` used for
        generation pricing (overrides ``parameters.n_workers``).  The caller
        owns it (it is not closed by the engine).
    n_workers:
        Convenience override of ``parameters.n_workers`` so the registry can
        surface the knob directly: ``get_searcher("nsga2", n_workers=4)``.

    Notes
    -----
    The objective must be vector-capable: an
    :class:`~repro.eval.context.EvaluationContext`, an objective built by
    :mod:`repro.core.objective`, or a ``(vector_objective, weights)`` spec —
    anything :func:`~repro.core.objective.resolve_vector_source` accepts.
    Plain scalar callables are rejected with a loud
    :class:`~repro.utils.errors.ConfigurationError` (there is no vector to
    sort fronts on).

    The returned :class:`~repro.search.base.SearchResult` carries the final
    non-dominated set in ``front`` (as
    :class:`~repro.analysis.pareto.ParetoPoint` objects, deduplicated and
    sorted like :func:`~repro.analysis.pareto.non_dominated` fronts);
    ``best_mapping`` / ``best_cost`` report the incumbent under the
    objective's own scalar weight view, so the result stays drop-in
    comparable with every scalar engine.

    Determinism: a seeded run returns the same population trajectory, front
    and incumbent regardless of ``n_workers`` — pricing is bit-identical
    across backends and every selection decision breaks ties by index.
    """

    name = "nsga2"

    def __init__(
        self,
        parameters: Nsga2Parameters | None = None,
        keys: Optional[Sequence[str]] = None,
        backend=None,
        n_workers: Optional[int] = None,
    ) -> None:
        params = parameters or Nsga2Parameters()
        if n_workers is not None:
            params = replace(params, n_workers=n_workers)
        self.parameters = params
        if keys is not None and not tuple(keys):
            raise ConfigurationError(
                "front keys must name at least one metric (or pass None for "
                "the default energy/time trade-off)"
            )
        self.keys = tuple(keys) if keys is not None else None
        self._backend = backend
        self._owned_backend = None

    # ------------------------------------------------------------------
    def _resolve_keys(self, source) -> Tuple[str, ...]:
        """The dominance keys for *source* (validated against its components)."""
        names = tuple(source.metric_names)
        if self.keys is None:
            preferred = tuple(key for key in ("energy", "time") if key in names)
            return preferred if len(preferred) >= 2 else names
        unknown = [key for key in self.keys if key not in names]
        if unknown:
            raise ConfigurationError(
                f"front keys {unknown!r} are not components of the objective; "
                f"available metrics are {names}"
            )
        return self.keys

    @staticmethod
    def _scalar_view(objective, source):
        """``MetricVector -> float`` incumbent scorer for reporting.

        Prefers the objective's (or its context's) weight view — an
        uncounted dot product over the already-priced vectors, bit-identical
        to the scalar engines' costs — and falls back to calling the
        objective when no weights are exposed.
        """
        weights = getattr(objective, "weights", None)
        if not weights:
            weights = getattr(source, "weights", None)
        if weights:
            return lambda mapping, vector: vector.weighted_sum(
                weights, strict=False
            )
        return lambda mapping, vector: objective(mapping)

    # ------------------------------------------------------------------
    def search(
        self,
        objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Evolve a population front from *initial* and return it.

        Parameters
        ----------
        objective:
            A vector-capable objective spec (context, counting objective,
            scalarised view, or ``(vector_objective, weights)`` pair).
        initial:
            Seed individual; must know the NoC size.
        rng:
            Seed or generator driving selection, crossover and mutation.

        Returns
        -------
        SearchResult
            ``front`` carries the final non-dominated set;
            ``best_mapping`` / ``best_cost`` / ``history`` report the
            incumbent under the objective's scalar weight view, and
            ``accepted_moves`` counts applied mutations.
        """
        from repro.analysis.pareto import ParetoPoint, non_dominated
        from repro.core.objective import resolve_vector_source

        params = self.parameters
        scalar = as_objective(objective)
        source = resolve_vector_source(scalar)
        keys = self._resolve_keys(source)
        score = self._scalar_view(scalar, source)
        generator = ensure_rng(rng)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "NSGA-II search requires the initial mapping to know the NoC size"
            )
        cores = initial.cores
        backend = self._resolve_backend(params.n_workers)

        def price(candidates: List[Mapping]) -> List[MetricVector]:
            return source.evaluate_metrics_batch(candidates, backend=backend)

        population: List[Mapping] = [initial]
        while len(population) < params.population_size:
            population.append(Mapping.random(cores, num_tiles, generator))
        vectors = price(population)
        evaluations = len(population)
        mutations = 0

        costs = [score(m, v) for m, v in zip(population, vectors)]
        best_idx = min(range(len(population)), key=costs.__getitem__)
        best, best_cost = population[best_idx], costs[best_idx]
        history: List[Tuple[int, float]] = [(evaluations, best_cost)]

        for _ in range(params.generations):
            # Rank + crowd the current population once per generation; the
            # crowded tournament reads both.
            fronts = fast_non_dominated_sort(vectors, keys)
            ranks = [0] * len(population)
            crowding = [0.0] * len(population)
            for rank, front in enumerate(fronts):
                distances = crowding_distances(front, vectors, keys)
                for index in front:
                    ranks[index] = rank
                    crowding[index] = distances[index]

            # Generate the whole brood first (one RNG stream, fixed
            # consumption order), then price it as one batch — the parallel
            # seam, exactly like GeneticSearch.
            children: List[Mapping] = []
            while len(children) < params.population_size:
                parent_a = self._tournament(population, ranks, crowding, generator)
                parent_b = self._tournament(population, ranks, crowding, generator)
                if generator.random() < params.crossover_rate:
                    child = uniform_assignment_crossover(
                        parent_a, parent_b, cores, num_tiles, generator
                    )
                else:
                    child = parent_a
                if generator.random() < params.mutation_rate:
                    child = swap_mutation(child, num_tiles, generator)
                    mutations += 1
                children.append(child)
            child_vectors = price(children)
            evaluations += len(children)

            for mapping, vector in zip(children, child_vectors):
                cost = score(mapping, vector)
                if cost < best_cost:
                    best, best_cost = mapping, cost
                    history.append((evaluations, best_cost))

            # (mu + lambda) environmental selection: refill from the ranked
            # combined population, truncating the spilling rank by crowding
            # distance (ties broken by index for determinism).
            combined = population + children
            combined_vectors = vectors + child_vectors
            survivors: List[int] = []
            for front in fast_non_dominated_sort(combined_vectors, keys):
                if len(survivors) + len(front) <= params.population_size:
                    survivors.extend(front)
                    if len(survivors) == params.population_size:
                        break
                    continue
                distances = crowding_distances(front, combined_vectors, keys)
                spill = sorted(front, key=lambda i: (-distances[i], i))
                survivors.extend(spill[: params.population_size - len(survivors)])
                break
            population = [combined[i] for i in survivors]
            vectors = [combined_vectors[i] for i in survivors]

        final_points = [
            ParetoPoint(mapping=mapping, metrics=vector)
            for mapping, vector in zip(population, vectors)
        ]
        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            accepted_moves=mutations,
            best_metrics=objective_metrics(scalar, best),
            front=non_dominated(final_points, keys),
        )

    # ------------------------------------------------------------------
    def _tournament(
        self,
        population: List[Mapping],
        ranks: List[int],
        crowding: List[float],
        rng,
    ) -> Mapping:
        """Crowded tournament: lowest rank wins, loneliest breaks the tie."""
        size = self.parameters.tournament_size
        indices = rng.integers(0, len(population), size=size)
        winner = min(
            (int(index) for index in indices),
            key=lambda index: (ranks[index], -crowding[index], index),
        )
        return population[winner]


__all__ = [
    "Nsga2Parameters",
    "NSGA2Search",
    "fast_non_dominated_sort",
    "crowding_distances",
]
