"""Random-mapping baseline.

Hu & Marculescu's original CWM paper motivates energy-aware mapping by
comparing against random mappings; this engine provides that baseline: draw a
configurable number of independent random mappings and keep the cheapest.
It is also the fallback "null hypothesis" for the ablation benches — any
serious search method must beat it.
"""

from __future__ import annotations

from repro.core.mapping import Mapping
from repro.search.base import (
    Objective,
    SearchResult,
    Searcher,
    as_objective,
    objective_metrics,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng


class RandomSearch(Searcher):
    """Sample *samples* random mappings and keep the best.

    Parameters
    ----------
    samples:
        Number of random mappings to draw (the initial mapping is also
        evaluated, so the total number of evaluations is ``samples + 1``).
    """

    name = "random"

    def __init__(self, samples: int = 100) -> None:
        if samples < 1:
            raise ConfigurationError(f"samples must be positive, got {samples}")
        self.samples = samples

    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        objective = as_objective(objective)
        generator = ensure_rng(rng)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "random search requires the initial mapping to know the NoC size"
            )
        cores = initial.cores

        best = initial
        best_cost = objective(initial)
        evaluations = 1
        history = [(evaluations, best_cost)]

        for _ in range(self.samples):
            candidate = Mapping.random(cores, num_tiles, generator)
            cost = objective(candidate)
            evaluations += 1
            if cost < best_cost:
                best, best_cost = candidate, cost
                history.append((evaluations, best_cost))

        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            best_metrics=objective_metrics(objective, best),
        )


__all__ = ["RandomSearch"]
