"""Greedy constructive mapping heuristic.

A fast, deterministic baseline in the spirit of constructive NoC mappers:
place the core with the largest total communication volume on the most
central tile, then repeatedly place the unplaced core with the strongest ties
to already-placed cores on the free tile minimising the volume-weighted hop
distance to them.  The result is usually a decent starting point for
simulated annealing and a much stronger baseline than random mapping.

The heuristic needs to know the application's communication volumes, so it is
constructed from a CWG (unlike the other engines, which are application
agnostic); the :meth:`GreedyConstructive.search` entry point still honours the
common :class:`~repro.search.base.Searcher` interface and uses the objective
only to report the cost of the constructed mapping (and to fall back to the
initial mapping if construction somehow does worse).

Hop distances come from the platform's shared
:class:`~repro.eval.route_table.RouteTable`, and when the objective supports
exact incremental pricing (CWM objectives do — see :mod:`repro.eval`), the
constructed mapping is additionally polished by a deterministic swap-based
hill climb driven entirely by O(degree) deltas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.mapping import Mapping
from repro.eval.route_table import RouteTable, get_route_table
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform
from repro.search.base import (
    Objective,
    SearchResult,
    Searcher,
    as_objective,
    delta_callable,
    objective_metrics,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource


class GreedyConstructive(Searcher):
    """Volume-driven constructive placement with optional delta refinement.

    Parameters
    ----------
    cwg:
        Application communication graph (supplies the volumes).
    platform:
        Target architecture.
    refine:
        Polish the constructed mapping with a swap-based hill climb when the
        objective supports incremental deltas (no effect otherwise).
    max_refinement_passes:
        Upper bound on full sweeps over all tile pairs during refinement.
    """

    name = "greedy"

    def __init__(
        self,
        cwg: CWG,
        platform: Platform,
        refine: bool = True,
        max_refinement_passes: int = 4,
    ) -> None:
        if max_refinement_passes < 0:
            raise ConfigurationError(
                f"max_refinement_passes must be non-negative, "
                f"got {max_refinement_passes}"
            )
        self.cwg = cwg
        self.platform = platform
        self.refine = refine
        self.max_refinement_passes = max_refinement_passes
        self._route_table: RouteTable = get_route_table(platform)

    # ------------------------------------------------------------------
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        del rng  # construction is deterministic
        objective = as_objective(objective)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "greedy construction requires the initial mapping to know the NoC size"
            )
        if num_tiles != self.platform.num_tiles:
            raise ConfigurationError(
                f"initial mapping targets a {num_tiles}-tile NoC but the platform "
                f"has {self.platform.num_tiles} tiles"
            )
        constructed = self.construct()
        constructed_cost = objective(constructed)
        initial_cost = objective(initial)
        evaluations = 2
        if constructed_cost <= initial_cost:
            best, best_cost = constructed, constructed_cost
        else:
            best, best_cost = initial, initial_cost

        delta_fn = delta_callable(objective) if self.refine else None
        if delta_fn is not None and self.max_refinement_passes > 0:
            best, best_cost, refine_evaluations = self._refine(
                objective, delta_fn, best, best_cost
            )
            evaluations += refine_evaluations

        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=[(evaluations, best_cost)],
            best_metrics=objective_metrics(objective, best),
        )

    def _refine(
        self,
        objective: Objective,
        delta_fn,
        mapping: Mapping,
        cost: float,
    ) -> Tuple[Mapping, float, int]:
        """First-improvement hill climb over tile swaps, priced by deltas.

        Deterministic (tile pairs are scanned in index order) and cheap: each
        probe is O(degree) and the full mapping is only re-priced once at the
        end to strip accumulated floating-point drift.
        """
        num_tiles = self.platform.num_tiles
        evaluations = 0
        improved_any = False
        for _ in range(self.max_refinement_passes):
            improved = False
            for tile_a in range(num_tiles):
                for tile_b in range(tile_a + 1, num_tiles):
                    delta = delta_fn(mapping, tile_a, tile_b)
                    evaluations += 1
                    if delta < 0:
                        mapping = mapping.swap_tiles(tile_a, tile_b)
                        cost += delta
                        improved = True
            improved_any = improved_any or improved
            if not improved:
                break
        if improved_any:
            cost = objective(mapping)  # exact re-price of the refined mapping
            evaluations += 1
        return mapping, cost, evaluations

    # ------------------------------------------------------------------
    def construct(self) -> Mapping:
        """Build the greedy mapping (independent of any objective)."""
        mesh = self.platform.mesh
        cores = list(self.cwg.cores)
        if len(cores) > mesh.num_tiles:
            raise ConfigurationError(
                f"{len(cores)} cores cannot be placed on {mesh.num_tiles} tiles"
            )

        volume: Dict[str, int] = {
            core: self.cwg.out_volume(core) + self.cwg.in_volume(core)
            for core in cores
        }
        pair_volume: Dict[Tuple[str, str], int] = {}
        for comm in self.cwg.communications():
            key = (comm.source, comm.target)
            pair_volume[key] = pair_volume.get(key, 0) + comm.bits

        def traffic_between(core_a: str, core_b: str) -> int:
            return pair_volume.get((core_a, core_b), 0) + pair_volume.get(
                (core_b, core_a), 0
            )

        # Hop distance between two tiles, off the precomputed route table
        # (route length minus one equals the mesh/torus hop distance for the
        # deterministic dimension-ordered routings used here).
        hop_count = self._route_table.hop_count

        placed: Dict[str, int] = {}
        free_tiles = set(range(mesh.num_tiles))

        # Seed: busiest core on the most central tile.
        order = sorted(cores, key=lambda c: (-volume[c], c))
        center = self._most_central_tile(list(free_tiles))
        placed[order[0]] = center
        free_tiles.discard(center)

        remaining = order[1:]
        while remaining:
            # Pick the unplaced core with the strongest ties to placed cores.
            def attachment(core: str) -> int:
                return sum(traffic_between(core, other) for other in placed)

            remaining.sort(key=lambda c: (-attachment(c), -volume[c], c))
            core = remaining.pop(0)
            best_tile = None
            best_score = None
            for tile in sorted(free_tiles):
                score = 0
                for other, other_tile in placed.items():
                    weight = traffic_between(core, other)
                    if weight:
                        score += weight * (hop_count(tile, other_tile) - 1)
                if best_score is None or score < best_score:
                    best_score = score
                    best_tile = tile
            assert best_tile is not None
            placed[core] = best_tile
            free_tiles.discard(best_tile)

        return Mapping(placed, num_tiles=mesh.num_tiles)

    def _most_central_tile(self, tiles: List[int]) -> int:
        topology = self.platform.mesh
        if hasattr(topology, "width") and hasattr(topology, "position_of"):
            cx = (topology.width - 1) / 2.0
            cy = (topology.height - 1) / 2.0

            def centrality(tile: int) -> Tuple[float, int]:
                x, y = topology.position_of(tile)
                return (abs(x - cx) + abs(y - cy), tile)

            return min(tiles, key=centrality)

        # Irregular fabrics have no grid centre; the closeness-centrality
        # seed (minimal total hop distance off the shared route table) is
        # deterministic and degrades to the grid answer on symmetric meshes.
        hop_count = self._route_table.hop_count

        def hop_centrality(tile: int) -> Tuple[int, int]:
            return (
                sum(hop_count(tile, other) for other in range(topology.num_tiles)),
                tile,
            )

        return min(tiles, key=hop_centrality)


__all__ = ["GreedyConstructive"]
