"""NSGA-III reference-point search — many-objective selection over mappings.

NSGA-II's crowding distance degrades past two or three objectives: in high
dimensions almost every point is a boundary point of *some* key, so crowding
stops discriminating and the population drifts to the extremes.  NSGA-III
(Deb & Jain 2014) replaces crowding with a structured set of **reference
points** on the unit simplex (Das–Dennis lattice): population members are
associated with their nearest reference direction and environmental selection
fills under-represented directions first — diversity pressure that scales to
the many-objective fronts the routing×mapping co-design subsystem optimises
(energy × time × link congestion, see :mod:`repro.codesign`).

The engine is a drop-in sibling of :class:`~repro.search.nsga2.NSGA2Search`:
same :class:`~repro.core.objective.VectorObjective` protocol, same GA
variation operators, same ``evaluate_metrics_batch`` pricing seam (so
:class:`~repro.eval.parallel.BatchBackend` parallelism applies and seeded
runs are bit-identical across serial and pooled pricing), and the same
:class:`~repro.search.base.SearchResult` contract with the final
non-dominated set in ``front``.  Every selection decision — association,
niching, tie-breaks — is deterministic (ties break by smallest index), which
is what keeps the serial==pooled pin of the PR 4 determinism matrix intact.

Differences from the canonical formulation, chosen for determinism and
robustness on small populations:

* normalisation uses the per-key min (ideal) and max (nadir estimate) over
  the selection pool instead of the extreme-point hyperplane construction
  (which is ill-conditioned on degenerate fronts);
* the niching step picks the lowest-index candidate of a represented niche
  instead of a random one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.search.base import (
    PoolOwnerMixin,
    SearchResult,
    Searcher,
    as_objective,
    objective_metrics,
)
from repro.search.genetic import swap_mutation, uniform_assignment_crossover
from repro.search.nsga2 import fast_non_dominated_sort
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class Nsga3Parameters:
    """Knobs of :class:`NSGA3Search` (Nsga2Parameters-style).

    Attributes
    ----------
    population_size:
        Individuals per generation (at least 4).
    generations:
        Number of (mu + lambda) generations to evolve.
    tournament_size:
        Individuals drawn per tournament (2 is the canonical binary
        tournament).
    crossover_rate:
        Probability a child is produced by crossover rather than cloning.
    mutation_rate:
        Probability a child is mutated by one tile swap.
    divisions:
        Das–Dennis divisions per objective axis for the reference-point
        lattice.  ``None`` (the default) picks the smallest division count
        whose lattice has at least ``population_size`` points, so every
        individual can occupy its own niche.
    n_workers:
        Parallel pricing fan-out, exactly like
        :attr:`~repro.search.nsga2.Nsga2Parameters.n_workers`.  Results are
        bit-identical either way.
    """

    population_size: int = 32
    generations: int = 40
    tournament_size: int = 2
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    divisions: Optional[int] = None
    n_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ConfigurationError("population_size must be at least 4")
        if self.generations < 1:
            raise ConfigurationError("generations must be positive")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size must be between 1 and population_size"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be in [0, 1]")
        if self.divisions is not None and self.divisions < 1:
            raise ConfigurationError(
                f"divisions must be positive, got {self.divisions}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {self.n_workers}"
            )


def das_dennis_reference_points(
    num_objectives: int, divisions: int
) -> Tuple[Tuple[float, ...], ...]:
    """The Das–Dennis simplex lattice: uniformly spaced reference points.

    Every point is a composition ``(h_1, ..., h_M)`` of *divisions* into
    *num_objectives* non-negative parts, scaled by ``1/divisions`` — the
    structured weight lattice NSGA-III associates population members with.

    Parameters
    ----------
    num_objectives:
        Dimensionality ``M`` of the objective space (at least 1).
    divisions:
        Divisions ``H`` per axis (at least 1); the lattice has
        ``C(H + M - 1, M - 1)`` points.

    Returns
    -------
    tuple of tuple of float
        The lattice in deterministic lexicographic order (first coordinate
        descending), each point summing to 1.0.
    """
    if num_objectives < 1:
        raise ConfigurationError(
            f"num_objectives must be positive, got {num_objectives}"
        )
    if divisions < 1:
        raise ConfigurationError(f"divisions must be positive, got {divisions}")
    points: List[Tuple[float, ...]] = []

    def build(prefix: List[int], remaining: int, axes_left: int) -> None:
        if axes_left == 1:
            points.append(
                tuple((count / divisions) for count in prefix + [remaining])
            )
            return
        for count in range(remaining, -1, -1):
            build(prefix + [count], remaining - count, axes_left - 1)

    build([], divisions, num_objectives)
    return tuple(points)


def default_divisions(num_objectives: int, population_size: int) -> int:
    """Smallest division count whose lattice holds ``population_size`` points."""
    divisions = 1
    while (
        len(das_dennis_reference_points(num_objectives, divisions))
        < population_size
    ):
        divisions += 1
    return divisions


def _normalise(
    pool: Sequence[int],
    vectors: Sequence[MetricVector],
    keys: Sequence[str],
) -> Dict[int, Tuple[float, ...]]:
    """Min/max normalisation of the pool's vectors onto ``[0, 1]`` per key.

    The ideal point is the per-key minimum over the pool, the nadir estimate
    the per-key maximum; degenerate keys (zero span) normalise to 0.0 so they
    stop influencing the association geometry.
    """
    ideal = [math.inf] * len(keys)
    nadir = [-math.inf] * len(keys)
    for index in pool:
        vector = vectors[index]
        for axis, key in enumerate(keys):
            value = vector[key]
            if value < ideal[axis]:
                ideal[axis] = value
            if value > nadir[axis]:
                nadir[axis] = value
    spans = [
        (high - low) if (high - low) > 0.0 else 0.0
        for low, high in zip(ideal, nadir)
    ]
    normalised: Dict[int, Tuple[float, ...]] = {}
    for index in pool:
        vector = vectors[index]
        normalised[index] = tuple(
            ((vector[key] - ideal[axis]) / spans[axis]) if spans[axis] else 0.0
            for axis, key in enumerate(keys)
        )
    return normalised


def associate_to_references(
    normalised: Dict[int, Tuple[float, ...]],
    references: Sequence[Tuple[float, ...]],
) -> Dict[int, Tuple[int, float]]:
    """Associate each normalised point with its nearest reference direction.

    Distance is the perpendicular distance from the point to the line through
    the origin along the reference direction — the NSGA-III association rule.
    Ties break by the smaller reference index, keeping runs deterministic.

    Returns
    -------
    dict
        ``{pool index: (reference index, perpendicular distance)}``.
    """
    directions: List[Tuple[Tuple[float, ...], float]] = []
    for reference in references:
        norm = math.sqrt(sum(w * w for w in reference))
        directions.append((reference, norm if norm > 0.0 else 1.0))
    association: Dict[int, Tuple[int, float]] = {}
    for index, point in normalised.items():
        best_ref = 0
        best_distance = math.inf
        squared = sum(f * f for f in point)
        for ref_index, (reference, norm) in enumerate(directions):
            projection = (
                sum(f * w for f, w in zip(point, reference)) / norm
            )
            distance_sq = squared - projection * projection
            distance = math.sqrt(distance_sq) if distance_sq > 0.0 else 0.0
            if distance < best_distance:
                best_distance = distance
                best_ref = ref_index
        association[index] = (best_ref, best_distance)
    return association


def niche_select(
    accepted: Sequence[int],
    spill: Sequence[int],
    vectors: Sequence[MetricVector],
    keys: Sequence[str],
    references: Sequence[Tuple[float, ...]],
    slots: int,
) -> List[int]:
    """NSGA-III niching: fill *slots* from *spill* preferring empty niches.

    The selection pool (*accepted* plus *spill*) is normalised and associated
    with the reference lattice; niche counts start from the accepted members.
    Each round picks the least-crowded reference point (ties by index): an
    empty niche takes its closest spill candidate (perpendicular distance,
    ties by index), a represented niche its lowest-index candidate — the
    deterministic stand-in for the canonical random pick.

    Returns
    -------
    list of int
        The chosen spill indices, in selection order.
    """
    pool = list(accepted) + list(spill)
    normalised = _normalise(pool, vectors, keys)
    association = associate_to_references(normalised, references)
    counts = [0] * len(references)
    for index in accepted:
        counts[association[index][0]] += 1
    by_reference: Dict[int, List[int]] = {}
    for index in spill:
        by_reference.setdefault(association[index][0], []).append(index)
    live = set(by_reference)
    chosen: List[int] = []
    while len(chosen) < slots and live:
        reference = min(live, key=lambda ref: (counts[ref], ref))
        candidates = by_reference[reference]
        if counts[reference] == 0:
            pick = min(
                candidates, key=lambda index: (association[index][1], index)
            )
        else:
            pick = min(candidates)
        candidates.remove(pick)
        if not candidates:
            live.discard(reference)
        counts[reference] += 1
        chosen.append(pick)
    return chosen


class NSGA3Search(PoolOwnerMixin, Searcher):
    """Reference-point many-objective search (NSGA-III) over mappings.

    Parameters
    ----------
    parameters:
        Evolution knobs; defaults to :class:`Nsga3Parameters`.
    keys:
        Metric names the dominance relation and reference lattice range
        over.  ``None`` (the default) selects ``("energy", "time")`` when
        the objective prices both and falls back to the full component set
        otherwise — same rule as :class:`~repro.search.nsga2.NSGA2Search`.
        Many-objective co-design passes three or more keys explicitly, e.g.
        ``("energy", "time", "max_link_utilisation")``.
    backend:
        Optional explicit :class:`~repro.eval.parallel.BatchBackend` used
        for generation pricing (caller-owned).
    n_workers:
        Convenience override of ``parameters.n_workers`` (registry path:
        ``get_searcher("nsga3", n_workers=4)``).

    Notes
    -----
    The objective must be vector-capable, exactly like NSGA-II.  The
    returned :class:`~repro.search.base.SearchResult` carries the final
    non-dominated set in ``front``; ``best_mapping`` / ``best_cost`` report
    the incumbent under the objective's scalar weight view.

    Determinism: a seeded run returns the same population trajectory, front
    and incumbent regardless of ``n_workers`` — pricing is bit-identical
    across backends, the RNG consumption order is fixed, and every
    association/niching decision breaks ties by index.
    """

    name = "nsga3"

    def __init__(
        self,
        parameters: Nsga3Parameters | None = None,
        keys: Optional[Sequence[str]] = None,
        backend=None,
        n_workers: Optional[int] = None,
    ) -> None:
        params = parameters or Nsga3Parameters()
        if n_workers is not None:
            params = replace(params, n_workers=n_workers)
        self.parameters = params
        if keys is not None and not tuple(keys):
            raise ConfigurationError(
                "front keys must name at least one metric (or pass None for "
                "the default energy/time trade-off)"
            )
        self.keys = tuple(keys) if keys is not None else None
        self._backend = backend
        self._owned_backend = None

    # ------------------------------------------------------------------
    def _resolve_keys(self, source) -> Tuple[str, ...]:
        """The dominance keys for *source* (validated against its components)."""
        names = tuple(source.metric_names)
        if self.keys is None:
            preferred = tuple(key for key in ("energy", "time") if key in names)
            return preferred if len(preferred) >= 2 else names
        unknown = [key for key in self.keys if key not in names]
        if unknown:
            raise ConfigurationError(
                f"front keys {unknown!r} are not components of the objective; "
                f"available metrics are {names}"
            )
        return self.keys

    def _reference_points(
        self, keys: Sequence[str]
    ) -> Tuple[Tuple[float, ...], ...]:
        """The engine's Das–Dennis lattice for *keys* (divisions auto-picked)."""
        divisions = self.parameters.divisions
        if divisions is None:
            divisions = default_divisions(
                len(keys), self.parameters.population_size
            )
        return das_dennis_reference_points(len(keys), divisions)

    @staticmethod
    def _scalar_view(objective, source):
        """``MetricVector -> float`` incumbent scorer (same rule as NSGA-II)."""
        weights = getattr(objective, "weights", None)
        if not weights:
            weights = getattr(source, "weights", None)
        if weights:
            return lambda mapping, vector: vector.weighted_sum(
                weights, strict=False
            )
        return lambda mapping, vector: objective(mapping)

    # ------------------------------------------------------------------
    def search(
        self,
        objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Evolve a population front from *initial* and return it.

        Parameters
        ----------
        objective:
            A vector-capable objective spec (context, counting objective,
            scalarised view, or ``(vector_objective, weights)`` pair).
        initial:
            Seed individual; must know the NoC size.
        rng:
            Seed or generator driving selection, crossover and mutation.

        Returns
        -------
        SearchResult
            ``front`` carries the final non-dominated set;
            ``best_mapping`` / ``best_cost`` / ``history`` report the
            incumbent under the objective's scalar weight view, and
            ``accepted_moves`` counts applied mutations.
        """
        from repro.analysis.pareto import ParetoPoint, non_dominated
        from repro.core.objective import resolve_vector_source

        params = self.parameters
        scalar = as_objective(objective)
        source = resolve_vector_source(scalar)
        keys = self._resolve_keys(source)
        references = self._reference_points(keys)
        score = self._scalar_view(scalar, source)
        generator = ensure_rng(rng)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "NSGA-III search requires the initial mapping to know the NoC size"
            )
        cores = initial.cores
        backend = self._resolve_backend(params.n_workers)

        def price(candidates: List[Mapping]) -> List[MetricVector]:
            return source.evaluate_metrics_batch(candidates, backend=backend)

        population: List[Mapping] = [initial]
        while len(population) < params.population_size:
            population.append(Mapping.random(cores, num_tiles, generator))
        vectors = price(population)
        evaluations = len(population)
        mutations = 0

        costs = [score(m, v) for m, v in zip(population, vectors)]
        best_idx = min(range(len(population)), key=costs.__getitem__)
        best, best_cost = population[best_idx], costs[best_idx]
        history: List[Tuple[int, float]] = [(evaluations, best_cost)]

        for _ in range(params.generations):
            # Rank the current population and associate it with the lattice
            # once per generation; the tournament reads rank first and niche
            # pressure (niche count, then perpendicular distance) on ties.
            fronts = fast_non_dominated_sort(vectors, keys)
            ranks = [0] * len(population)
            for rank, front in enumerate(fronts):
                for index in front:
                    ranks[index] = rank
            normalised = _normalise(range(len(population)), vectors, keys)
            association = associate_to_references(normalised, references)
            niche_counts = [0] * len(references)
            for index in range(len(population)):
                niche_counts[association[index][0]] += 1

            # Whole brood first (fixed RNG consumption order), then one
            # batch pricing call — the parallel seam, exactly like NSGA-II.
            children: List[Mapping] = []
            while len(children) < params.population_size:
                parent_a = self._tournament(
                    population, ranks, association, niche_counts, generator
                )
                parent_b = self._tournament(
                    population, ranks, association, niche_counts, generator
                )
                if generator.random() < params.crossover_rate:
                    child = uniform_assignment_crossover(
                        parent_a, parent_b, cores, num_tiles, generator
                    )
                else:
                    child = parent_a
                if generator.random() < params.mutation_rate:
                    child = swap_mutation(child, num_tiles, generator)
                    mutations += 1
                children.append(child)
            child_vectors = price(children)
            evaluations += len(children)

            for mapping, vector in zip(children, child_vectors):
                cost = score(mapping, vector)
                if cost < best_cost:
                    best, best_cost = mapping, cost
                    history.append((evaluations, best_cost))

            # (mu + lambda) environmental selection: whole fronts while they
            # fit, reference-point niching for the spilling front.
            combined = population + children
            combined_vectors = vectors + child_vectors
            survivors: List[int] = []
            for front in fast_non_dominated_sort(combined_vectors, keys):
                if len(survivors) + len(front) <= params.population_size:
                    survivors.extend(front)
                    if len(survivors) == params.population_size:
                        break
                    continue
                survivors.extend(
                    niche_select(
                        survivors,
                        front,
                        combined_vectors,
                        keys,
                        references,
                        params.population_size - len(survivors),
                    )
                )
                break
            population = [combined[i] for i in survivors]
            vectors = [combined_vectors[i] for i in survivors]

        final_points = [
            ParetoPoint(mapping=mapping, metrics=vector)
            for mapping, vector in zip(population, vectors)
        ]
        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            accepted_moves=mutations,
            best_metrics=objective_metrics(scalar, best),
            front=non_dominated(final_points, keys),
        )

    # ------------------------------------------------------------------
    def _tournament(
        self,
        population: List[Mapping],
        ranks: List[int],
        association: Dict[int, Tuple[int, float]],
        niche_counts: List[int],
        rng,
    ) -> Mapping:
        """Niched tournament: lowest rank wins, emptier niche breaks the tie."""
        size = self.parameters.tournament_size
        indices = rng.integers(0, len(population), size=size)
        winner = min(
            (int(index) for index in indices),
            key=lambda index: (
                ranks[index],
                niche_counts[association[index][0]],
                association[index][1],
                index,
            ),
        )
        return population[winner]


__all__ = [
    "Nsga3Parameters",
    "NSGA3Search",
    "das_dennis_reference_points",
    "default_divisions",
    "associate_to_references",
    "niche_select",
]
