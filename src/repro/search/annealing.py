"""Simulated annealing mapping search.

This is the search method the paper's FRW framework uses for every NoC larger
than ~3x4: start from a random mapping, repeatedly propose a local move (swap
the contents of two tiles), accept the move when it improves the objective or,
with a temperature-dependent probability, when it worsens it, and keep the
best mapping ever seen.  The schedule (initial temperature, geometric cooling,
moves per temperature, stop condition) is configurable through
:class:`AnnealingSchedule`.

When the objective advertises incremental pricing (objectives built through
:mod:`repro.core.objective` do — see :mod:`repro.eval`), the engine prices
each proposed swap with ``objective.delta`` instead of re-evaluating the
whole mapping, and only materialises the candidate mapping when the move is
accepted.  For CWM that delta is exact and O(degree); for CDCM it is the
*bounded repair* of :mod:`repro.eval.repair` — a partial reschedule of only
the disturbed packets, exact at every resync point and drift-bounded in
between.  Acceptance decisions depend on the move's delta
alone, and the incumbent cost is re-synchronised against a full evaluation
whenever a new best is recorded, so the walk follows the full-re-evaluation
path's accepted-move trajectory up to floating-point tie-breaking (an
incremental sum rounds differently than the difference of two full sums, so
a cost-neutral swap can consume the RNG differently).  Pipelines that need
bit-stable reproduction of published rows pin ``use_delta=False`` — see
:class:`repro.analysis.comparison.ComparisonConfig`.

The engine also supports multi-restart annealing (``restarts=k``): k
independent walks from per-restart seed streams, best result kept.  Restarts
are embarrassingly parallel, so ``n_workers`` fans them out over a
:class:`~repro.eval.parallel.ProcessPoolBackend`; per-restart seeds are drawn
before any work is scheduled, making serial and pooled runs bit-identical.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.mapping import Mapping
from repro.search.base import (
    Objective,
    PoolOwnerMixin,
    SearchResult,
    Searcher,
    as_objective,
    delta_callable,
    objective_metrics,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng, spawn_seeds


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule and stop conditions for :class:`SimulatedAnnealing`.

    Attributes
    ----------
    initial_temperature:
        Starting temperature, in objective units.  When ``None`` the engine
        calibrates it from a short random walk so that roughly 80 % of
        worsening moves are initially accepted — which removes the need to
        know the objective's scale (energy in pJ can span many orders of
        magnitude between applications).
    cooling_factor:
        Geometric cooling ratio applied after every temperature plateau
        (``0 < factor < 1``).
    moves_per_temperature:
        Number of proposed moves at each temperature.  When ``None`` it
        defaults to ``8 x n`` where ``n`` is the number of tiles, which keeps
        effort proportional to the NoC size as the paper's Table 2 sweep
        requires.
    min_temperature_ratio:
        The annealing stops when the temperature falls below
        ``initial_temperature x min_temperature_ratio``.
    max_evaluations:
        Hard cap on objective evaluations (safety bound for the CDCM
        objective, whose single evaluation cost grows with the packet count).
    stall_plateaus:
        Stop early after this many consecutive plateaus without any
        improvement of the incumbent.
    """

    initial_temperature: Optional[float] = None
    cooling_factor: float = 0.95
    moves_per_temperature: Optional[int] = None
    min_temperature_ratio: float = 1e-4
    max_evaluations: int = 100_000
    stall_plateaus: int = 25

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling_factor < 1.0:
            raise ConfigurationError(
                f"cooling_factor must be in (0, 1), got {self.cooling_factor}"
            )
        if self.initial_temperature is not None and self.initial_temperature <= 0:
            raise ConfigurationError(
                f"initial_temperature must be positive, got {self.initial_temperature}"
            )
        if self.moves_per_temperature is not None and self.moves_per_temperature <= 0:
            raise ConfigurationError(
                f"moves_per_temperature must be positive, "
                f"got {self.moves_per_temperature}"
            )
        if not 0.0 < self.min_temperature_ratio < 1.0:
            raise ConfigurationError(
                f"min_temperature_ratio must be in (0, 1), "
                f"got {self.min_temperature_ratio}"
            )
        if self.max_evaluations <= 0:
            raise ConfigurationError(
                f"max_evaluations must be positive, got {self.max_evaluations}"
            )
        if self.stall_plateaus <= 0:
            raise ConfigurationError(
                f"stall_plateaus must be positive, got {self.stall_plateaus}"
            )


#: A reduced-effort schedule used by the test-suite and the smoke benches.
FAST_SCHEDULE = AnnealingSchedule(
    cooling_factor=0.85,
    min_temperature_ratio=1e-2,
    max_evaluations=4_000,
    stall_plateaus=8,
)


def _run_restart_payload(
    schedule: AnnealingSchedule,
    use_delta: bool,
    payload: bytes,
    seed: int,
    fresh_initial: bool,
) -> SearchResult:
    """Pool-side restart unit: unpickle ``(objective, initial)`` and run.

    The driver pickles the objective **once** and ships the same bytes to
    every restart task (a CDCM objective carries the whole application
    graph; re-pickling it per restart would multiply that cost), so this
    wrapper exists purely to move the deserialisation into the worker.
    """
    objective, initial = pickle.loads(payload)
    return _run_restart(schedule, use_delta, objective, initial, seed, fresh_initial)


def _run_restart(
    schedule: AnnealingSchedule,
    use_delta: bool,
    objective: Objective,
    initial: Mapping,
    seed: int,
    fresh_initial: bool,
) -> SearchResult:
    """Run one independent annealing restart (the unit of restart fan-out).

    Module-level so it pickles: the multi-restart driver ships
    ``(schedule, objective, initial, seed)`` to pool workers through
    :meth:`~repro.eval.parallel.BatchBackend.map`, and runs the identical
    function inline when no pool is configured — which is what keeps serial
    and pooled restarts bit-identical.

    Parameters
    ----------
    schedule, use_delta:
        Engine configuration of the restart.
    objective:
        The objective to minimise (rebuilt in the worker via the context's
        light pickling when run remotely).
    initial:
        The caller's starting mapping.
    seed:
        Integer seed of this restart's private RNG stream.
    fresh_initial:
        When True, the restart starts from a random mapping drawn from its
        own stream instead of *initial* (all restarts but the first).

    Returns
    -------
    SearchResult
        The restart's search trace.
    """
    generator = ensure_rng(seed)
    start = initial
    if fresh_initial:
        num_tiles = initial.num_tiles
        assert num_tiles is not None  # checked by the driver
        start = Mapping.random(initial.cores, num_tiles, generator)
    engine = SimulatedAnnealing(schedule, use_delta=use_delta)
    return engine.search(objective, start, generator)


class SimulatedAnnealing(PoolOwnerMixin, Searcher):
    """Simulated-annealing search over tile-swap moves.

    Parameters
    ----------
    schedule:
        Cooling schedule; defaults to :class:`AnnealingSchedule`.
    use_delta:
        Consult ``objective.delta`` for move pricing when the objective
        supports it (see :func:`repro.search.base.delta_callable`); disable to
        force full re-evaluation of every candidate (the seed behaviour, kept
        for benchmarking the evaluation engine against its baseline).
    restarts:
        Independent annealing runs per :meth:`search` call; the best result
        over all restarts is returned.  The first restart starts from the
        caller's initial mapping, later ones from fresh random mappings drawn
        from per-restart seed streams.  1 (the default) reproduces the
        single-run behaviour exactly.
    n_workers:
        Fan the restarts out over a
        :class:`~repro.eval.parallel.ProcessPoolBackend` of this size
        (requires a picklable objective — the contexts of
        :mod:`repro.core.objective` are; a non-picklable objective silently
        falls back to serial restarts).  Results are bit-identical to serial
        restarts; note that with a pool the objective's evaluation counters
        only reflect main-process work, while ``SearchResult.evaluations``
        aggregates all restarts either way.
    backend:
        Optional explicit backend for the restart fan-out (overrides
        ``n_workers``); the caller owns it.
    """

    name = "annealing"

    #: Relative tolerance separating "may have improved the incumbent best"
    #: from accumulated floating-point drift of incrementally tracked costs.
    #: Erring small is safe: a spurious trigger only costs one full
    #: re-evaluation (which re-synchronises the incumbent and then decides
    #: exactly), while a guard wider than a true improvement would skip a
    #: best-update the full path records.
    _BEST_GUARD = 1e-12

    def __init__(
        self,
        schedule: AnnealingSchedule | None = None,
        use_delta: bool = True,
        restarts: int = 1,
        n_workers: Optional[int] = None,
        backend=None,
    ) -> None:
        if restarts < 1:
            raise ConfigurationError(f"restarts must be positive, got {restarts}")
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
        self.schedule = schedule or AnnealingSchedule()
        self.use_delta = use_delta
        self.restarts = restarts
        self.n_workers = n_workers
        self._backend = backend
        self._owned_backend = None

    # ------------------------------------------------------------------
    def _restart_backend(self):
        """The backend restart fan-out goes through (``None`` = serial)."""
        return self._resolve_backend(self.n_workers)

    # ------------------------------------------------------------------
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Minimise *objective* by annealing (optionally multi-restart).

        Parameters
        ----------
        objective:
            ``mapping -> cost`` callable; delta-capable objectives are priced
            incrementally unless ``use_delta`` is False.
        initial:
            Starting mapping (must know the NoC size).
        rng:
            Seed or generator; with ``restarts > 1`` it only seeds the
            per-restart streams, so results are reproducible regardless of
            how the restarts are scheduled.

        Returns
        -------
        SearchResult
            The single run's trace, or the aggregate of all restarts (best
            mapping overall, summed evaluations/accepted moves, history of
            global-best improvements in restart order).
        """
        objective = as_objective(objective)
        if self.restarts > 1:
            return self._search_restarts(objective, initial, rng)
        return self._search_once(objective, initial, rng)

    def _search_restarts(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource,
    ) -> SearchResult:
        """Run ``restarts`` independent walks and aggregate the best."""
        if initial.num_tiles is None:
            raise ConfigurationError(
                "simulated annealing requires the initial mapping to know the NoC size"
            )
        seeds = spawn_seeds(ensure_rng(rng), self.restarts)
        backend = self._restart_backend()
        payload: Optional[bytes] = None
        if backend is not None:
            # Pickle once, ship the same bytes to every restart task; a
            # non-picklable objective silently falls back to serial restarts.
            try:
                payload = pickle.dumps(
                    (objective, initial), protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                backend = None
        if backend is not None and payload is not None:
            tasks = [
                (self.schedule, self.use_delta, payload, seed, index > 0)
                for index, seed in enumerate(seeds)
            ]
            results: List[SearchResult] = backend.map(_run_restart_payload, tasks)
        else:
            results = [
                _run_restart(
                    self.schedule, self.use_delta, objective, initial, seed, index > 0
                )
                for index, seed in enumerate(seeds)
            ]

        best_index = min(
            range(len(results)), key=lambda i: (results[i].best_cost, i)
        )
        offset = 0
        history: List[Tuple[int, float]] = []
        for result in results:
            for evaluation, cost in result.history:
                if not history or cost < history[-1][1]:
                    history.append((offset + evaluation, cost))
            offset += result.evaluations
        return SearchResult(
            best_mapping=results[best_index].best_mapping,
            best_cost=results[best_index].best_cost,
            evaluations=sum(r.evaluations for r in results),
            history=history,
            accepted_moves=sum(r.accepted_moves for r in results),
            best_metrics=results[best_index].best_metrics,
        )

    def _search_once(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """One annealing walk (the pre-restart behaviour, unchanged)."""
        generator = ensure_rng(rng)
        schedule = self.schedule
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "simulated annealing requires the initial mapping to know the NoC size"
            )
        if num_tiles < 2:
            cost = objective(initial)
            return SearchResult(
                initial,
                cost,
                1,
                [(1, cost)],
                best_metrics=objective_metrics(objective, initial),
            )

        delta_fn = delta_callable(objective) if self.use_delta else None

        current = initial
        current_cost = objective(current)
        best = current
        best_cost = current_cost
        evaluations = 1
        accepted = 0
        history = [(evaluations, best_cost)]

        moves_per_temperature = schedule.moves_per_temperature or max(8, 8 * num_tiles)
        if schedule.initial_temperature is not None:
            temperature = schedule.initial_temperature
        else:
            temperature, calibration_evaluations = self._calibrate_temperature(
                objective, current, current_cost, generator, num_tiles, delta_fn
            )
            evaluations += calibration_evaluations
        floor = temperature * schedule.min_temperature_ratio

        stalled = 0
        while temperature > floor and evaluations < schedule.max_evaluations:
            improved_this_plateau = False
            for _ in range(moves_per_temperature):
                if evaluations >= schedule.max_evaluations:
                    break
                tile_a, tile_b = self._propose_tiles(current, generator, num_tiles)
                if delta_fn is not None:
                    # Incremental path: price the swap in O(degree) and only
                    # build the candidate mapping when the move is accepted.
                    delta = delta_fn(current, tile_a, tile_b)
                    evaluations += 1
                    if delta <= 0 or generator.random() < math.exp(
                        -delta / temperature
                    ):
                        current = current.swap_tiles(tile_a, tile_b)
                        current_cost += delta
                        accepted += 1
                        guard = self._BEST_GUARD * (abs(best_cost) + 1.0)
                        if current_cost < best_cost - guard:
                            # Re-synchronise against a full evaluation before
                            # recording a new best: the incumbent cost carries
                            # accumulated rounding, the best must not.  The
                            # resync is bookkeeping, not a move, so it is not
                            # charged against max_evaluations — the walk visits
                            # exactly the mappings the full path would.
                            current_cost = objective(current)
                            if current_cost < best_cost:
                                best = current
                                best_cost = current_cost
                                history.append((evaluations, best_cost))
                                improved_this_plateau = True
                else:
                    candidate = current.swap_tiles(tile_a, tile_b)
                    candidate_cost = objective(candidate)
                    evaluations += 1
                    delta = candidate_cost - current_cost
                    if delta <= 0 or generator.random() < math.exp(
                        -delta / temperature
                    ):
                        current = candidate
                        current_cost = candidate_cost
                        accepted += 1
                        if current_cost < best_cost:
                            best = current
                            best_cost = current_cost
                            history.append((evaluations, best_cost))
                            improved_this_plateau = True
            stalled = 0 if improved_this_plateau else stalled + 1
            if stalled >= schedule.stall_plateaus:
                break
            temperature *= schedule.cooling_factor

        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            accepted_moves=accepted,
            best_metrics=objective_metrics(objective, best),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _propose_tiles(self, mapping: Mapping, rng, num_tiles: int) -> Tuple[int, int]:
        """Pick two distinct tiles to swap (either may be empty)."""
        tile_a = int(rng.integers(num_tiles))
        tile_b = int(rng.integers(num_tiles - 1))
        if tile_b >= tile_a:
            tile_b += 1
        # Avoid proposing a no-op when both tiles are empty.
        if mapping.core_at(tile_a) is None and mapping.core_at(tile_b) is None:
            used = mapping.used_tiles()
            if used:
                tile_a = used[int(rng.integers(len(used)))]
        return tile_a, tile_b

    def _propose(self, mapping: Mapping, rng, num_tiles: int) -> Mapping:
        """Swap the contents of two distinct tiles (either may be empty)."""
        tile_a, tile_b = self._propose_tiles(mapping, rng, num_tiles)
        return mapping.swap_tiles(tile_a, tile_b)

    def _calibrate_temperature(
        self,
        objective: Objective,
        mapping: Mapping,
        cost: float,
        rng,
        num_tiles: int,
        delta_fn=None,
        samples: int = 20,
        target_acceptance: float = 0.8,
    ) -> Tuple[float, int]:
        """Estimate an initial temperature from the cost deltas of random moves.

        Returns the temperature together with the number of objective
        evaluations spent, so the caller can charge them against the
        evaluation budget (state is deliberately not kept on the instance:
        engines must stay reusable and safe to share across searches).
        """
        deltas = []
        current = mapping
        current_cost = cost
        for _ in range(samples):
            tile_a, tile_b = self._propose_tiles(current, rng, num_tiles)
            if delta_fn is not None:
                move_delta = delta_fn(current, tile_a, tile_b)
                current = current.swap_tiles(tile_a, tile_b)
                current_cost += move_delta
                deltas.append(abs(move_delta))
            else:
                candidate = current.swap_tiles(tile_a, tile_b)
                candidate_cost = objective(candidate)
                deltas.append(abs(candidate_cost - current_cost))
                current, current_cost = candidate, candidate_cost
        mean_delta = sum(deltas) / len(deltas) if deltas else 1.0
        if mean_delta <= 0:
            return max(abs(cost), 1.0) * 0.05, samples
        return -mean_delta / math.log(target_acceptance), samples


__all__ = ["AnnealingSchedule", "SimulatedAnnealing", "FAST_SCHEDULE"]
