"""Common interface and result record for all mapping search engines.

Engines consume objectives through the plain ``mapping -> cost`` contract
and *discover* richer capabilities by probing (:func:`delta_callable`,
:func:`batch_callable`).  Since the vector-objective redesign every engine
also accepts **objective specs** — an
:class:`~repro.eval.context.EvaluationContext` directly, or a
``(vector_objective, weights)`` pair — which :func:`as_objective` coerces
into the callable contract, and every :class:`SearchResult` carries the
best mapping's named per-metric breakdown when the objective can provide
one (:func:`objective_metrics`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import only used by type checkers
    from repro.analysis.pareto import ParetoPoint

#: Objective signature shared by all engines: lower is better.
Objective = Callable[[Mapping], float]

#: Signature of an incremental objective: exact cost change of swapping the
#: contents of two tiles (see :mod:`repro.eval`).
DeltaFunction = Callable[[Mapping, int, int], float]

#: Signature of a bulk objective: costs of several candidates in input order.
#: Implementations must accept an optional ``backend`` keyword naming a
#: :class:`~repro.eval.parallel.BatchBackend` override.
BatchFunction = Callable[..., List[float]]


def delta_callable(objective: Objective) -> Optional[DeltaFunction]:
    """Return the objective's exact swap-delta evaluator, if it has one.

    Delta-aware engines (simulated annealing, greedy refinement) probe the
    objective with this helper: objectives built by
    :mod:`repro.core.objective` advertise incremental pricing through a
    truthy ``supports_delta`` attribute and a ``delta(mapping, tile_a,
    tile_b)`` method, while plain callables simply lack both and make the
    engine fall back to full re-evaluation.

    Parameters
    ----------
    objective:
        The objective handed to :meth:`Searcher.search`.

    Returns
    -------
    DeltaFunction or None
        The bound ``delta`` method, or ``None`` when the objective cannot
        price moves incrementally.
    """
    if getattr(objective, "supports_delta", False):
        delta = getattr(objective, "delta", None)
        if callable(delta):
            return delta
    return None


def batch_callable(objective: Objective) -> Optional[BatchFunction]:
    """Return the objective's bulk evaluator, if it has one.

    Population-based engines (genetic, exhaustive) probe the objective with
    this helper: objectives built by :mod:`repro.core.objective` advertise
    bulk pricing through a truthy ``supports_batch`` attribute and an
    ``evaluate_batch(mappings, backend=None)`` method routed through the
    shared :class:`~repro.eval.context.EvaluationContext` — which is where a
    :class:`~repro.eval.parallel.BatchBackend` can fan the batch out over a
    process pool.  Plain callables lack both and make the engine price
    candidates one at a time, in the same order, with identical results.

    Parameters
    ----------
    objective:
        The objective handed to :meth:`Searcher.search`.

    Returns
    -------
    BatchFunction or None
        The bound ``evaluate_batch`` method, or ``None`` when the objective
        cannot price in bulk.
    """
    if getattr(objective, "supports_batch", False):
        batch = getattr(objective, "evaluate_batch", None)
        if callable(batch):
            return batch
    return None


def as_objective(spec) -> Objective:
    """Coerce an objective spec into the callable engines price through.

    Engines call this on whatever was handed to :meth:`Searcher.search`, so
    all of the following are accepted everywhere a plain callable is:

    * a callable ``mapping -> cost`` (returned unchanged — including
      :class:`~repro.core.objective.CountingObjective` and
      :class:`~repro.core.objective.ScalarisedObjective`);
    * an :class:`~repro.eval.context.EvaluationContext` (wrapped in a
      :class:`~repro.core.objective.CountingObjective` scalarising with the
      context's own weight view);
    * a ``(vector_objective, weights)`` pair (turned into a
      :class:`~repro.core.objective.ScalarisedObjective` view sharing the
      source's memo).

    Parameters
    ----------
    spec:
        The objective or objective spec.

    Returns
    -------
    Objective
        A callable honouring the ``mapping -> cost`` contract.

    Raises
    ------
    ConfigurationError
        When *spec* matches none of the accepted shapes.
    """
    if isinstance(spec, tuple) and len(spec) == 2:
        from repro.core.objective import ScalarisedObjective

        source, weights = spec
        return ScalarisedObjective(source, weights)
    if callable(spec):
        return spec
    if callable(getattr(spec, "cost", None)) and callable(
        getattr(spec, "metrics", None)
    ):
        from repro.core.objective import _bind_context

        return _bind_context(spec)
    raise ConfigurationError(
        f"cannot build an objective from {spec!r}; expected a callable, an "
        f"EvaluationContext, or a (vector_objective, weights) pair"
    )


def objective_metrics(
    objective: Objective, mapping: Mapping
) -> Optional[MetricVector]:
    """Best-effort per-metric breakdown of *mapping* under *objective*.

    Probes the objective's bound evaluation context first (an uncounted
    memo lookup, so attaching a breakdown to a
    :class:`SearchResult` never perturbs the Section 5 effort counters or
    the search walk), then the objective itself; plain scalar callables
    yield ``None``.
    """
    context = getattr(objective, "context", None)
    source = context if context is not None else objective
    probe = getattr(source, "metrics", None)
    if not callable(probe):
        return None
    try:
        return probe(mapping)
    except NotImplementedError:
        return None


class PoolOwnerMixin:
    """Shared lifecycle for engines that can own a process-pool backend.

    Engines with a parallel-pricing knob either receive an explicit backend
    (caller-owned, never closed here) or lazily build their own
    :class:`~repro.eval.parallel.ProcessPoolBackend` from an ``n_workers``
    count.  This mixin centralises that resolution plus the
    :meth:`close` / context-manager plumbing, so the policy lives in one
    place.  Subclasses must set ``_backend`` (the explicit backend or
    ``None``) in their constructor and call :meth:`_resolve_backend` with
    their worker count.
    """

    _backend = None
    _owned_backend = None

    def _resolve_backend(self, n_workers: Optional[int]):
        """The backend batched work goes through (``None`` = inline/serial)."""
        if self._backend is not None:
            return self._backend
        if n_workers is not None and n_workers > 1:
            if self._owned_backend is None:
                from repro.eval.parallel import ProcessPoolBackend

                self._owned_backend = ProcessPoolBackend(n_workers=n_workers)
            return self._owned_backend
        return None

    def close(self) -> None:
        """Shut down the engine-owned process pool, if one was created."""
        if self._owned_backend is not None:
            self._owned_backend.close()
            self._owned_backend = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes
    ----------
    best_mapping:
        The lowest-cost mapping found.
    best_cost:
        Its objective value.
    evaluations:
        Number of objective evaluations performed by the engine.
    history:
        ``(evaluation_index, best_cost_so_far)`` samples, recorded whenever
        the incumbent improves — enough to plot convergence curves without
        storing every evaluation.
    accepted_moves:
        For move-based engines (simulated annealing, GA), how many candidate
        moves were accepted; 0 for constructive or enumerative engines.
    best_metrics:
        Named per-metric breakdown of ``best_mapping`` (energy terms, CDCM
        makespan) when the objective exposes one — attached by every engine
        via :func:`objective_metrics`; ``None`` for plain scalar callables.
    front:
        For multi-objective engines
        (:class:`~repro.search.nsga2.NSGA2Search`), the final non-dominated
        set as :class:`~repro.analysis.pareto.ParetoPoint` objects — directly
        interoperable with :mod:`repro.analysis.pareto`
        (:func:`~repro.analysis.pareto.front_to_rows`,
        :func:`~repro.analysis.pareto.hypervolume`, dominance comparisons
        against :func:`~repro.analysis.pareto.weight_sweep_front` fronts).
        ``None`` for scalar engines.
    """

    best_mapping: Mapping
    best_cost: float
    evaluations: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    accepted_moves: int = 0
    best_metrics: Optional[MetricVector] = None
    front: Optional[List["ParetoPoint"]] = None

    @property
    def metric_breakdown(self) -> Optional[Dict[str, float]]:
        """``best_metrics`` as a plain dict, or ``None`` when unavailable."""
        return self.best_metrics.as_dict() if self.best_metrics is not None else None

    def metric(self, name: str) -> float:
        """One component of the best mapping's breakdown, by name.

        Raises
        ------
        ConfigurationError
            When the engine could not attach a breakdown (plain scalar
            objective).
        KeyError
            When the breakdown exists but has no such component.
        """
        if self.best_metrics is None:
            raise ConfigurationError(
                "this search result carries no per-metric breakdown; the "
                "objective was a plain scalar callable"
            )
        return self.best_metrics[name]

    def improvement_over(self, reference_cost: float) -> float:
        """Relative improvement of ``best_cost`` w.r.t. *reference_cost*.

        Returns e.g. ``0.25`` when the search found a mapping 25 % cheaper
        than the reference.  Zero when the reference is not positive.
        """
        if reference_cost <= 0:
            return 0.0
        return (reference_cost - self.best_cost) / reference_cost


class Searcher(ABC):
    """A mapping search engine.

    Engines are stateless with respect to the application: everything they
    know about the problem comes through the objective function and the
    initial mapping, which makes them reusable for CWM and CDCM objectives
    alike (exactly how the paper's FRW framework reuses its two search
    methods for both models).

    Engines that explore by tile swaps may additionally probe the objective
    with :func:`delta_callable` and price moves incrementally when the
    objective supports it; population-based engines probe with
    :func:`batch_callable` and price whole generations (or enumeration
    chunks) in one call — the hook that lets a
    :class:`~repro.eval.parallel.BatchBackend` parallelise them.  The plain
    ``mapping -> cost`` contract remains the only requirement; objective
    *specs* (an :class:`~repro.eval.context.EvaluationContext`, or a
    ``(vector_objective, weights)`` pair) are coerced through
    :func:`as_objective` by every engine.
    """

    #: Short identifier used by the registry and reports.
    name: str = "abstract"

    @abstractmethod
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Minimise *objective* starting from the *initial* mapping."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = [
    "Objective",
    "DeltaFunction",
    "BatchFunction",
    "delta_callable",
    "batch_callable",
    "as_objective",
    "objective_metrics",
    "PoolOwnerMixin",
    "SearchResult",
    "Searcher",
]
