"""Common interface and result record for all mapping search engines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.mapping import Mapping
from repro.utils.rng import RandomSource

#: Objective signature shared by all engines: lower is better.
Objective = Callable[[Mapping], float]

#: Signature of an incremental objective: exact cost change of swapping the
#: contents of two tiles (see :mod:`repro.eval`).
DeltaFunction = Callable[[Mapping, int, int], float]


def delta_callable(objective: Objective) -> Optional[DeltaFunction]:
    """Return the objective's exact swap-delta evaluator, if it has one.

    Delta-aware engines (simulated annealing, greedy refinement) probe the
    objective with this helper: objectives built by
    :mod:`repro.core.objective` advertise incremental pricing through a
    truthy ``supports_delta`` attribute and a ``delta(mapping, tile_a,
    tile_b)`` method, while plain callables simply lack both and make the
    engine fall back to full re-evaluation.  Returns ``None`` when the
    objective cannot price moves incrementally.
    """
    if getattr(objective, "supports_delta", False):
        delta = getattr(objective, "delta", None)
        if callable(delta):
            return delta
    return None


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes
    ----------
    best_mapping:
        The lowest-cost mapping found.
    best_cost:
        Its objective value.
    evaluations:
        Number of objective evaluations performed by the engine.
    history:
        ``(evaluation_index, best_cost_so_far)`` samples, recorded whenever
        the incumbent improves — enough to plot convergence curves without
        storing every evaluation.
    accepted_moves:
        For move-based engines (simulated annealing, GA), how many candidate
        moves were accepted; 0 for constructive or enumerative engines.
    """

    best_mapping: Mapping
    best_cost: float
    evaluations: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    accepted_moves: int = 0

    def improvement_over(self, reference_cost: float) -> float:
        """Relative improvement of ``best_cost`` w.r.t. *reference_cost*.

        Returns e.g. ``0.25`` when the search found a mapping 25 % cheaper
        than the reference.  Zero when the reference is not positive.
        """
        if reference_cost <= 0:
            return 0.0
        return (reference_cost - self.best_cost) / reference_cost


class Searcher(ABC):
    """A mapping search engine.

    Engines are stateless with respect to the application: everything they
    know about the problem comes through the objective function and the
    initial mapping, which makes them reusable for CWM and CDCM objectives
    alike (exactly how the paper's FRW framework reuses its two search
    methods for both models).

    Engines that explore by tile swaps may additionally probe the objective
    with :func:`delta_callable` and price moves incrementally when the
    objective supports it; the plain ``mapping -> cost`` contract remains the
    only requirement.
    """

    #: Short identifier used by the registry and reports.
    name: str = "abstract"

    @abstractmethod
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Minimise *objective* starting from the *initial* mapping."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = ["Objective", "DeltaFunction", "delta_callable", "SearchResult", "Searcher"]
