"""Common interface and result record for all mapping search engines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.mapping import Mapping
from repro.utils.rng import RandomSource

#: Objective signature shared by all engines: lower is better.
Objective = Callable[[Mapping], float]

#: Signature of an incremental objective: exact cost change of swapping the
#: contents of two tiles (see :mod:`repro.eval`).
DeltaFunction = Callable[[Mapping, int, int], float]

#: Signature of a bulk objective: costs of several candidates in input order.
#: Implementations must accept an optional ``backend`` keyword naming a
#: :class:`~repro.eval.parallel.BatchBackend` override.
BatchFunction = Callable[..., List[float]]


def delta_callable(objective: Objective) -> Optional[DeltaFunction]:
    """Return the objective's exact swap-delta evaluator, if it has one.

    Delta-aware engines (simulated annealing, greedy refinement) probe the
    objective with this helper: objectives built by
    :mod:`repro.core.objective` advertise incremental pricing through a
    truthy ``supports_delta`` attribute and a ``delta(mapping, tile_a,
    tile_b)`` method, while plain callables simply lack both and make the
    engine fall back to full re-evaluation.

    Parameters
    ----------
    objective:
        The objective handed to :meth:`Searcher.search`.

    Returns
    -------
    DeltaFunction or None
        The bound ``delta`` method, or ``None`` when the objective cannot
        price moves incrementally.
    """
    if getattr(objective, "supports_delta", False):
        delta = getattr(objective, "delta", None)
        if callable(delta):
            return delta
    return None


def batch_callable(objective: Objective) -> Optional[BatchFunction]:
    """Return the objective's bulk evaluator, if it has one.

    Population-based engines (genetic, exhaustive) probe the objective with
    this helper: objectives built by :mod:`repro.core.objective` advertise
    bulk pricing through a truthy ``supports_batch`` attribute and an
    ``evaluate_batch(mappings, backend=None)`` method routed through the
    shared :class:`~repro.eval.context.EvaluationContext` — which is where a
    :class:`~repro.eval.parallel.BatchBackend` can fan the batch out over a
    process pool.  Plain callables lack both and make the engine price
    candidates one at a time, in the same order, with identical results.

    Parameters
    ----------
    objective:
        The objective handed to :meth:`Searcher.search`.

    Returns
    -------
    BatchFunction or None
        The bound ``evaluate_batch`` method, or ``None`` when the objective
        cannot price in bulk.
    """
    if getattr(objective, "supports_batch", False):
        batch = getattr(objective, "evaluate_batch", None)
        if callable(batch):
            return batch
    return None


class PoolOwnerMixin:
    """Shared lifecycle for engines that can own a process-pool backend.

    Engines with a parallel-pricing knob either receive an explicit backend
    (caller-owned, never closed here) or lazily build their own
    :class:`~repro.eval.parallel.ProcessPoolBackend` from an ``n_workers``
    count.  This mixin centralises that resolution plus the
    :meth:`close` / context-manager plumbing, so the policy lives in one
    place.  Subclasses must set ``_backend`` (the explicit backend or
    ``None``) in their constructor and call :meth:`_resolve_backend` with
    their worker count.
    """

    _backend = None
    _owned_backend = None

    def _resolve_backend(self, n_workers: Optional[int]):
        """The backend batched work goes through (``None`` = inline/serial)."""
        if self._backend is not None:
            return self._backend
        if n_workers is not None and n_workers > 1:
            if self._owned_backend is None:
                from repro.eval.parallel import ProcessPoolBackend

                self._owned_backend = ProcessPoolBackend(n_workers=n_workers)
            return self._owned_backend
        return None

    def close(self) -> None:
        """Shut down the engine-owned process pool, if one was created."""
        if self._owned_backend is not None:
            self._owned_backend.close()
            self._owned_backend = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes
    ----------
    best_mapping:
        The lowest-cost mapping found.
    best_cost:
        Its objective value.
    evaluations:
        Number of objective evaluations performed by the engine.
    history:
        ``(evaluation_index, best_cost_so_far)`` samples, recorded whenever
        the incumbent improves — enough to plot convergence curves without
        storing every evaluation.
    accepted_moves:
        For move-based engines (simulated annealing, GA), how many candidate
        moves were accepted; 0 for constructive or enumerative engines.
    """

    best_mapping: Mapping
    best_cost: float
    evaluations: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    accepted_moves: int = 0

    def improvement_over(self, reference_cost: float) -> float:
        """Relative improvement of ``best_cost`` w.r.t. *reference_cost*.

        Returns e.g. ``0.25`` when the search found a mapping 25 % cheaper
        than the reference.  Zero when the reference is not positive.
        """
        if reference_cost <= 0:
            return 0.0
        return (reference_cost - self.best_cost) / reference_cost


class Searcher(ABC):
    """A mapping search engine.

    Engines are stateless with respect to the application: everything they
    know about the problem comes through the objective function and the
    initial mapping, which makes them reusable for CWM and CDCM objectives
    alike (exactly how the paper's FRW framework reuses its two search
    methods for both models).

    Engines that explore by tile swaps may additionally probe the objective
    with :func:`delta_callable` and price moves incrementally when the
    objective supports it; population-based engines probe with
    :func:`batch_callable` and price whole generations (or enumeration
    chunks) in one call — the hook that lets a
    :class:`~repro.eval.parallel.BatchBackend` parallelise them.  The plain
    ``mapping -> cost`` contract remains the only requirement.
    """

    #: Short identifier used by the registry and reports.
    name: str = "abstract"

    @abstractmethod
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Minimise *objective* starting from the *initial* mapping."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = [
    "Objective",
    "DeltaFunction",
    "BatchFunction",
    "delta_callable",
    "batch_callable",
    "PoolOwnerMixin",
    "SearchResult",
    "Searcher",
]
