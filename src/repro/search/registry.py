"""Registry of search engines, for configuration-by-name.

The FRW framework (and the benchmark harness) select search methods by a
short string — ``"annealing"``, ``"exhaustive"``, ``"random"``, ``"genetic"``
— exactly like the paper's "ES" and "SA" columns.  The greedy constructive
heuristic is not registered here because it needs the application CWG at
construction time; it is exposed through
:class:`repro.search.greedy.GreedyConstructive` directly.

Engine keyword arguments are forwarded verbatim, so evaluation-engine knobs
travel through the registry too — e.g. ``get_searcher("sa", use_delta=False)``
builds an annealer that ignores incremental pricing and re-evaluates every
candidate in full (the pre-:mod:`repro.eval` behaviour, kept for perf
baselines).  The parallel-pricing knobs ride the same path:
``get_searcher("genetic", n_workers=4)`` prices GA generations over a
four-worker process pool, ``get_searcher("sa", restarts=8, n_workers=4)``
fans restarts out, and ``get_searcher("es", n_workers=4)`` prices enumeration
chunks in parallel (see :mod:`repro.eval.parallel`).

Registry-built engines accept objective *specs* like every other engine: an
:class:`~repro.eval.context.EvaluationContext` or a ``(vector_objective,
weights)`` pair can be passed straight to ``search(...)`` — see
:func:`repro.search.base.as_objective`.  The multi-objective engine rides the
same path: ``get_searcher("nsga2", keys=("dynamic_energy", "time"),
n_workers=4)`` builds a population-front search whose result carries the
final non-dominated set (it requires a vector-capable objective spec).

See `docs/search.md` for a per-engine guide with when-to-use advice.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.search.annealing import SimulatedAnnealing
from repro.search.base import Searcher
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticSearch
from repro.search.nsga2 import NSGA2Search
from repro.search.nsga3 import NSGA3Search
from repro.search.random_search import RandomSearch
from repro.utils.errors import ConfigurationError

_REGISTRY: Dict[str, Type[Searcher]] = {
    SimulatedAnnealing.name: SimulatedAnnealing,
    ExhaustiveSearch.name: ExhaustiveSearch,
    RandomSearch.name: RandomSearch,
    GeneticSearch.name: GeneticSearch,
    NSGA2Search.name: NSGA2Search,
    NSGA3Search.name: NSGA3Search,
    # Aliases matching the paper's abbreviations (and the NSGA literature).
    "sa": SimulatedAnnealing,
    "es": ExhaustiveSearch,
    "nsga-ii": NSGA2Search,
    "nsga-iii": NSGA3Search,
}


def available_searchers() -> List[str]:
    """Names accepted by :func:`get_searcher` (aliases included), sorted."""
    return sorted(_REGISTRY)


def get_searcher(name: str, **kwargs) -> Searcher:
    """Instantiate a search engine by name.

    Keyword arguments are forwarded to the engine constructor, e.g.
    ``get_searcher("annealing", schedule=FAST_SCHEDULE)``.
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown search engine {name!r}; available: {available_searchers()}"
        ) from exc
    return cls(**kwargs)


__all__ = ["available_searchers", "get_searcher"]
