"""Exhaustive search over all core-to-tile assignments.

The paper uses exhaustive search (ES) on small NoCs (up to 3x4 / 2x5) as the
optimality reference for simulated annealing; for those sizes both methods
reach the same solutions.  The search space is every injective assignment of
the ``m`` application cores to the ``n`` tiles — ``n! / (n-m)!`` mappings —
so the engine refuses (by default) to enumerate spaces larger than a
configurable bound instead of silently running for hours.
"""

from __future__ import annotations

import math
from itertools import permutations
from typing import Optional

from repro.core.mapping import Mapping
from repro.search.base import Objective, SearchResult, Searcher
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource


class ExhaustiveSearch(Searcher):
    """Enumerate every injective mapping and keep the cheapest.

    Parameters
    ----------
    max_candidates:
        Safety bound on the number of mappings the engine will enumerate.
        ``None`` disables the bound.
    fix_first_core:
        When True, the first core (in sorted order) is only placed on tiles of
        one mesh quadrant... more precisely it is pinned to the tiles it was
        *not* already symmetric to; since a full symmetry reduction requires
        knowledge of the mesh automorphisms, the implementation simply pins
        the first core to its initial tile's orbit under enumeration order by
        fixing it to each tile index ``<= n // 2``.  This halves (at least)
        the enumeration effort while still containing an optimal mapping for
        symmetric meshes.  Disabled by default to keep the engine exact for
        any topology.
    """

    name = "exhaustive"

    def __init__(
        self,
        max_candidates: Optional[int] = 2_000_000,
        fix_first_core: bool = False,
    ) -> None:
        self.max_candidates = max_candidates
        self.fix_first_core = fix_first_core

    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        del rng  # the enumeration is deterministic
        cores = initial.cores
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "exhaustive search requires the initial mapping to know the NoC size"
            )
        space = self.search_space_size(len(cores), num_tiles)
        if self.max_candidates is not None and space > self.max_candidates:
            raise ConfigurationError(
                f"exhaustive search space has {space} mappings, above the "
                f"configured bound of {self.max_candidates}; use simulated "
                f"annealing for this NoC size"
            )

        best_mapping = initial
        best_cost = objective(initial)
        evaluations = 1
        history = [(1, best_cost)]

        tile_indices = list(range(num_tiles))
        first_core_tiles = None
        if self.fix_first_core and cores:
            first_core_tiles = set(range((num_tiles + 1) // 2))

        for assignment in permutations(tile_indices, len(cores)):
            if first_core_tiles is not None and assignment[0] not in first_core_tiles:
                continue
            candidate = Mapping(dict(zip(cores, assignment)), num_tiles=num_tiles)
            if candidate == initial:
                continue
            cost = objective(candidate)
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_mapping = candidate
                history.append((evaluations, cost))

        return SearchResult(
            best_mapping=best_mapping,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
        )

    @staticmethod
    def search_space_size(num_cores: int, num_tiles: int) -> int:
        """Number of injective mappings of *num_cores* cores onto *num_tiles* tiles."""
        if num_cores > num_tiles:
            return 0
        return math.perm(num_tiles, num_cores)


__all__ = ["ExhaustiveSearch"]
