"""Exhaustive search over all core-to-tile assignments.

The paper uses exhaustive search (ES) on small NoCs (up to 3x4 / 2x5) as the
optimality reference for simulated annealing; for those sizes both methods
reach the same solutions.  The search space is every injective assignment of
the ``m`` application cores to the ``n`` tiles — ``n! / (n-m)!`` mappings —
so the engine refuses (by default) to enumerate spaces larger than a
configurable bound instead of silently running for hours.

Candidates are priced in enumeration-order chunks through the objective's
:meth:`~repro.core.objective.CountingObjective.evaluate_batch` (when it has
one), which is the seam a :class:`~repro.eval.parallel.BatchBackend` can
parallelise — and the seam the CWM array kernel
(:mod:`repro.eval.vector`) vectorises, pricing each enumeration chunk as one
``(chunk, cores)`` NumPy gather; results — best mapping, cost, evaluation
count and history — are bit-identical to the one-at-a-time path because
chunking preserves the enumeration order exactly and the kernel reduces in
the scalar accumulation order.
"""

from __future__ import annotations

import math
from itertools import permutations
from typing import List, Optional

from repro.core.mapping import Mapping
from repro.search.base import (
    Objective,
    PoolOwnerMixin,
    SearchResult,
    Searcher,
    as_objective,
    batch_callable,
    objective_metrics,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource

#: Candidates priced per batch call during enumeration.
DEFAULT_BATCH_SIZE = 256


class ExhaustiveSearch(PoolOwnerMixin, Searcher):
    """Enumerate every injective mapping and keep the cheapest.

    Parameters
    ----------
    max_candidates:
        Safety bound on the number of mappings the engine will enumerate.
        ``None`` disables the bound.
    fix_first_core:
        When True, the first core (in sorted order) is only placed on tiles of
        one mesh quadrant... more precisely it is pinned to the tiles it was
        *not* already symmetric to; since a full symmetry reduction requires
        knowledge of the mesh automorphisms, the implementation simply pins
        the first core to its initial tile's orbit under enumeration order by
        fixing it to each tile index ``<= n // 2``.  This halves (at least)
        the enumeration effort while still containing an optimal mapping for
        symmetric meshes.  Disabled by default to keep the engine exact for
        any topology.
    batch_size:
        Candidates priced per :meth:`evaluate_batch` call when the objective
        supports bulk pricing; irrelevant otherwise.
    backend:
        Optional :class:`~repro.eval.parallel.BatchBackend` override
        forwarded to the objective's batch calls (e.g. a
        :class:`~repro.eval.parallel.ProcessPoolBackend` for expensive CDCM
        enumeration).  The caller owns it.
    n_workers:
        Convenience knob: when given (and > 1) without an explicit *backend*,
        the engine builds a process pool of that size on first use and
        releases it in :meth:`close`.
    """

    name = "exhaustive"

    def __init__(
        self,
        max_candidates: Optional[int] = 2_000_000,
        fix_first_core: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        backend=None,
        n_workers: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
        self.max_candidates = max_candidates
        self.fix_first_core = fix_first_core
        self.batch_size = batch_size
        self.n_workers = n_workers
        self._backend = backend
        self._owned_backend = None

    # ------------------------------------------------------------------
    def _pricing_backend(self):
        """The backend enumeration chunks go through (``None`` = inline)."""
        return self._resolve_backend(self.n_workers)

    # ------------------------------------------------------------------
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Enumerate the space and return the global optimum.

        Parameters
        ----------
        objective:
            ``mapping -> cost`` callable (lower is better).
        initial:
            Defines the core set and NoC size; also the first candidate
            evaluated.
        rng:
            Ignored — the enumeration is deterministic.

        Returns
        -------
        SearchResult
            The cheapest mapping of the whole space, with a history entry per
            improvement along the enumeration order.
        """
        del rng  # the enumeration is deterministic
        objective = as_objective(objective)
        cores = initial.cores
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "exhaustive search requires the initial mapping to know the NoC size"
            )
        space = self.search_space_size(len(cores), num_tiles)
        if self.max_candidates is not None and space > self.max_candidates:
            raise ConfigurationError(
                f"exhaustive search space has {space} mappings, above the "
                f"configured bound of {self.max_candidates}; use simulated "
                f"annealing for this NoC size"
            )

        batch_fn = batch_callable(objective)
        backend = self._pricing_backend() if batch_fn is not None else None

        def price(candidates: List[Mapping]) -> List[float]:
            if batch_fn is not None:
                return batch_fn(candidates, backend=backend)
            return [objective(candidate) for candidate in candidates]

        best_mapping = initial
        best_cost = price([initial])[0]
        evaluations = 1
        history = [(1, best_cost)]

        tile_indices = list(range(num_tiles))
        first_core_tiles = None
        if self.fix_first_core and cores:
            first_core_tiles = set(range((num_tiles + 1) // 2))

        def consume(chunk: List[Mapping]) -> None:
            nonlocal best_mapping, best_cost, evaluations
            for candidate, cost in zip(chunk, price(chunk)):
                evaluations += 1
                if cost < best_cost:
                    best_cost = cost
                    best_mapping = candidate
                    history.append((evaluations, cost))

        chunk: List[Mapping] = []
        for assignment in permutations(tile_indices, len(cores)):
            if first_core_tiles is not None and assignment[0] not in first_core_tiles:
                continue
            candidate = Mapping(dict(zip(cores, assignment)), num_tiles=num_tiles)
            if candidate == initial:
                continue
            chunk.append(candidate)
            if len(chunk) >= self.batch_size:
                consume(chunk)
                chunk = []
        if chunk:
            consume(chunk)

        return SearchResult(
            best_mapping=best_mapping,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            best_metrics=objective_metrics(objective, best_mapping),
        )

    @staticmethod
    def search_space_size(num_cores: int, num_tiles: int) -> int:
        """Number of injective mappings of *num_cores* cores onto *num_tiles* tiles.

        Parameters
        ----------
        num_cores:
            Application cores to place.
        num_tiles:
            Tiles of the target NoC.

        Returns
        -------
        int
            ``perm(num_tiles, num_cores)``; 0 when the cores cannot fit.
        """
        if num_cores > num_tiles:
            return 0
        return math.perm(num_tiles, num_cores)


__all__ = ["ExhaustiveSearch", "DEFAULT_BATCH_SIZE"]
