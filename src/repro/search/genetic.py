"""Genetic-algorithm mapping search (extension).

The paper only evaluates exhaustive search and simulated annealing; a
permutation GA is included as an extension and as an ablation reference —
it explores the same move space (injective core-to-tile assignments) with a
population-based strategy:

* individuals are mappings;
* selection is tournament selection on the objective;
* crossover is a position-preserving uniform crossover repaired to keep the
  assignment injective;
* mutation swaps the contents of two tiles.

Pricing is batched: each generation's children are generated first (consuming
the RNG in exactly the order the per-child loop used to) and then priced in
one :meth:`~repro.core.objective.CountingObjective.evaluate_batch` call.
That batch call is the parallelism seam — set
:attr:`GeneticParameters.n_workers` (or pass a
:class:`~repro.eval.parallel.BatchBackend` to :class:`GeneticSearch`) to fan
generations out over a process pool.  Costs are bit-identical across
backends, so a seeded run returns the same mapping regardless of
``n_workers``.

The same batch call is also the vectorisation seam: under a CWM objective
the context stacks each generation's misses into one ``(pop, cores)`` tile
array and prices it with the NumPy array kernel
(:class:`~repro.eval.vector.VectorizedCwmKernel`) instead of looping per
child — bit-identical again, so the gate
(:attr:`~repro.eval.context.CwmEvaluationContext` ``vectorize``, default on)
never changes which mapping a seeded run returns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.mapping import Mapping
from repro.search.base import (
    Objective,
    PoolOwnerMixin,
    SearchResult,
    Searcher,
    as_objective,
    batch_callable,
    objective_metrics,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng


def uniform_assignment_crossover(
    parent_a: Mapping,
    parent_b: Mapping,
    cores: List[str],
    num_tiles: int,
    rng,
) -> Mapping:
    """Position-preserving uniform crossover with injectivity repair.

    For each core (in *cores* order) the child inherits one parent's tile,
    preferring a uniformly chosen parent but falling back to the other when
    the preferred tile is already taken; cores whose tiles are both taken
    are placed on shuffled leftover tiles in a final repair pass.  The RNG
    is consumed once per core plus one shuffle, so seeded runs are
    reproducible.

    Shared by :class:`GeneticSearch` and
    :class:`~repro.search.nsga2.NSGA2Search` — the scalar GA and the
    population-front engine explore the same move space with the same
    operators.
    """
    child: dict[str, int] = {}
    used: set[int] = set()
    order = list(cores)
    for core in order:
        choices = [parent_a.tile_of(core), parent_b.tile_of(core)]
        if rng.random() < 0.5:
            choices.reverse()
        tile = next((t for t in choices if t not in used), None)
        if tile is None:
            continue  # resolved in the repair pass below
        child[core] = tile
        used.add(tile)
    free = [t for t in range(num_tiles) if t not in used]
    rng.shuffle(free)
    for core in order:
        if core not in child:
            child[core] = free.pop()
    return Mapping(child, num_tiles=num_tiles)


def swap_mutation(mapping: Mapping, num_tiles: int, rng) -> Mapping:
    """Swap the contents of two distinct uniformly drawn tiles.

    The same move simulated annealing proposes; either tile may be empty.
    Consumes exactly two RNG draws.  Shared by :class:`GeneticSearch` and
    :class:`~repro.search.nsga2.NSGA2Search`.
    """
    tile_a = int(rng.integers(num_tiles))
    tile_b = int(rng.integers(num_tiles - 1))
    if tile_b >= tile_a:
        tile_b += 1
    return mapping.swap_tiles(tile_a, tile_b)


@dataclass(frozen=True)
class GeneticParameters:
    """Knobs of :class:`GeneticSearch`.

    Attributes
    ----------
    population_size:
        Individuals per generation (at least 2).
    generations:
        Number of generations to evolve.
    tournament_size:
        Individuals drawn per tournament selection.
    crossover_rate:
        Probability a child is produced by crossover rather than cloning.
    mutation_rate:
        Probability a child is mutated by one tile swap.
    elite_count:
        Best individuals copied unchanged into the next generation.
    n_workers:
        Parallel pricing fan-out: ``None`` (or 1) prices generations
        serially; larger values make :class:`GeneticSearch` build a
        :class:`~repro.eval.parallel.ProcessPoolBackend` of that size for its
        batch evaluations.  Only effective when the objective supports batch
        pricing (see :func:`repro.search.base.batch_callable`); results are
        bit-identical either way.
    """

    population_size: int = 30
    generations: int = 40
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    elite_count: int = 2
    n_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be at least 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be positive")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size must be between 1 and population_size"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError(
                "elite_count must be smaller than population_size"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {self.n_workers}"
            )


class GeneticSearch(PoolOwnerMixin, Searcher):
    """Permutation genetic algorithm over core-to-tile assignments.

    Parameters
    ----------
    parameters:
        GA knobs; defaults to :class:`GeneticParameters`.
    backend:
        Optional explicit :class:`~repro.eval.parallel.BatchBackend` used for
        generation pricing (overrides ``parameters.n_workers``).  The caller
        owns it (it is not closed by the engine).
    n_workers:
        Convenience override of ``parameters.n_workers`` so the registry can
        surface the knob directly: ``get_searcher("genetic", n_workers=4)``.

    Notes
    -----
    When the engine builds its own pool from ``n_workers``, the pool is
    created lazily on the first batched generation, reused across searches,
    and released by :meth:`close` (the engine also works as a context
    manager).  Objectives without batch support are priced candidate by
    candidate, in identical order, with identical results.
    """

    name = "genetic"

    def __init__(
        self,
        parameters: GeneticParameters | None = None,
        backend=None,
        n_workers: Optional[int] = None,
    ) -> None:
        params = parameters or GeneticParameters()
        if n_workers is not None:
            params = replace(params, n_workers=n_workers)
        self.parameters = params
        self._backend = backend
        self._owned_backend = None

    # ------------------------------------------------------------------
    def _pricing_backend(self):
        """The backend generation batches go through (``None`` = inline)."""
        return self._resolve_backend(self.parameters.n_workers)

    # ------------------------------------------------------------------
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        """Evolve mappings from *initial* and return the best found.

        Parameters
        ----------
        objective:
            ``mapping -> cost`` callable (lower is better); batch-capable
            objectives are priced generation-at-a-time.
        initial:
            Seed individual; must know the NoC size.
        rng:
            Seed or generator driving selection, crossover and mutation.

        Returns
        -------
        SearchResult
            Best mapping, its cost, evaluation count and convergence history.
        """
        params = self.parameters
        objective = as_objective(objective)
        generator = ensure_rng(rng)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "genetic search requires the initial mapping to know the NoC size"
            )
        cores = initial.cores

        batch_fn = batch_callable(objective)
        backend = self._pricing_backend() if batch_fn is not None else None

        def price(candidates: List[Mapping]) -> List[float]:
            if batch_fn is not None:
                return batch_fn(candidates, backend=backend)
            return [objective(candidate) for candidate in candidates]

        population: List[Mapping] = [initial]
        while len(population) < params.population_size:
            population.append(Mapping.random(cores, num_tiles, generator))
        costs = price(population)
        evaluations = len(population)
        accepted = 0

        best_idx = min(range(len(population)), key=costs.__getitem__)
        best, best_cost = population[best_idx], costs[best_idx]
        history: List[Tuple[int, float]] = [(evaluations, best_cost)]

        for _ in range(params.generations):
            ranked = sorted(range(len(population)), key=costs.__getitem__)
            next_population = [population[i] for i in ranked[: params.elite_count]]
            next_costs = [costs[i] for i in ranked[: params.elite_count]]

            # Generate the whole brood first (same RNG consumption order as
            # the old per-child loop), then price it as one batch — the
            # parallel seam.
            children: List[Mapping] = []
            while len(next_population) + len(children) < params.population_size:
                parent_a = self._tournament(population, costs, generator)
                parent_b = self._tournament(population, costs, generator)
                if generator.random() < params.crossover_rate:
                    child = self._crossover(parent_a, parent_b, cores, num_tiles, generator)
                else:
                    child = parent_a
                if generator.random() < params.mutation_rate:
                    child = self._mutate(child, num_tiles, generator)
                    accepted += 1
                children.append(child)
            next_population.extend(children)
            next_costs.extend(price(children))
            evaluations += len(children)

            population, costs = next_population, next_costs
            gen_best = min(range(len(population)), key=costs.__getitem__)
            if costs[gen_best] < best_cost:
                best, best_cost = population[gen_best], costs[gen_best]
                history.append((evaluations, best_cost))

        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            accepted_moves=accepted,
            best_metrics=objective_metrics(objective, best),
        )

    # ------------------------------------------------------------------
    def _tournament(self, population: List[Mapping], costs: List[float], rng) -> Mapping:
        """Pick the cheapest of ``tournament_size`` uniformly drawn individuals."""
        size = self.parameters.tournament_size
        indices = rng.integers(0, len(population), size=size)
        winner = min(indices, key=lambda idx: costs[int(idx)])
        return population[int(winner)]

    def _crossover(
        self,
        parent_a: Mapping,
        parent_b: Mapping,
        cores: List[str],
        num_tiles: int,
        rng,
    ) -> Mapping:
        """Uniform assignment crossover with injectivity repair."""
        return uniform_assignment_crossover(parent_a, parent_b, cores, num_tiles, rng)

    def _mutate(self, mapping: Mapping, num_tiles: int, rng) -> Mapping:
        """Swap the contents of two distinct tiles."""
        return swap_mutation(mapping, num_tiles, rng)


__all__ = [
    "GeneticParameters",
    "GeneticSearch",
    "uniform_assignment_crossover",
    "swap_mutation",
]
