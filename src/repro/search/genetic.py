"""Genetic-algorithm mapping search (extension).

The paper only evaluates exhaustive search and simulated annealing; a
permutation GA is included as an extension and as an ablation reference —
it explores the same move space (injective core-to-tile assignments) with a
population-based strategy:

* individuals are mappings;
* selection is tournament selection on the objective;
* crossover is a position-preserving uniform crossover repaired to keep the
  assignment injective;
* mutation swaps the contents of two tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.mapping import Mapping
from repro.search.base import Objective, SearchResult, Searcher
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class GeneticParameters:
    """Knobs of :class:`GeneticSearch`."""

    population_size: int = 30
    generations: int = 40
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be at least 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be positive")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size must be between 1 and population_size"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError(
                "elite_count must be smaller than population_size"
            )


class GeneticSearch(Searcher):
    """Permutation genetic algorithm over core-to-tile assignments."""

    name = "genetic"

    def __init__(self, parameters: GeneticParameters | None = None) -> None:
        self.parameters = parameters or GeneticParameters()

    # ------------------------------------------------------------------
    def search(
        self,
        objective: Objective,
        initial: Mapping,
        rng: RandomSource = None,
    ) -> SearchResult:
        params = self.parameters
        generator = ensure_rng(rng)
        num_tiles = initial.num_tiles
        if num_tiles is None:
            raise ConfigurationError(
                "genetic search requires the initial mapping to know the NoC size"
            )
        cores = initial.cores

        population: List[Mapping] = [initial]
        while len(population) < params.population_size:
            population.append(Mapping.random(cores, num_tiles, generator))
        costs = [objective(individual) for individual in population]
        evaluations = len(population)
        accepted = 0

        best_idx = min(range(len(population)), key=costs.__getitem__)
        best, best_cost = population[best_idx], costs[best_idx]
        history: List[Tuple[int, float]] = [(evaluations, best_cost)]

        for _ in range(params.generations):
            ranked = sorted(range(len(population)), key=costs.__getitem__)
            next_population = [population[i] for i in ranked[: params.elite_count]]
            next_costs = [costs[i] for i in ranked[: params.elite_count]]

            while len(next_population) < params.population_size:
                parent_a = self._tournament(population, costs, generator)
                parent_b = self._tournament(population, costs, generator)
                if generator.random() < params.crossover_rate:
                    child = self._crossover(parent_a, parent_b, cores, num_tiles, generator)
                else:
                    child = parent_a
                if generator.random() < params.mutation_rate:
                    child = self._mutate(child, num_tiles, generator)
                    accepted += 1
                next_population.append(child)
                next_costs.append(objective(child))
                evaluations += 1

            population, costs = next_population, next_costs
            gen_best = min(range(len(population)), key=costs.__getitem__)
            if costs[gen_best] < best_cost:
                best, best_cost = population[gen_best], costs[gen_best]
                history.append((evaluations, best_cost))

        return SearchResult(
            best_mapping=best,
            best_cost=best_cost,
            evaluations=evaluations,
            history=history,
            accepted_moves=accepted,
        )

    # ------------------------------------------------------------------
    def _tournament(self, population: List[Mapping], costs: List[float], rng) -> Mapping:
        size = self.parameters.tournament_size
        indices = rng.integers(0, len(population), size=size)
        winner = min(indices, key=lambda idx: costs[int(idx)])
        return population[int(winner)]

    def _crossover(
        self,
        parent_a: Mapping,
        parent_b: Mapping,
        cores: List[str],
        num_tiles: int,
        rng,
    ) -> Mapping:
        """Uniform assignment crossover with injectivity repair."""
        child: dict[str, int] = {}
        used: set[int] = set()
        order = list(cores)
        for core in order:
            choices = [parent_a.tile_of(core), parent_b.tile_of(core)]
            if rng.random() < 0.5:
                choices.reverse()
            tile = next((t for t in choices if t not in used), None)
            if tile is None:
                continue  # resolved in the repair pass below
            child[core] = tile
            used.add(tile)
        free = [t for t in range(num_tiles) if t not in used]
        rng.shuffle(free)
        for core in order:
            if core not in child:
                child[core] = free.pop()
        return Mapping(child, num_tiles=num_tiles)

    def _mutate(self, mapping: Mapping, num_tiles: int, rng) -> Mapping:
        tile_a = int(rng.integers(num_tiles))
        tile_b = int(rng.integers(num_tiles - 1))
        if tile_b >= tile_a:
            tile_b += 1
        return mapping.swap_tiles(tile_a, tile_b)


__all__ = ["GeneticParameters", "GeneticSearch"]
