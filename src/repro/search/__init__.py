"""Mapping search engines.

The paper's FRW framework offers two search methods: exhaustive search (used
as the optimality reference on small NoCs) and simulated annealing (used for
everything larger).  Both are implemented here, together with three additional
engines useful as baselines and extensions:

* :class:`~repro.search.random_search.RandomSearch` — the random-mapping
  baseline that Hu & Marculescu compare against;
* :class:`~repro.search.greedy.GreedyConstructive` — a fast constructive
  heuristic placing the most communication-intensive cores first;
* :class:`~repro.search.genetic.GeneticSearch` — a permutation GA extension;
* :class:`~repro.search.nsga2.NSGA2Search` — NSGA-II population-front search
  optimising the energy/time front directly on the vector objective;
* :class:`~repro.search.nsga3.NSGA3Search` — NSGA-III reference-point
  selection for many-objective fronts (three or more keys, e.g. the
  energy × time × congestion trade-off of :mod:`repro.codesign`).

Every engine implements :class:`~repro.search.base.Searcher` and only sees the
objective function ``mapping -> cost``, so it works identically for CWM and
CDCM objectives.  Objective *specs* — an
:class:`~repro.eval.context.EvaluationContext` or a ``(vector_objective,
weights)`` pair — are accepted everywhere a callable is (coerced by
:func:`~repro.search.base.as_objective`), and every
:class:`~repro.search.base.SearchResult` carries the best mapping's named
per-metric breakdown when the objective exposes one.
"""

from repro.search.base import (
    Searcher,
    SearchResult,
    as_objective,
    batch_callable,
    delta_callable,
    objective_metrics,
)
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.search.random_search import RandomSearch
from repro.search.greedy import GreedyConstructive
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.search.nsga2 import Nsga2Parameters, NSGA2Search
from repro.search.nsga3 import Nsga3Parameters, NSGA3Search
from repro.search.registry import get_searcher, available_searchers

__all__ = [
    "Searcher",
    "SearchResult",
    "as_objective",
    "batch_callable",
    "delta_callable",
    "objective_metrics",
    "ExhaustiveSearch",
    "AnnealingSchedule",
    "SimulatedAnnealing",
    "RandomSearch",
    "GreedyConstructive",
    "GeneticParameters",
    "GeneticSearch",
    "Nsga2Parameters",
    "NSGA2Search",
    "Nsga3Parameters",
    "NSGA3Search",
    "get_searcher",
    "available_searchers",
]
