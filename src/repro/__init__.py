"""repro — energy- and timing-aware NoC mapping (CWM vs CDCM).

A reproduction of "Exploring NoC Mapping Strategies: An Energy and Timing
Aware Technique" (Marcon et al., DATE 2005): application models (CWG / CDCG),
a regular-mesh wormhole NoC substrate with XY routing, dynamic + static energy
models, a contention-aware CDCG scheduler, mapping search engines (exhaustive
search, simulated annealing, and extensions) and the analysis pipeline that
regenerates the paper's tables and figures.

Quickstart
----------
>>> from repro import FRWFramework, Platform, Mesh
>>> from repro.workloads import paper_example_cdcg, paper_example_platform
>>> framework = FRWFramework(paper_example_cdcg(), paper_example_platform())
>>> outcome = framework.map(model="cdcm", method="annealing", seed=7)
>>> report = framework.evaluate(outcome.mapping)
>>> report.execution_time <= 100.0
True
"""

from repro.graphs import CWG, CDCG, CRG, Packet, cdcg_to_cwg
from repro.noc import (
    Topology,
    Mesh,
    Torus,
    IrregularTopology,
    get_topology,
    NocParameters,
    Platform,
    XYRouting,
    YXRouting,
    TableRouting,
    get_routing,
    validate_deadlock_free,
    CdcmScheduler,
    ScheduleResult,
)
from repro.energy import (
    Technology,
    TECH_0_35UM,
    TECH_0_07UM,
    TECH_PAPER_EXAMPLE,
    EnergyBreakdown,
)
from repro.core import (
    Mapping,
    MetricVector,
    CwmEvaluator,
    CdcmEvaluator,
    CountingObjective,
    ScalarisedObjective,
    cwm_objective,
    cdcm_objective,
    FRWFramework,
    MappingOutcome,
)
from repro.eval import (
    RouteTable,
    get_route_table,
    EvaluationContext,
    CwmEvaluationContext,
    CdcmEvaluationContext,
    BatchBackend,
    SerialBackend,
    ProcessPoolBackend,
    warm_route_table,
    VectorizedCwmKernel,
    population_to_array,
    array_to_mappings,
)
from repro.search import (
    SimulatedAnnealing,
    AnnealingSchedule,
    ExhaustiveSearch,
    RandomSearch,
    GreedyConstructive,
    GeneticParameters,
    GeneticSearch,
    Nsga2Parameters,
    NSGA2Search,
    get_searcher,
)
from repro.analysis import (
    ComparisonConfig,
    ModelComparison,
    compare_models,
    generate_table1,
    generate_table2,
    ParetoPoint,
    non_dominated,
    pareto_front,
    weight_sweep_front,
    hypervolume,
)
from repro.service import (
    ResultStore,
    StoreStats,
    StoreCorruptionWarning,
    ServiceBackend,
    SharedArrayBackend,
    MappingDaemon,
    EvalJob,
    JobResult,
)

__version__ = "1.0.0"

__all__ = [
    "CWG",
    "CDCG",
    "CRG",
    "Packet",
    "cdcg_to_cwg",
    "Topology",
    "Mesh",
    "Torus",
    "IrregularTopology",
    "get_topology",
    "NocParameters",
    "Platform",
    "XYRouting",
    "YXRouting",
    "TableRouting",
    "get_routing",
    "validate_deadlock_free",
    "CdcmScheduler",
    "ScheduleResult",
    "Technology",
    "TECH_0_35UM",
    "TECH_0_07UM",
    "TECH_PAPER_EXAMPLE",
    "EnergyBreakdown",
    "Mapping",
    "MetricVector",
    "CwmEvaluator",
    "CdcmEvaluator",
    "CountingObjective",
    "ScalarisedObjective",
    "cwm_objective",
    "cdcm_objective",
    "FRWFramework",
    "MappingOutcome",
    "RouteTable",
    "get_route_table",
    "EvaluationContext",
    "CwmEvaluationContext",
    "CdcmEvaluationContext",
    "BatchBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "warm_route_table",
    "VectorizedCwmKernel",
    "population_to_array",
    "array_to_mappings",
    "SimulatedAnnealing",
    "AnnealingSchedule",
    "ExhaustiveSearch",
    "RandomSearch",
    "GreedyConstructive",
    "GeneticParameters",
    "GeneticSearch",
    "Nsga2Parameters",
    "NSGA2Search",
    "get_searcher",
    "ComparisonConfig",
    "ModelComparison",
    "compare_models",
    "generate_table1",
    "generate_table2",
    "ParetoPoint",
    "non_dominated",
    "pareto_front",
    "weight_sweep_front",
    "hypervolume",
    "ResultStore",
    "StoreStats",
    "StoreCorruptionWarning",
    "ServiceBackend",
    "SharedArrayBackend",
    "MappingDaemon",
    "EvalJob",
    "JobResult",
    "__version__",
]
