"""The benchmark suite of Table 1: 18 applications on 8 NoC sizes.

Table 1 characterises every benchmark by four aggregates: the NoC size, the
number of cores, the number of packets and the total bit volume.  The suite
below regenerates a benchmark for each row with *exactly* those aggregates
using the TGFF-like generator (the paper's own benchmarks were produced by a
proprietary TGFF-like system and are not published — see DESIGN.md).  Seeds
are fixed per entry so the suite is identical from run to run.

The three large NoCs (8x8, 10x10, 12x10) are included with their paper-exact
packet counts; because a single CDCM evaluation replays every packet, the
benchmark harness lets callers scale down the number of search iterations —
not the applications themselves — when a quick run is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.scenario.events import ScenarioScript

from repro.graphs.cdcg import CDCG
from repro.noc.topology import Mesh
from repro.utils.errors import ConfigurationError
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec


@dataclass(frozen=True)
class SuiteEntry:
    """One row of Table 1.

    Attributes
    ----------
    name:
        Benchmark identifier, e.g. ``"3x2-a"``.
    mesh:
        NoC size the benchmark is mapped onto.
    num_cores, num_packets, total_bits:
        The aggregates reported in Table 1.
    seed:
        Generation seed (fixed, so the suite is reproducible).
    group:
        ``"small"`` for the NoC sizes the paper also solves with exhaustive
        search, ``"large"`` for the simulated-annealing-only sizes.
    """

    name: str
    mesh: Mesh
    num_cores: int
    num_packets: int
    total_bits: int
    seed: int
    group: str = "small"

    @property
    def topology(self):
        """The entry's NoC topology (alias of ``mesh`` — any
        :class:`~repro.noc.topology.Topology` works for custom entries; the
        Table 1 rows are all meshes)."""
        return self.mesh

    @property
    def noc_label(self) -> str:
        """Table-style NoC size label, e.g. ``"3 x 2"``.

        Falls back to ``str(topology)`` for custom entries whose topology
        has no grid dimensions.
        """
        if hasattr(self.mesh, "width"):
            return f"{self.mesh.width} x {self.mesh.height}"
        return str(self.mesh)

    def content_hash(self) -> str:
        """Stable digest of everything that determines this entry's benchmark.

        Covers the generation inputs — name, topology identity
        (:func:`~repro.noc.topology.topology_cache_token`), the Table-1
        aggregates and the fixed seed — so two runs (or two processes) agree
        on the digest of the same row, and any edit to a row changes it.
        Note the generated CDCG also depends on the ``computation_scale``
        argument of :meth:`build`; when scaling it away from the default,
        key result-store entries on the built graph's
        :meth:`~repro.graphs.cdcg.CDCG.content_hash` instead (the service
        layer does exactly that).
        """
        from repro.noc.topology import topology_cache_token
        from repro.utils.hashing import stable_digest

        return stable_digest(
            (
                "suite-entry",
                self.name,
                topology_cache_token(self.mesh),
                self.num_cores,
                self.num_packets,
                self.total_bits,
                self.seed,
                self.group,
            )
        )

    def build(self, computation_scale: float = 0.5) -> CDCG:
        """Generate the benchmark CDCG for this entry.

        The default ``computation_scale`` of 0.5 makes the benchmarks
        communication-dominated (computation phases are on average half as
        long as the serialisation of an average packet), which is the regime
        in which packet contention — the effect CDCM models and CWM cannot —
        has a visible impact on execution time.
        """
        spec = TgffSpec(
            name=self.name,
            num_cores=self.num_cores,
            num_packets=self.num_packets,
            total_bits=self.total_bits,
            computation_scale=computation_scale,
        )
        return TgffLikeGenerator(self.seed).generate(spec)


# ---------------------------------------------------------------------------
# Table 1 rows.  Cores / packets / bit volumes are copied verbatim from the
# paper; seeds are arbitrary but fixed.
# ---------------------------------------------------------------------------
_TABLE1_ROWS: Tuple[Tuple[str, Tuple[int, int], int, int, int, str], ...] = (
    ("3x2-a", (3, 2), 5, 43, 78_817, "small"),
    ("3x2-b", (3, 2), 6, 17, 174, "small"),
    ("3x2-c", (3, 2), 6, 43, 49_003, "small"),
    ("2x4-a", (2, 4), 5, 16, 1_600, "small"),
    ("2x4-b", (2, 4), 7, 33, 23_235, "small"),
    ("2x4-c", (2, 4), 8, 18, 5_930, "small"),
    ("3x3-a", (3, 3), 7, 16, 1_600, "small"),
    ("3x3-b", (3, 3), 9, 18, 1_860, "small"),
    ("3x3-c", (3, 3), 9, 32, 43_120, "small"),
    ("2x5-a", (2, 5), 8, 24, 2_215, "small"),
    ("2x5-b", (2, 5), 9, 51, 23_244, "small"),
    ("2x5-c", (2, 5), 10, 22, 322_221, "small"),
    ("3x4-a", (3, 4), 10, 15, 3_100, "small"),
    ("3x4-b", (3, 4), 12, 25, 2_578_920, "small"),
    # The paper's Table 1 lists 14 cores for this benchmark, which cannot be
    # mapped injectively onto a 12-tile 3x4 NoC (almost certainly a typo in
    # the original table); the entry is clamped to 12 cores.  See DESIGN.md.
    ("3x4-c", (3, 4), 12, 88, 115_778, "small"),
    ("8x8", (8, 8), 62, 344, 9_799_200, "large"),
    ("10x10", (10, 10), 93, 415, 562_565_990, "large"),
    ("12x10", (12, 10), 99, 446, 680_006_120, "large"),
)


def table1_suite(
    groups: Optional[Tuple[str, ...]] = None,
    max_noc_tiles: Optional[int] = None,
) -> List[SuiteEntry]:
    """Build the 18-entry suite (or a filtered subset of it).

    Parameters
    ----------
    groups:
        Restrict to the given groups (``("small",)``, ``("large",)`` or both).
    max_noc_tiles:
        Drop entries whose NoC has more tiles than this bound (handy for the
        quick versions of the Table 2 bench).
    """
    entries: List[SuiteEntry] = []
    for index, (name, (width, height), cores, packets, bits, group) in enumerate(
        _TABLE1_ROWS
    ):
        mesh = Mesh(width, height)
        if groups is not None and group not in groups:
            continue
        if max_noc_tiles is not None and mesh.num_tiles > max_noc_tiles:
            continue
        entries.append(
            SuiteEntry(
                name=name,
                mesh=mesh,
                num_cores=cores,
                num_packets=packets,
                total_bits=bits,
                seed=1_000 + index,
                group=group,
            )
        )
    return entries


def suite_entry_by_name(name: str) -> SuiteEntry:
    """Look up a single suite entry by its name."""
    for entry in table1_suite():
        if entry.name == name:
            return entry
    raise ConfigurationError(
        f"no suite entry named {name!r}; available: "
        f"{[e.name for e in table1_suite()]}"
    )


def suite_by_noc_size() -> Dict[str, List[SuiteEntry]]:
    """Suite entries grouped by their Table-1 NoC-size label, in table order."""
    grouped: Dict[str, List[SuiteEntry]] = {}
    for entry in table1_suite():
        grouped.setdefault(entry.noc_label, []).append(entry)
    return grouped


def _notched_mesh():
    """A 3x3 mesh with the (0, 1) link removed, as an irregular topology.

    The canonical irregular-but-certifiable fabric of the scenario suite:
    table routing on it stays deadlock-free (unlike rings and tori), yet it
    exercises the :class:`~repro.noc.topology.IrregularTopology` code paths
    end to end.
    """
    from repro.graphs.crg import CRG
    from repro.noc.topology import IrregularTopology, Mesh

    base = Mesh(3, 3).to_crg()
    crg = CRG("notched-3x3")
    for tile in base.tiles:
        crg.add_tile(tile.index, *tile.position)
    for link in base.links:
        if {link.source, link.target} == {0, 1}:
            continue
        crg.add_link(link.source, link.target)
    return IrregularTopology.from_crg(crg)


def scenario_suite() -> List["ScenarioScript"]:
    """The scenario families of the dynamic-scenario engine, as fixed scripts.

    Each entry is a deterministic
    :class:`~repro.scenario.events.ScenarioScript` exercising one family of
    dynamic behaviour; CI runs the whole engine matrix (models, engines,
    remap modes, backends) over these through the conformance harness:

    * ``mesh-link-storm`` — a burst of link failures and a repair on a 4x4
      mesh under a live application;
    * ``mesh-churn`` — application arrivals and departures on a 3x3 mesh
      with a fault in between;
    * ``router-outage`` — a router failure (tile compaction path) on a 4x4
      mesh;
    * ``torus-fault`` — a fault on a 3x3 torus, pinning the
      rejected-certification path (table routing on tori is not
      deadlock-free);
    * ``irregular-fault`` — a fault on an irregular (notched-mesh) fabric.
    """
    from repro.scenario.events import (
        ApplicationArrival,
        ApplicationDeparture,
        LinkFailure,
        LinkRepair,
        RouterFailure,
        ScenarioScript,
    )

    return [
        ScenarioScript(
            name="mesh-link-storm",
            topology="mesh:4x4",
            seed=41,
            events=(
                ApplicationArrival("storm-app", 5, 12, 6_000, seed=7),
                LinkFailure(0, 1),
                LinkFailure(12, 13),
                LinkFailure(3, 7),
                LinkRepair(12, 13),
            ),
        ),
        ScenarioScript(
            name="mesh-churn",
            topology="mesh:3x3",
            seed=42,
            events=(
                ApplicationArrival("churn-a", 3, 8, 2_000, seed=11),
                ApplicationArrival("churn-b", 3, 8, 3_000, seed=13),
                LinkFailure(3, 6),
                ApplicationDeparture("churn-a"),
                ApplicationArrival("churn-c", 2, 6, 1_500, seed=17),
                LinkRepair(3, 6),
            ),
        ),
        ScenarioScript(
            name="router-outage",
            topology="mesh:4x4",
            seed=43,
            events=(
                ApplicationArrival("outage-app", 4, 10, 4_000, seed=19),
                RouterFailure(0),
                LinkFailure(14, 15),
            ),
        ),
        ScenarioScript(
            name="torus-fault",
            topology="torus:3x3",
            seed=44,
            events=(
                ApplicationArrival("torus-app", 3, 8, 2_500, seed=23),
                LinkFailure(0, 1),
                LinkFailure(4, 5),
            ),
        ),
        ScenarioScript(
            name="irregular-fault",
            topology=_notched_mesh(),
            seed=45,
            events=(
                ApplicationArrival("irr-app", 3, 8, 2_200, seed=29),
                LinkFailure(7, 8),
                LinkRepair(7, 8),
            ),
        ),
    ]


__all__ = [
    "SuiteEntry",
    "table1_suite",
    "suite_entry_by_name",
    "suite_by_noc_size",
    "scenario_suite",
]
