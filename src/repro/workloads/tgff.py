"""TGFF-like random CDCG benchmark generator.

The paper's random benchmarks come from "a proprietary system, which is
similar to TGFF; however, the system describes benchmarks through CDCGs,
representing message dependence and bit volume of each message".  This module
is that system's stand-in: a seeded generator that produces CDCGs with an
exact number of cores, an exact number of packets and an exact total bit
volume (the three aggregate characteristics Table 1 reports), plus a layered
dependence structure that creates both packet-level parallelism (so mappings
can differ in contention) and chains (so computation time matters).

Generation model
----------------
1. Packets are partitioned into *levels*; level-0 packets depend on nothing,
   a packet at level ``l`` depends on one or two packets of earlier levels.
2. A packet's source core is preferentially the *target* core of one of its
   dependences — data arrives at a core, the core computes, then forwards —
   which mirrors how CDCGs of real applications are written by hand.
3. Bit volumes follow a lognormal distribution rescaled (and integer-adjusted)
   so their sum equals ``total_bits`` exactly.
4. Computation times are drawn relative to the time it takes to serialise an
   average packet on the link (``computation_scale`` controls the ratio of
   computation to communication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.graphs.cdcg import CDCG
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class TgffSpec:
    """Parameters of one generated benchmark.

    Attributes
    ----------
    name:
        Benchmark name (becomes the CDCG name).
    num_cores:
        Number of IP cores (CWG vertices).
    num_packets:
        Number of packets (CDCG vertices).
    total_bits:
        Exact total bit volume over all packets.
    levels:
        Number of dependence levels; ``None`` chooses roughly
        ``sqrt(num_packets)`` levels so depth and width grow together.
    dependence_density:
        Probability that a non-initial packet has a second dependence,
        creating joins in the graph.
    computation_scale:
        Mean computation time of a core, expressed as a multiple of the
        average packet serialisation time (bits / flit_width cycles).  Larger
        values make the workload computation-dominated.
    flit_width:
        Flit width assumed when converting packet sizes into serialisation
        times for the computation-time model (purely a generation-time
        assumption; the platform used for mapping can differ).
    clock_period:
        Clock period assumed for the same purpose, in nanoseconds.
    """

    name: str
    num_cores: int
    num_packets: int
    total_bits: int
    levels: Optional[int] = None
    dependence_density: float = 0.35
    computation_scale: float = 1.0
    flit_width: int = 32
    clock_period: float = 1.0

    def __post_init__(self) -> None:
        if self.num_cores < 2:
            raise ConfigurationError(
                f"a benchmark needs at least 2 cores, got {self.num_cores}"
            )
        if self.num_packets < 1:
            raise ConfigurationError(
                f"a benchmark needs at least 1 packet, got {self.num_packets}"
            )
        if self.total_bits < self.num_packets:
            raise ConfigurationError(
                "total_bits must allow at least one bit per packet "
                f"(got {self.total_bits} bits for {self.num_packets} packets)"
            )
        if not 0.0 <= self.dependence_density <= 1.0:
            raise ConfigurationError(
                f"dependence_density must be in [0, 1], got {self.dependence_density}"
            )
        if self.computation_scale < 0:
            raise ConfigurationError(
                f"computation_scale must be non-negative, got {self.computation_scale}"
            )


class TgffLikeGenerator:
    """Seeded generator of random CDCG benchmarks."""

    def __init__(self, seed: RandomSource = None) -> None:
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def generate(self, spec: TgffSpec) -> CDCG:
        """Generate one benchmark CDCG according to *spec*.

        The returned graph has exactly ``spec.num_cores`` cores,
        ``spec.num_packets`` packets and ``spec.total_bits`` total bits, and
        is guaranteed acyclic by construction (dependences only point from
        earlier to later levels).
        """
        rng = self._rng
        cores = [f"c{i}" for i in range(spec.num_cores)]
        cdcg = CDCG(spec.name)
        for core in cores:
            cdcg.add_core(core)

        bits = self._packet_bits(spec, rng)
        levels = self._assign_levels(spec, rng)
        computation_times = self._computation_times(spec, bits, rng)

        # Packets are created level by level so dependences can be drawn from
        # already-created packets only.
        packets_by_level: List[List[str]] = [[] for _ in range(max(levels) + 1)]
        order = sorted(range(spec.num_packets), key=lambda i: (levels[i], i))

        target_by_packet: dict[str, str] = {}
        for index in order:
            level = levels[index]
            name = f"p{index}"
            predecessors: List[str] = []
            if level > 0:
                pool = [p for lvl in range(level) for p in packets_by_level[lvl]]
                predecessors.append(pool[int(rng.integers(len(pool)))])
                if (
                    len(pool) > 1
                    and rng.random() < spec.dependence_density
                ):
                    second = pool[int(rng.integers(len(pool)))]
                    if second != predecessors[0]:
                        predecessors.append(second)

            if predecessors:
                # Data flows: the new packet is sent by the core that received
                # one of its predecessors.
                source = target_by_packet[predecessors[0]]
            else:
                source = cores[int(rng.integers(len(cores)))]
            target_choices = [core for core in cores if core != source]
            target = target_choices[int(rng.integers(len(target_choices)))]

            cdcg.add_packet(
                name,
                source,
                target,
                computation_time=computation_times[index],
                bits=int(bits[index]),
            )
            for predecessor in predecessors:
                cdcg.add_dependence(predecessor, name)
            packets_by_level[level].append(name)
            target_by_packet[name] = target

        cdcg.validate()
        return cdcg

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _packet_bits(spec: TgffSpec, rng: np.random.Generator) -> np.ndarray:
        """Lognormal packet sizes rescaled to sum exactly to ``total_bits``."""
        raw = rng.lognormal(mean=0.0, sigma=0.8, size=spec.num_packets)
        scaled = raw / raw.sum() * (spec.total_bits - spec.num_packets)
        bits = np.floor(scaled).astype(np.int64) + 1  # at least one bit each
        deficit = spec.total_bits - int(bits.sum())
        # Distribute the integer rounding remainder over the largest packets.
        order = np.argsort(-scaled)
        idx = 0
        while deficit != 0:
            step = 1 if deficit > 0 else -1
            position = order[idx % spec.num_packets]
            if bits[position] + step >= 1:
                bits[position] += step
                deficit -= step
            idx += 1
        return bits

    @staticmethod
    def _assign_levels(spec: TgffSpec, rng: np.random.Generator) -> List[int]:
        """Assign each packet a dependence level."""
        if spec.levels is not None:
            num_levels = max(1, min(spec.levels, spec.num_packets))
        else:
            num_levels = max(1, int(round(np.sqrt(spec.num_packets))))
        levels = [int(rng.integers(num_levels)) for _ in range(spec.num_packets)]
        # Ensure level 0 is populated so the graph has initial packets.
        if 0 not in levels:
            levels[int(rng.integers(spec.num_packets))] = 0
        return levels

    @staticmethod
    def _computation_times(
        spec: TgffSpec, bits: np.ndarray, rng: np.random.Generator
    ) -> List[float]:
        """Computation times relative to the average packet serialisation time."""
        if spec.computation_scale == 0:
            return [0.0] * spec.num_packets
        average_flits = max(1.0, float(bits.mean()) / spec.flit_width)
        mean_time = spec.computation_scale * average_flits * spec.clock_period
        times = rng.uniform(0.2 * mean_time, 1.8 * mean_time, size=spec.num_packets)
        return [float(round(t, 3)) for t in times]


def generate_benchmark(spec: TgffSpec, seed: RandomSource = None) -> CDCG:
    """One-shot convenience wrapper around :class:`TgffLikeGenerator`."""
    return TgffLikeGenerator(seed).generate(spec)


__all__ = ["TgffSpec", "TgffLikeGenerator", "generate_benchmark"]
