"""Application workloads: the paper's worked example, embedded applications,
TGFF-like random benchmarks and the Table 1 suite.

* :mod:`repro.workloads.paper_example` — the 4-core / 6-packet application of
  Figure 1 and its two reference mappings, used to validate the timing and
  energy models against the paper's worked numbers;
* :mod:`repro.workloads.embedded` — structurally faithful CDCGs for the four
  embedded applications the paper lists (distributed Romberg integration,
  8-point FFT, object recognition, image encoding) and their variations;
* :mod:`repro.workloads.tgff` — a seeded random CDCG generator playing the
  role of the proprietary TGFF-like benchmark system of Section 5;
* :mod:`repro.workloads.suite` — the 18-application / 8-NoC-size suite whose
  aggregate characteristics match Table 1.
"""

from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_cwg,
    paper_example_mappings,
    paper_example_platform,
)
from repro.workloads.embedded import (
    romberg_integration,
    fft8,
    object_recognition,
    image_encoder,
    hub_gather_scatter,
    embedded_applications,
)
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec
from repro.workloads.suite import (
    SuiteEntry,
    scenario_suite,
    suite_entry_by_name,
    table1_suite,
)

__all__ = [
    "paper_example_cdcg",
    "paper_example_cwg",
    "paper_example_mappings",
    "paper_example_platform",
    "romberg_integration",
    "fft8",
    "object_recognition",
    "image_encoder",
    "hub_gather_scatter",
    "embedded_applications",
    "TgffLikeGenerator",
    "TgffSpec",
    "SuiteEntry",
    "table1_suite",
    "suite_entry_by_name",
    "scenario_suite",
]
