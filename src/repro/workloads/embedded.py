"""Structurally faithful CDCGs for the paper's embedded applications.

Section 5 lists four embedded applications (plus size/precision variations,
for a total of eight): a distributed Romberg integration, an 8-point Fast
Fourier Transform, and two image applications — object recognition and image
encoding.  The original task graphs are not published; the constructors below
rebuild them from the well-known dataflow structure of each algorithm:

* **Romberg** — ``levels`` worker cores compute trapezoid estimates of
  increasing refinement and a combiner performs the Richardson extrapolation
  triangle, each extrapolation step depending on the previous column;
* **8-point FFT** — three butterfly stages over eight point cores with
  stride-4, stride-2 and stride-1 exchanges, each stage depending on the
  previous one;
* **object recognition** — a camera/segmentation front-end fanning out to
  parallel feature extractors whose results are gathered by a classifier;
* **image encoding** — a JPEG-like pipeline: block splitter, parallel
  DCT/quantisation units, zig-zag + entropy coder, bitstream packer.

Every constructor accepts a ``data_scale`` (bit-volume multiplier) and a
``compute_scale`` (computation-time multiplier), which is how the paper's
"variations" of each application are expressed.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graphs.cdcg import CDCG
from repro.utils.errors import ConfigurationError


def _scaled_bits(bits: int, data_scale: float) -> int:
    return max(1, int(round(bits * data_scale)))


def romberg_integration(
    levels: int = 4,
    data_scale: float = 1.0,
    compute_scale: float = 1.0,
    name: str = "romberg",
) -> CDCG:
    """Distributed Romberg integration over *levels* refinement levels.

    Cores: a master ``M``, one worker ``W<i>`` per refinement level and a
    combiner ``C``.  The master broadcasts the integration bounds, each worker
    computes its composite-trapezoid estimate (cost grows with the refinement
    level), and the combiner folds the Richardson extrapolation triangle, one
    column at a time, before returning the result to the master.
    """
    if levels < 2:
        raise ConfigurationError(f"Romberg needs at least 2 levels, got {levels}")
    cdcg = CDCG(name)
    master, combiner = "M", "C"

    # Master -> workers: integration bounds and sample counts (small packets).
    for level in range(levels):
        worker = f"W{level}"
        cdcg.add_packet(
            f"bounds{level}",
            master,
            worker,
            computation_time=2.0 * compute_scale,
            bits=_scaled_bits(128, data_scale),
        )

    # Workers -> combiner: the trapezoid estimates.  A worker at level i
    # evaluates 2**i + 1 sample points, so its computation time grows
    # geometrically while the result stays one double word.
    for level in range(levels):
        worker = f"W{level}"
        cdcg.add_packet(
            f"estimate{level}",
            worker,
            combiner,
            computation_time=(2.0 + 3.0 * (2**level)) * compute_scale,
            bits=_scaled_bits(64, data_scale),
        )
        cdcg.add_dependence(f"bounds{level}", f"estimate{level}")

    # Extrapolation columns: column k needs all estimates of column k-1.
    # The combiner sends intermediate rows back to the master for convergence
    # monitoring after each column.
    previous = [f"estimate{level}" for level in range(levels)]
    for column in range(1, levels):
        packet = f"column{column}"
        cdcg.add_packet(
            packet,
            combiner,
            master,
            computation_time=4.0 * (levels - column) * compute_scale,
            bits=_scaled_bits(64 * (levels - column), data_scale),
        )
        for dependency in previous:
            cdcg.add_dependence(dependency, packet)
        previous = [packet]

    cdcg.validate()
    return cdcg


def fft8(
    data_scale: float = 1.0,
    compute_scale: float = 1.0,
    name: str = "fft8",
) -> CDCG:
    """8-point decimation-in-time FFT over eight point cores.

    Each stage ``s`` (stride 4, 2, 1) exchanges one complex sample between
    butterfly partners; a stage-``s`` packet sent by core ``P<i>`` depends on
    the packet core ``P<i>`` received in stage ``s-1``.
    """
    cores = [f"P{i}" for i in range(8)]
    cdcg = CDCG(name)
    sample_bits = _scaled_bits(64, data_scale)  # one complex sample
    butterfly_time = 4.0 * compute_scale

    received_in_previous_stage: Dict[str, List[str]] = {core: [] for core in cores}
    for stage, stride in enumerate((4, 2, 1)):
        received_now: Dict[str, List[str]] = {core: [] for core in cores}
        for i in range(8):
            partner = i ^ stride
            source, target = cores[i], cores[partner]
            packet = f"s{stage}_{source}_{target}"
            cdcg.add_packet(
                packet,
                source,
                target,
                computation_time=butterfly_time,
                bits=sample_bits,
            )
            for dependency in received_in_previous_stage[source]:
                cdcg.add_dependence(dependency, packet)
            received_now[target].append(packet)
        received_in_previous_stage = received_now

    cdcg.validate()
    return cdcg


def object_recognition(
    num_features: int = 3,
    data_scale: float = 1.0,
    compute_scale: float = 1.0,
    name: str = "object-recognition",
) -> CDCG:
    """Object-recognition pipeline with parallel feature extractors.

    Cores: camera ``CAM``, pre-processor ``PRE``, segmenter ``SEG``,
    ``num_features`` feature extractors ``FEAT<i>``, classifier ``CLS`` and
    decision unit ``DEC``.  Two frames are pushed through the pipeline so the
    stages overlap, which is what creates mapping-dependent contention.
    """
    if num_features < 1:
        raise ConfigurationError(
            f"object recognition needs at least one feature extractor, got {num_features}"
        )
    cdcg = CDCG(name)
    frame_bits = _scaled_bits(64 * 1024, data_scale)
    region_bits = _scaled_bits(16 * 1024, data_scale)
    vector_bits = _scaled_bits(512, data_scale)
    label_bits = _scaled_bits(64, data_scale)

    previous_decision = None
    for frame in range(2):
        capture = f"f{frame}_capture"
        cdcg.add_packet(
            capture, "CAM", "PRE", computation_time=8.0 * compute_scale, bits=frame_bits
        )
        if previous_decision is not None:
            cdcg.add_dependence(previous_decision, capture)

        filtered = f"f{frame}_filtered"
        cdcg.add_packet(
            filtered, "PRE", "SEG", computation_time=20.0 * compute_scale, bits=frame_bits
        )
        cdcg.add_dependence(capture, filtered)

        gathered: List[str] = []
        for feature in range(num_features):
            region = f"f{frame}_region{feature}"
            cdcg.add_packet(
                region,
                "SEG",
                f"FEAT{feature}",
                computation_time=15.0 * compute_scale,
                bits=region_bits,
            )
            cdcg.add_dependence(filtered, region)
            vector = f"f{frame}_vector{feature}"
            cdcg.add_packet(
                vector,
                f"FEAT{feature}",
                "CLS",
                computation_time=25.0 * compute_scale,
                bits=vector_bits,
            )
            cdcg.add_dependence(region, vector)
            gathered.append(vector)

        decision = f"f{frame}_decision"
        cdcg.add_packet(
            decision, "CLS", "DEC", computation_time=12.0 * compute_scale, bits=label_bits
        )
        for vector in gathered:
            cdcg.add_dependence(vector, decision)
        previous_decision = decision

    cdcg.validate()
    return cdcg


def image_encoder(
    num_block_units: int = 4,
    data_scale: float = 1.0,
    compute_scale: float = 1.0,
    name: str = "image-encoder",
) -> CDCG:
    """JPEG-like image encoding pipeline.

    Cores: source ``SRC``, block splitter ``SPLIT``, ``num_block_units``
    DCT/quantisation units ``DCTQ<i>``, entropy coder ``VLC`` and bitstream
    packer ``PACK``.  Two macro-block batches are pushed through the pipeline.
    """
    if num_block_units < 1:
        raise ConfigurationError(
            f"image encoder needs at least one DCT unit, got {num_block_units}"
        )
    cdcg = CDCG(name)
    tile_bits = _scaled_bits(32 * 1024, data_scale)
    block_bits = _scaled_bits(8 * 1024, data_scale)
    coeff_bits = _scaled_bits(6 * 1024, data_scale)
    stream_bits = _scaled_bits(4 * 1024, data_scale)

    previous_stream = None
    for batch in range(2):
        load = f"b{batch}_load"
        cdcg.add_packet(
            load, "SRC", "SPLIT", computation_time=6.0 * compute_scale, bits=tile_bits
        )
        if previous_stream is not None:
            cdcg.add_dependence(previous_stream, load)

        coded: List[str] = []
        for unit in range(num_block_units):
            block = f"b{batch}_block{unit}"
            cdcg.add_packet(
                block,
                "SPLIT",
                f"DCTQ{unit}",
                computation_time=8.0 * compute_scale,
                bits=block_bits,
            )
            cdcg.add_dependence(load, block)
            coeff = f"b{batch}_coeff{unit}"
            cdcg.add_packet(
                coeff,
                f"DCTQ{unit}",
                "VLC",
                computation_time=18.0 * compute_scale,
                bits=coeff_bits,
            )
            cdcg.add_dependence(block, coeff)
            coded.append(coeff)

        stream = f"b{batch}_stream"
        cdcg.add_packet(
            stream, "VLC", "PACK", computation_time=10.0 * compute_scale, bits=stream_bits
        )
        for coeff in coded:
            cdcg.add_dependence(coeff, stream)
        previous_stream = stream

    cdcg.validate()
    return cdcg


def hub_gather_scatter(
    num_workers: int = 8,
    waves: int = 2,
    data_scale: float = 1.0,
    compute_scale: float = 1.0,
    name: str = "hub-gather-scatter",
) -> CDCG:
    """Synthetic hub hotspot: all traffic converges on (and fans out of) ``HUB``.

    Not one of the paper's eight applications — a congestion stressor for
    the routing×mapping co-design subsystem (:mod:`repro.codesign`).  Every
    wave broadcasts a command from ``HUB`` to each worker and gathers a
    large result back, so whatever tile the hub lands on, a *deterministic*
    routing (XY) funnels every gather onto the same few incoming links of
    that tile — saturating one mesh column — while a synthesized minimal
    table can spread the same volumes over all minimal paths into the hub.
    Computation is kept tiny so contention dominates the makespan.
    """
    if num_workers < 2:
        raise ConfigurationError(
            f"hub workload needs at least two workers, got {num_workers}"
        )
    if waves < 1:
        raise ConfigurationError(f"waves must be positive, got {waves}")
    cdcg = CDCG(name)
    command_bits = _scaled_bits(2 * 1024, data_scale)
    result_bits = _scaled_bits(24 * 1024, data_scale)

    previous_wave: List[str] = []
    for wave in range(waves):
        gathers: List[str] = []
        for worker in range(num_workers):
            command = f"w{wave}_cmd{worker}"
            cdcg.add_packet(
                command,
                "HUB",
                f"WK{worker}",
                computation_time=1.0 * compute_scale,
                bits=command_bits,
            )
            for gather in previous_wave:
                cdcg.add_dependence(gather, command)
            result = f"w{wave}_res{worker}"
            cdcg.add_packet(
                result,
                f"WK{worker}",
                "HUB",
                computation_time=2.0 * compute_scale,
                bits=result_bits,
            )
            cdcg.add_dependence(command, result)
            gathers.append(result)
        previous_wave = gathers

    cdcg.validate()
    return cdcg


def embedded_applications() -> Dict[str, CDCG]:
    """The eight embedded applications of Section 5: four algorithms, each
    with one variation (different data or refinement scale)."""
    return {
        "romberg": romberg_integration(levels=4),
        "romberg-deep": romberg_integration(levels=6, name="romberg-deep"),
        "fft8": fft8(),
        "fft8-wide": fft8(data_scale=4.0, name="fft8-wide"),
        "object-recognition": object_recognition(),
        "object-recognition-hd": object_recognition(
            num_features=4, data_scale=4.0, name="object-recognition-hd"
        ),
        "image-encoder": image_encoder(),
        "image-encoder-hd": image_encoder(
            num_block_units=6, data_scale=2.0, name="image-encoder-hd"
        ),
    }


__all__ = [
    "romberg_integration",
    "fft8",
    "object_recognition",
    "image_encoder",
    "hub_gather_scatter",
    "embedded_applications",
]
