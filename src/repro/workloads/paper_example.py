"""The worked example of the paper (Figures 1 to 5).

Four IP cores A, B, E, F exchange six packets on a 2x2 mesh NoC:

* CWG edges (Figure 1a): ``w_AB = 15``, ``w_AF = 15``, ``w_BF = 40``,
  ``w_EA = 35``, ``w_FB = 15``;
* CDCG packets (Figure 1b): two packets E->A (20 bits after 10 ns of
  computation, then 15 bits after 20 ns), one packet A->B (15 bits, 6 ns),
  one packet A->F (15 bits, 6 ns), one packet B->F (40 bits, 10 ns), one
  packet F->B (15 bits, 6 ns);
* dependences: E->A(2) follows E->A(1); A->F follows both A->B and E->A(1);
  F->B follows A->F.  A->B, B->F and E->A(1) are the initial packets.

The two reference mappings of Figure 1(c, d) are exposed as
:func:`paper_example_mappings`; with the example platform parameters
(tr = 2 cycles, tl = 1 cycle, 1 ns clock, one-bit flits, ERbit = ELbit =
1 pJ/bit, PstNoC = 0.1 pJ/ns), mapping (c) executes in 100 ns and consumes
400 pJ while mapping (d) executes in 90 ns and consumes 399 pJ — the numbers
of Figures 2 to 5, reproduced exactly by this library's models (see
``tests/test_paper_example.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.mapping import Mapping
from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg
from repro.graphs.cwg import CWG
from repro.noc.platform import Platform, paper_example_platform

#: Tile indices of the paper's 2x2 mesh, in this library's row-major
#: numbering: tau1 -> 0, tau2 -> 1, tau3 -> 2, tau4 -> 3 (Figure 1(c, d) puts
#: tau1/tau2 on the top row and tau3/tau4 on the bottom row).
TAU1, TAU2, TAU3, TAU4 = 0, 1, 2, 3


def paper_example_cdcg() -> CDCG:
    """The CDCG of Figure 1(b)."""
    cdcg = CDCG("paper-example")
    cdcg.add_packet("AB1", "A", "B", computation_time=6.0, bits=15)
    cdcg.add_packet("BF1", "B", "F", computation_time=10.0, bits=40)
    cdcg.add_packet("EA1", "E", "A", computation_time=10.0, bits=20)
    cdcg.add_packet("EA2", "E", "A", computation_time=20.0, bits=15)
    cdcg.add_packet("AF1", "A", "F", computation_time=6.0, bits=15)
    cdcg.add_packet("FB1", "F", "B", computation_time=6.0, bits=15)
    cdcg.add_dependence("EA1", "EA2")
    cdcg.add_dependence("AB1", "AF1")
    cdcg.add_dependence("EA1", "AF1")
    cdcg.add_dependence("AF1", "FB1")
    cdcg.validate()
    return cdcg


def paper_example_cwg() -> CWG:
    """The CWG of Figure 1(a) — the collapse of the example CDCG."""
    return cdcg_to_cwg(paper_example_cdcg())


def paper_example_mappings() -> Dict[str, Mapping]:
    """The two reference mappings of Figure 1(c) and 1(d).

    * mapping ``"c"``: B on tau1, A on tau2, F on tau3, E on tau4 — suffers
      contention between the A->F and B->F packets (Figure 4), executing in
      100 ns;
    * mapping ``"d"``: B on tau1, E on tau2, F on tau3, A on tau4 —
      contention free (Figure 5), executing in 90 ns.
    """
    mapping_c = Mapping({"B": TAU1, "A": TAU2, "F": TAU3, "E": TAU4}, num_tiles=4)
    mapping_d = Mapping({"B": TAU1, "E": TAU2, "F": TAU3, "A": TAU4}, num_tiles=4)
    return {"c": mapping_c, "d": mapping_d}


def paper_example() -> Tuple[CDCG, Platform, Dict[str, Mapping]]:
    """Convenience bundle: (CDCG, example platform, the two reference mappings)."""
    return paper_example_cdcg(), paper_example_platform(), paper_example_mappings()


__all__ = [
    "TAU1",
    "TAU2",
    "TAU3",
    "TAU4",
    "paper_example_cdcg",
    "paper_example_cwg",
    "paper_example_mappings",
    "paper_example_platform",
    "paper_example",
]
