"""Deterministic routing algorithms over pluggable topologies.

The paper fixes deterministic XY routing (route along the X axis first, then
along the Y axis).  :class:`XYRouting` implements it; :class:`YXRouting` is
the symmetric variant, kept for ablation benches.  Both consult the
topology's :attr:`~repro.noc.topology.Topology.wraps_x` /
:attr:`~repro.noc.topology.Topology.wraps_y` capability flags to decide
whether an axis wraps around — any torus-like topology routes correctly
without ``isinstance`` checks.

Beyond the dimension-ordered pair, the module provides:

* :class:`TableRouting` — deterministic BFS shortest-path next-hop tables
  that work on **any** topology (the route for irregular fabrics), with a
  tie-break rule (first match in the topology's ``neighbours()`` order) that
  reproduces XY routes *exactly* on a mesh;
* :class:`WestFirstRouting` / :class:`NegativeFirstRouting` — deterministic
  minimal turn-model routings, the classic deadlock-free alternatives the
  :mod:`repro.noc.deadlock` validator certifies;
* a routing **registry** (:func:`register_routing` / :func:`get_routing`)
  resolving spec strings — ``"xy"``, ``"yx"``, ``"table"``,
  ``"west-first"``, ``"negative-first"`` — so platforms are configurable by
  name end to end.

A routing algorithm maps a ``(source tile, target tile)`` pair to the ordered
list of routers the packet header traverses, source router and target router
included (the quantity ``K`` of equations 2 and 6–8 is the length of that
list).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.topology import Topology, topology_cache_token
from repro.utils.errors import ConfigurationError

#: How many per-topology next-hop tables a TableRouting instance memoises.
_TABLE_MEMO_LIMIT = 8


class RoutingAlgorithm(ABC):
    """Deterministic routing function over a :class:`~repro.noc.topology.Topology`.

    Implementations must be stateless with respect to routing decisions
    (internal memoisation of derived tables is fine): the same
    ``(topology, source, target)`` triple must always yield the same route,
    which is what lets route tables be shared process-wide and parallel
    pricing stay bit-identical to serial.
    """

    #: Short identifier used in configuration files and reports.
    name: str = "abstract"

    @abstractmethod
    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """Return the ordered list of router (tile) indices from *source* to
        *target*, both endpoints included.

        ``route(m, t, t) == [t]`` — a core talking to a core on the same tile
        traverses exactly one router.
        """

    def hop_count(self, topology: Topology, source: int, target: int) -> int:
        """Number of routers traversed (``K`` in the paper's equations)."""
        return len(self.route(topology, source, target))

    def links(
        self, topology: Topology, source: int, target: int
    ) -> List[Tuple[int, int]]:
        """The inter-router links of the route, as ``(from_tile, to_tile)`` pairs."""
        path = self.route(topology, source, target)
        return list(zip(path, path[1:]))

    @property
    def cache_token(self) -> Tuple:
        """Stable identity used (with the topology's token) to key shared tables.

        The default — concrete class identity — is correct for the stateless
        parameterless routings shipped here; a parameterised custom routing
        should extend the token with its parameters.
        """
        cls = type(self)
        return (cls.__module__, cls.__qualname__)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _axis_steps(start: int, end: int, size: int, wrap: bool) -> List[int]:
    """Coordinates visited moving from *start* to *end* along one axis,
    excluding *start* itself."""
    if start == end:
        return []
    if not wrap:
        step = 1 if end > start else -1
        return list(range(start + step, end + step, step))
    forward = (end - start) % size
    backward = (start - end) % size
    step = 1 if forward <= backward else -1
    coords = []
    current = start
    while current != end:
        current = (current + step) % size
        coords.append(current)
    return coords


def _wraps(topology: Topology, axis_flag: str) -> bool:
    """The topology's wrap capability flag (False for duck-typed minimal ones)."""
    return bool(getattr(topology, axis_flag, False))


def _require_grid(topology: Topology, routing_name: str) -> None:
    """Dimension-ordered routings need a grid embedding (width/height/coords)."""
    for attribute in ("width", "height", "position_of", "index_of"):
        if not hasattr(topology, attribute):
            raise ConfigurationError(
                f"{routing_name} routing needs a grid topology exposing "
                f"width/height/position_of/index_of, but {topology} has no "
                f"{attribute!r}; use 'table' routing for irregular fabrics"
            )


class XYRouting(RoutingAlgorithm):
    """Dimension-ordered routing: X axis first, then Y axis.

    Wrap-around is taken per axis when the topology declares ``wraps_x`` /
    ``wraps_y`` (shorter direction wins, forward on ties).
    """

    name = "xy"

    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """The XY route from *source* to *target*, endpoints included."""
        _validate_endpoints(topology, source, target)
        _require_grid(topology, self.name)
        sx, sy = topology.position_of(source)
        tx, ty = topology.position_of(target)
        path = [source]
        for x in _axis_steps(sx, tx, topology.width, _wraps(topology, "wraps_x")):
            path.append(topology.index_of(x, sy))
        for y in _axis_steps(sy, ty, topology.height, _wraps(topology, "wraps_y")):
            path.append(topology.index_of(tx, y))
        return path


class YXRouting(RoutingAlgorithm):
    """Dimension-ordered routing: Y axis first, then X axis."""

    name = "yx"

    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """The YX route from *source* to *target*, endpoints included."""
        _validate_endpoints(topology, source, target)
        _require_grid(topology, self.name)
        sx, sy = topology.position_of(source)
        tx, ty = topology.position_of(target)
        path = [source]
        for y in _axis_steps(sy, ty, topology.height, _wraps(topology, "wraps_y")):
            path.append(topology.index_of(sx, y))
        for x in _axis_steps(sx, tx, topology.width, _wraps(topology, "wraps_x")):
            path.append(topology.index_of(x, ty))
        return path


class WestFirstRouting(RoutingAlgorithm):
    """Deterministic minimal west-first turn-model routing.

    All westward hops are taken first (X-then-Y when the target lies to the
    west, Y-then-X otherwise), so no packet ever turns *into* the west
    direction — the prohibited turns of the west-first turn model.  Minimal
    and deadlock-free on any non-wrapping grid (certified by
    :func:`repro.noc.deadlock.validate_deadlock_free`).
    """

    name = "west-first"

    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """The west-first route from *source* to *target*, endpoints included."""
        _validate_endpoints(topology, source, target)
        _require_grid(topology, self.name)
        _reject_wrapping(topology, self.name)
        sx, sy = topology.position_of(source)
        tx, ty = topology.position_of(target)
        path = [source]
        if tx < sx:  # west component: take it first, then the Y component
            for x in _axis_steps(sx, tx, topology.width, False):
                path.append(topology.index_of(x, sy))
            for y in _axis_steps(sy, ty, topology.height, False):
                path.append(topology.index_of(tx, y))
        else:  # no west component: Y first, then east
            for y in _axis_steps(sy, ty, topology.height, False):
                path.append(topology.index_of(sx, y))
            for x in _axis_steps(sx, tx, topology.width, False):
                path.append(topology.index_of(x, ty))
        return path


class NegativeFirstRouting(RoutingAlgorithm):
    """Deterministic minimal negative-first turn-model routing.

    Both negative components (west, then north — decreasing coordinates) are
    routed before both positive ones (east, then south), so no packet ever
    turns from a positive into a negative direction — the prohibited turns
    of the negative-first turn model.  Minimal and deadlock-free on any
    non-wrapping grid.
    """

    name = "negative-first"

    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """The negative-first route from *source* to *target*, endpoints included."""
        _validate_endpoints(topology, source, target)
        _require_grid(topology, self.name)
        _reject_wrapping(topology, self.name)
        sx, sy = topology.position_of(source)
        tx, ty = topology.position_of(target)
        path = [source]
        cx, cy = sx, sy
        if tx < cx:  # west
            for x in _axis_steps(cx, tx, topology.width, False):
                path.append(topology.index_of(x, cy))
            cx = tx
        if ty < cy:  # north
            for y in _axis_steps(cy, ty, topology.height, False):
                path.append(topology.index_of(cx, y))
            cy = ty
        if tx > cx:  # east
            for x in _axis_steps(cx, tx, topology.width, False):
                path.append(topology.index_of(x, cy))
            cx = tx
        if ty > cy:  # south
            for y in _axis_steps(cy, ty, topology.height, False):
                path.append(topology.index_of(cx, y))
        return path


class TableRouting(RoutingAlgorithm):
    """Deterministic shortest-path next-hop tables over any topology.

    For each target tile a reverse BFS over the topology's directed links
    yields every tile's distance to the target; the next hop from a tile is
    the **first** neighbour (in the topology's ``neighbours()`` order) that
    is one step closer.  Two consequences:

    * the tables are a pure function of the topology — builds are
      deterministic, so parallel workers rebuild bit-identical tables;
    * on a :class:`~repro.noc.topology.Mesh`, whose neighbour order lists
      the X-axis tiles first, the tie-break reproduces XY routes *exactly*
      (pinned by ``tests/test_topology_api.py``) — table-backed platforms
      price mappings identically to XY platforms on meshes.

    Next-hop tables are memoised per topology (keyed by ``cache_token``)
    and lazily per target; the memo never travels with a pickle (workers
    rebuild it locally).

    Note that shortest-path tables are not automatically deadlock-free on
    topologies with cycles (a torus, most irregular fabrics): gate them
    with :func:`repro.noc.deadlock.validate_deadlock_free` before trusting
    a contention model on them.
    """

    name = "table"

    def __init__(self) -> None:
        # cache_token -> (out-adjacency, in-adjacency, {target: next_hop row})
        self._memo: Dict[Tuple, Tuple[List[List[int]], List[List[int]], Dict[int, List[int]]]] = {}

    def route(self, topology: Topology, source: int, target: int) -> List[int]:
        """The table route from *source* to *target*, endpoints included."""
        _validate_endpoints(topology, source, target)
        if source == target:
            return [source]
        next_hop = self._next_hops(topology, target)
        path = [source]
        current = source
        limit = topology.num_tiles
        while current != target:
            step = next_hop[current]
            if step < 0:
                raise ConfigurationError(
                    f"no route from tile {source} to tile {target} in "
                    f"{topology}; the directed link graph does not reach "
                    f"the target"
                )
            path.append(step)
            current = step
            if len(path) > limit:  # pragma: no cover - BFS tables cannot loop
                raise ConfigurationError(
                    f"routing loop from tile {source} to tile {target} in "
                    f"{topology}"
                )
        return path

    # ------------------------------------------------------------------
    def _adjacency(
        self, topology: Topology
    ) -> Tuple[List[List[int]], List[List[int]], Dict[int, List[int]]]:
        token = topology_cache_token(topology)
        entry = self._memo.get(token)
        if entry is None:
            out = [list(topology.neighbours(index)) for index in topology.tiles()]
            incoming: List[List[int]] = [[] for _ in range(topology.num_tiles)]
            for index, neighbours in enumerate(out):
                for neighbour in neighbours:
                    incoming[neighbour].append(index)
            entry = (out, incoming, {})
            while len(self._memo) >= _TABLE_MEMO_LIMIT:
                self._memo.pop(next(iter(self._memo)))
            self._memo[token] = entry
        return entry

    def _next_hops(self, topology: Topology, target: int) -> List[int]:
        out, incoming, tables = self._adjacency(topology)
        table = tables.get(target)
        if table is None:
            n = len(out)
            distance = [-1] * n
            distance[target] = 0
            frontier = [target]
            while frontier:
                next_frontier: List[int] = []
                for tile in frontier:
                    for predecessor in incoming[tile]:
                        if distance[predecessor] < 0:
                            distance[predecessor] = distance[tile] + 1
                            next_frontier.append(predecessor)
                frontier = next_frontier
            table = [-1] * n
            for tile in range(n):
                if tile == target or distance[tile] < 0:
                    continue
                for neighbour in out[tile]:
                    if distance[neighbour] == distance[tile] - 1:
                        table[tile] = neighbour
                        break
            tables[target] = table
        return table

    # ------------------------------------------------------------------
    # Pickling: the memo is derived state, workers rebuild it locally
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        del state
        self.__init__()  # type: ignore[misc]  # rebuild = fresh empty memo


def _validate_endpoints(topology: Topology, source: int, target: int) -> None:
    if not topology.contains(source):
        raise ConfigurationError(f"source tile {source} outside {topology}")
    if not topology.contains(target):
        raise ConfigurationError(f"target tile {target} outside {topology}")


def _reject_wrapping(topology: Topology, routing_name: str) -> None:
    if _wraps(topology, "wraps_x") or _wraps(topology, "wraps_y"):
        raise ConfigurationError(
            f"{routing_name} routing is a non-wrapping turn model and is not "
            f"deadlock-free on wrap-around topologies like {topology}; use "
            f"'xy' (with virtual channels) or 'table' instead"
        )


# ----------------------------------------------------------------------
# Registry: routing algorithms by spec string
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], RoutingAlgorithm]] = {
    XYRouting.name: XYRouting,
    YXRouting.name: YXRouting,
    TableRouting.name: TableRouting,
    WestFirstRouting.name: WestFirstRouting,
    NegativeFirstRouting.name: NegativeFirstRouting,
}


def available_routings() -> List[str]:
    """Spec names accepted by :func:`get_routing`, sorted."""
    return sorted(_REGISTRY)


def register_routing(
    name: str,
    factory: Callable[[], RoutingAlgorithm],
    overwrite: bool = False,
) -> None:
    """Install a routing factory under a spec name.

    Parameters
    ----------
    name:
        Spec name, matched case-insensitively by :func:`get_routing`.
    factory:
        Zero-argument callable returning a :class:`RoutingAlgorithm`
        (typically the class itself).
    overwrite:
        Allow replacing an existing registration (off by default).
    """
    key = name.lower()
    if not overwrite and key in _REGISTRY:
        raise ConfigurationError(
            f"routing spec {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _REGISTRY[key] = factory


def get_routing(name: str) -> RoutingAlgorithm:
    """Instantiate a routing algorithm by spec name.

    Shipped specs: ``"xy"``, ``"yx"``, ``"table"``, ``"west-first"``,
    ``"negative-first"``; :func:`register_routing` adds new ones.
    """
    try:
        return _REGISTRY[name.lower()]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown routing algorithm {name!r}; available: {available_routings()}"
        ) from exc


__all__ = [
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "NegativeFirstRouting",
    "TableRouting",
    "available_routings",
    "register_routing",
    "get_routing",
]
