"""Deterministic routing algorithms for mesh NoCs.

The paper fixes deterministic XY routing (route along the X axis first, then
along the Y axis).  :class:`XYRouting` implements it; :class:`YXRouting` is
the symmetric variant, kept for ablation benches (the mapping quality of CWM
vs CDCM should not depend on which deterministic dimension-ordered routing is
used).

A routing algorithm maps a ``(source tile, target tile)`` pair to the ordered
list of routers the packet header traverses, source router and target router
included (the quantity ``K`` of equations 2 and 6–8 is the length of that
list).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.noc.topology import Mesh, Torus
from repro.utils.errors import ConfigurationError


class RoutingAlgorithm(ABC):
    """Deterministic routing function over a mesh."""

    #: Short identifier used in configuration files and reports.
    name: str = "abstract"

    @abstractmethod
    def route(self, mesh: Mesh, source: int, target: int) -> List[int]:
        """Return the ordered list of router (tile) indices from *source* to
        *target*, both endpoints included.

        ``route(m, t, t) == [t]`` — a core talking to a core on the same tile
        traverses exactly one router.
        """

    def hop_count(self, mesh: Mesh, source: int, target: int) -> int:
        """Number of routers traversed (``K`` in the paper's equations)."""
        return len(self.route(mesh, source, target))

    def links(self, mesh: Mesh, source: int, target: int) -> List[tuple[int, int]]:
        """The inter-router links of the route, as ``(from_tile, to_tile)`` pairs."""
        path = self.route(mesh, source, target)
        return list(zip(path, path[1:]))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _axis_steps(start: int, end: int, size: int, wrap: bool) -> List[int]:
    """Coordinates visited moving from *start* to *end* along one axis,
    excluding *start* itself."""
    if start == end:
        return []
    if not wrap:
        step = 1 if end > start else -1
        return list(range(start + step, end + step, step))
    forward = (end - start) % size
    backward = (start - end) % size
    step = 1 if forward <= backward else -1
    coords = []
    current = start
    while current != end:
        current = (current + step) % size
        coords.append(current)
    return coords


class XYRouting(RoutingAlgorithm):
    """Dimension-ordered routing: X axis first, then Y axis."""

    name = "xy"

    def route(self, mesh: Mesh, source: int, target: int) -> List[int]:
        _validate_endpoints(mesh, source, target)
        wrap = isinstance(mesh, Torus)
        sx, sy = mesh.position_of(source)
        tx, ty = mesh.position_of(target)
        path = [source]
        for x in _axis_steps(sx, tx, mesh.width, wrap):
            path.append(mesh.index_of(x, sy))
        for y in _axis_steps(sy, ty, mesh.height, wrap):
            path.append(mesh.index_of(tx, y))
        return path


class YXRouting(RoutingAlgorithm):
    """Dimension-ordered routing: Y axis first, then X axis."""

    name = "yx"

    def route(self, mesh: Mesh, source: int, target: int) -> List[int]:
        _validate_endpoints(mesh, source, target)
        wrap = isinstance(mesh, Torus)
        sx, sy = mesh.position_of(source)
        tx, ty = mesh.position_of(target)
        path = [source]
        for y in _axis_steps(sy, ty, mesh.height, wrap):
            path.append(mesh.index_of(sx, y))
        for x in _axis_steps(sx, tx, mesh.width, wrap):
            path.append(mesh.index_of(x, ty))
        return path


def _validate_endpoints(mesh: Mesh, source: int, target: int) -> None:
    if not mesh.contains(source):
        raise ConfigurationError(f"source tile {source} outside {mesh}")
    if not mesh.contains(target):
        raise ConfigurationError(f"target tile {target} outside {mesh}")


_REGISTRY = {
    XYRouting.name: XYRouting,
    YXRouting.name: YXRouting,
}


def get_routing(name: str) -> RoutingAlgorithm:
    """Instantiate a routing algorithm by name (``"xy"`` or ``"yx"``)."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown routing algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


__all__ = ["RoutingAlgorithm", "XYRouting", "YXRouting", "get_routing"]
