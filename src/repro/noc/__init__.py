"""NoC substrate: topology, routing, platform parameters and the packet scheduler.

This package models the target architecture of the paper — a regular 2D-mesh
NoC with wormhole switching and deterministic XY routing — and generalises it
behind pluggable, registry-addressable protocols.  It provides:

* :class:`~repro.noc.topology.Topology` — the topology protocol (tiles,
  adjacency, CRG view, ``wraps_x``/``wraps_y`` capability flags, stable
  ``cache_token``), with :class:`~repro.noc.topology.Mesh`,
  :class:`~repro.noc.topology.Torus` and the CRG-backed
  :class:`~repro.noc.topology.IrregularTopology` conforming, plus the spec
  registry (:func:`~repro.noc.topology.get_topology`, ``"mesh:4x4"``);
* :mod:`~repro.noc.routing` — deterministic routing functions (XY / YX
  dimension-ordered, west-first / negative-first turn models, and the
  any-topology BFS :class:`~repro.noc.routing.TableRouting`) behind a spec
  registry (:func:`~repro.noc.routing.get_routing`);
* :mod:`~repro.noc.deadlock` — the channel-dependency-graph validator
  (:func:`~repro.noc.deadlock.validate_deadlock_free`) gating
  routing/topology pairs against wormhole deadlock;
* :class:`~repro.noc.platform.NocParameters` and
  :class:`~repro.noc.platform.Platform` — the wormhole timing parameters
  (``tr``, ``tl``, clock period, flit width) and the bundle of everything a
  cost model needs (topology + routing + parameters + technology), both
  accepting registry spec strings;
* :mod:`~repro.noc.resources` — identifiers for the shared resources a packet
  reserves (routers, inter-router links, local core links);
* :class:`~repro.noc.scheduler.CdcmScheduler` — the contention-aware
  interval-reservation scheduler that replays a CDCG over a mapped platform,
  producing execution time, per-resource occupation and contention delays
  (Section 4 of the paper, reproduced exactly on the Figure 3/4/5 example).
"""

from repro.noc.topology import (
    Topology,
    Mesh,
    Torus,
    IrregularTopology,
    build_mesh_crg,
    available_topologies,
    register_topology,
    get_topology,
)
from repro.noc.routing import (
    RoutingAlgorithm,
    XYRouting,
    YXRouting,
    WestFirstRouting,
    NegativeFirstRouting,
    TableRouting,
    available_routings,
    register_routing,
    get_routing,
)
from repro.noc.deadlock import (
    DeadlockReport,
    channel_dependency_graph,
    validate_deadlock_free,
)
from repro.noc.platform import NocParameters, Platform
from repro.noc.resources import (
    Resource,
    RouterResource,
    LinkResource,
    LocalLinkResource,
    Occupation,
)
from repro.noc.scheduler import CdcmScheduler, ScheduleResult, PacketSchedule

__all__ = [
    "Topology",
    "Mesh",
    "Torus",
    "IrregularTopology",
    "build_mesh_crg",
    "available_topologies",
    "register_topology",
    "get_topology",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "NegativeFirstRouting",
    "TableRouting",
    "available_routings",
    "register_routing",
    "get_routing",
    "DeadlockReport",
    "channel_dependency_graph",
    "validate_deadlock_free",
    "NocParameters",
    "Platform",
    "Resource",
    "RouterResource",
    "LinkResource",
    "LocalLinkResource",
    "Occupation",
    "CdcmScheduler",
    "ScheduleResult",
    "PacketSchedule",
]
