"""NoC substrate: topology, routing, platform parameters and the packet scheduler.

This package models the target architecture of the paper: a regular 2D-mesh
NoC with wormhole switching and deterministic XY routing.  It provides:

* :class:`~repro.noc.topology.Mesh` and :func:`~repro.noc.topology.build_mesh_crg`
  — the regular mesh and its communication resource graph (CRG);
* :mod:`~repro.noc.routing` — deterministic XY / YX routing functions;
* :class:`~repro.noc.platform.NocParameters` and
  :class:`~repro.noc.platform.Platform` — the wormhole timing parameters
  (``tr``, ``tl``, clock period, flit width) and the bundle of everything a
  cost model needs (mesh + routing + parameters + technology);
* :mod:`~repro.noc.resources` — identifiers for the shared resources a packet
  reserves (routers, inter-router links, local core links);
* :class:`~repro.noc.scheduler.CdcmScheduler` — the contention-aware
  interval-reservation scheduler that replays a CDCG over a mapped platform,
  producing execution time, per-resource occupation and contention delays
  (Section 4 of the paper, reproduced exactly on the Figure 3/4/5 example).
"""

from repro.noc.topology import Mesh, Torus, build_mesh_crg
from repro.noc.routing import (
    RoutingAlgorithm,
    XYRouting,
    YXRouting,
    get_routing,
)
from repro.noc.platform import NocParameters, Platform
from repro.noc.resources import (
    Resource,
    RouterResource,
    LinkResource,
    LocalLinkResource,
    Occupation,
)
from repro.noc.scheduler import CdcmScheduler, ScheduleResult, PacketSchedule

__all__ = [
    "Mesh",
    "Torus",
    "build_mesh_crg",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "get_routing",
    "NocParameters",
    "Platform",
    "Resource",
    "RouterResource",
    "LinkResource",
    "LocalLinkResource",
    "Occupation",
    "CdcmScheduler",
    "ScheduleResult",
    "PacketSchedule",
]
