"""Platform description: wormhole timing parameters + topology + routing + technology.

A :class:`Platform` bundles everything the cost models need to evaluate a
mapping:

* the :class:`~repro.noc.topology.Topology` (the CRG of Definition 3 — a
  :class:`~repro.noc.topology.Mesh`, :class:`~repro.noc.topology.Torus` or
  :class:`~repro.noc.topology.IrregularTopology`),
* a deterministic :class:`~repro.noc.routing.RoutingAlgorithm`,
* the wormhole switching parameters of equations (6)–(8)
  (:class:`NocParameters`: routing cycles ``tr``, link cycles ``tl``, clock
  period ``lambda``, flit width),
* a :class:`~repro.energy.technology.Technology` (per-bit energies and router
  leakage).

Both the topology and the routing accept registry *spec strings* —
``Platform(mesh="torus:4x4", routing="table")`` resolves them through
:func:`~repro.noc.topology.get_topology` and
:func:`~repro.noc.routing.get_routing` at construction, so platforms are
fully configurable by name (configuration files, benchmark matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple, Union

from repro.energy.technology import TECH_0_07UM, Technology
from repro.noc.routing import RoutingAlgorithm, XYRouting, get_routing
from repro.noc.topology import Mesh, Topology, get_topology
from repro.utils.errors import ConfigurationError
from repro.utils.units import bits_to_flits


@dataclass(frozen=True)
class NocParameters:
    """Wormhole switching parameters (equations 6–8 of the paper).

    Attributes
    ----------
    routing_cycles:
        ``tr`` — clock cycles a router needs to take a routing decision for a
        packet header.
    link_cycles:
        ``tl`` — clock cycles to transmit one flit over a link (between tiles
        or between a core and its router).
    clock_period:
        ``lambda`` — clock period, in nanoseconds.
    flit_width:
        Link width in bits; a packet of ``w`` bits is carried by
        ``ceil(w / flit_width)`` flits.
    serialize_local_links:
        When True, the local core–router links are treated as contention
        resources too.  The paper's worked example (Figure 3) contends only on
        inter-router links, which is the default behaviour.
    """

    routing_cycles: int = 2
    link_cycles: int = 1
    clock_period: float = 1.0
    flit_width: int = 32
    serialize_local_links: bool = False

    def __post_init__(self) -> None:
        if self.routing_cycles < 0:
            raise ConfigurationError(
                f"routing_cycles must be non-negative, got {self.routing_cycles}"
            )
        if self.link_cycles <= 0:
            raise ConfigurationError(
                f"link_cycles must be positive, got {self.link_cycles}"
            )
        if self.clock_period <= 0:
            raise ConfigurationError(
                f"clock_period must be positive, got {self.clock_period}"
            )
        if self.flit_width <= 0:
            raise ConfigurationError(
                f"flit_width must be positive, got {self.flit_width}"
            )

    @property
    def routing_time(self) -> float:
        """``tr x lambda`` in nanoseconds."""
        return self.routing_cycles * self.clock_period

    @property
    def link_time(self) -> float:
        """``tl x lambda`` in nanoseconds."""
        return self.link_cycles * self.clock_period

    def flits(self, bits: int) -> int:
        """Number of flits of a packet of *bits* bits (``n_abq``)."""
        return bits_to_flits(bits, self.flit_width)


#: Parameters of the paper's worked example (Section 4.1): tr = 2 cycles,
#: tl = 1 cycle, 1 ns clock, one-bit flits, unbounded buffers.
PAPER_EXAMPLE_PARAMETERS = NocParameters(
    routing_cycles=2,
    link_cycles=1,
    clock_period=1.0,
    flit_width=1,
)


@dataclass(frozen=True)
class Platform:
    """Complete target-architecture description used by the cost models.

    The ``mesh`` field (named for the paper's default substrate, aliased as
    :attr:`topology`) holds any :class:`~repro.noc.topology.Topology`; both
    it and ``routing`` also accept registry spec strings, resolved once at
    construction.
    """

    mesh: Union[Topology, str]
    routing: Union[RoutingAlgorithm, str] = field(default_factory=XYRouting)
    parameters: NocParameters = field(default_factory=NocParameters)
    technology: Technology = TECH_0_07UM

    def __post_init__(self) -> None:
        if isinstance(self.mesh, str):
            object.__setattr__(self, "mesh", get_topology(self.mesh))
        if isinstance(self.routing, str):
            object.__setattr__(self, "routing", get_routing(self.routing))

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The NoC topology (alias of the ``mesh`` field, which predates
        the pluggable-topology redesign and also holds tori and irregular
        fabrics)."""
        return self.mesh

    @property
    def num_tiles(self) -> int:
        """Total number of tiles of the topology."""
        return self.mesh.num_tiles

    def route(self, source_tile: int, target_tile: int) -> List[int]:
        """Router (tile) indices traversed from *source_tile* to *target_tile*."""
        return self.routing.route(self.mesh, source_tile, target_tile)

    def hop_count(self, source_tile: int, target_tile: int) -> int:
        """``K`` — number of routers traversed."""
        return len(self.route(source_tile, target_tile))

    def route_links(self, source_tile: int, target_tile: int) -> List[Tuple[int, int]]:
        """Inter-router links of the route, as ``(from, to)`` tile pairs."""
        return self.routing.links(self.mesh, source_tile, target_tile)

    def with_technology(self, technology: Technology) -> "Platform":
        """Copy of this platform with a different technology."""
        return replace(self, technology=technology)

    def with_routing(self, routing: Union[RoutingAlgorithm, str]) -> "Platform":
        """Copy of this platform with a different routing algorithm (or spec)."""
        return replace(self, routing=routing)

    def with_topology(self, topology: Union[Topology, str]) -> "Platform":
        """Copy of this platform with a different topology (or spec string)."""
        return replace(self, mesh=topology)

    def validate_deadlock_free(self, raise_on_cycle: bool = True):
        """Gate this platform's routing/topology pair against wormhole deadlock.

        Delegates to :func:`repro.noc.deadlock.validate_deadlock_free`; call
        it once after assembling a platform with a table-backed or custom
        routing, before any contention-aware pricing.
        """
        from repro.noc.deadlock import validate_deadlock_free

        return validate_deadlock_free(
            self.mesh, self.routing, raise_on_cycle=raise_on_cycle
        )

    def with_parameters(self, parameters: NocParameters) -> "Platform":
        """Copy of this platform with different wormhole parameters."""
        return replace(self, parameters=parameters)

    def noc_static_power(self) -> float:
        """``PstNoC = n x PSRouter`` (equation 5), in pJ/ns."""
        return self.num_tiles * self.technology.router_static_power

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        params = self.parameters
        return "\n".join(
            [
                f"platform: {self.mesh} / {self.routing.name} routing",
                (
                    f"  wormhole: tr={params.routing_cycles} cycles, "
                    f"tl={params.link_cycles} cycles, clock={params.clock_period} ns, "
                    f"flit width={params.flit_width} bits"
                ),
                f"  technology: {self.technology.describe()}",
            ]
        )


def paper_example_platform(technology: Technology | None = None) -> Platform:
    """The 2x2 platform of the paper's worked example (Figures 1–5)."""
    from repro.energy.technology import TECH_PAPER_EXAMPLE

    return Platform(
        mesh=Mesh(2, 2),
        routing=XYRouting(),
        parameters=PAPER_EXAMPLE_PARAMETERS,
        technology=technology or TECH_PAPER_EXAMPLE,
    )


__all__ = [
    "NocParameters",
    "Platform",
    "PAPER_EXAMPLE_PARAMETERS",
    "paper_example_platform",
]
