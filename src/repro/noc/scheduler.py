"""Contention-aware replay of a CDCG over a mapped NoC (the CDCM engine).

This module implements the evaluation procedure described in Section 4 of the
paper: given a CDCG, a core-to-tile mapping and a platform, every packet is
"executed onto the CRG" — it is injected after its dependences are satisfied
and its source core's computation time has elapsed, and it then reserves the
routers and links along its XY route for the time intervals dictated by the
wormhole delay model (equations 6–8).  Packets that compete for the same
inter-router link are serialised: the later packet waits in the input buffer
of the router before the contention point and its remaining hops are delayed
accordingly, exactly as in the A->F / B->F contention of Figure 3(a)/Figure 4.

The result (:class:`ScheduleResult`) carries:

* one :class:`PacketSchedule` per packet — injection time, delivery time,
  path, contention delay;
* the cost-variable lists of every CRG vertex and edge
  (:class:`~repro.noc.resources.Occupation` records), matching the
  annotations of Figure 3;
* the application execution time ``texec`` used by the static-energy model.

The timing model is validated against the paper's worked example: it
reproduces every interval of Figure 3 and the execution times of 100 ns /
90 ns for the two mappings of Figure 1(c, d).

Besides the full replay, the scheduler exposes the machinery of the
*bounded-repair* delta path (:mod:`repro.eval.repair`):

* :func:`contention_resource` / :func:`contention_index` — which resources
  arbitrate (inter-router links always, local core-router links only under
  ``serialize_local_links``) and the per-resource sorted occupation lists a
  repair engine keeps incrementally updated;
* :class:`FrozenOccupations` — a read-only background of occupations the
  partial replay treats as immovable;
* :meth:`CdcmScheduler.schedule_subset` — replays only a subset of packets
  against such a frozen background.  With the subset covering every packet
  and no background, the partial replay is bit-identical to
  :meth:`CdcmScheduler.schedule` by construction (pinned in
  ``tests/test_repair.py``).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TypingMapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.graphs.cdcg import CDCG, Packet
from repro.noc.platform import Platform
from repro.noc.resources import (
    LinkResource,
    LocalLinkResource,
    Occupation,
    Resource,
    RouterResource,
)
from repro.utils.errors import MappingError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.core.mapping import Mapping


@dataclass(frozen=True)
class PacketSchedule:
    """Timing of one packet's traversal of the NoC.

    All times are absolute nanoseconds from application start.

    Attributes
    ----------
    packet:
        The scheduled CDCG packet.
    source_tile, target_tile:
        Tiles hosting the packet's source and target cores.
    path:
        Router (tile) indices traversed, endpoints included.
    ready_time:
        Instant at which all dependence predecessors had been delivered.
    injection_time:
        ``ready_time + computation_time`` — the instant the source core offers
        the packet's head flit to its local link.
    delivery_time:
        Instant the packet's tail flit reaches the target core.
    contention_delay:
        Total extra delay accumulated waiting for busy links.
    num_flits:
        ``n_abq`` — number of flits of the packet on this platform.
    """

    packet: Packet
    source_tile: int
    target_tile: int
    path: Tuple[int, ...]
    ready_time: float
    injection_time: float
    delivery_time: float
    contention_delay: float
    num_flits: int

    @property
    def hop_count(self) -> int:
        """``K`` — number of routers traversed."""
        return len(self.path)

    @property
    def network_latency(self) -> float:
        """Time from injection to full delivery."""
        return self.delivery_time - self.injection_time

    @property
    def zero_load_latency(self) -> float:
        """Network latency this packet would have without any contention."""
        return self.network_latency - self.contention_delay


@dataclass
class ScheduleResult:
    """Outcome of replaying a CDCG over a mapped platform."""

    application: str
    execution_time: float
    packet_schedules: Dict[str, PacketSchedule]
    occupations: Dict[Resource, List[Occupation]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def schedule(self, packet_name: str) -> PacketSchedule:
        """Schedule of a single packet, by packet name."""
        try:
            return self.packet_schedules[packet_name]
        except KeyError as exc:
            raise SchedulingError(
                f"no packet named {packet_name!r} in schedule of {self.application!r}"
            ) from exc

    def total_contention_delay(self) -> float:
        """Sum of the contention delays of all packets."""
        return sum(s.contention_delay for s in self.packet_schedules.values())

    def contended_packets(self) -> List[str]:
        """Names of packets that suffered any contention, sorted."""
        return sorted(
            name
            for name, sched in self.packet_schedules.items()
            if sched.contention_delay > 0
        )

    def resource_occupations(self, resource: Resource) -> List[Occupation]:
        """Cost-variable list of one CRG resource, sorted by start time."""
        return sorted(self.occupations.get(resource, []), key=lambda o: o.start)

    def router_occupations(self, tile: int) -> List[Occupation]:
        """Cost-variable list of the router at *tile*."""
        return self.resource_occupations(RouterResource(tile))

    def link_occupations(self, source: int, target: int) -> List[Occupation]:
        """Cost-variable list of the inter-router link *source* -> *target*."""
        return self.resource_occupations(LinkResource(source, target))

    def local_link_occupations(self, tile: int) -> List[Occupation]:
        """Cost-variable list of the core-router link of *tile*."""
        return self.resource_occupations(LocalLinkResource(tile))

    def max_link_utilisation(self) -> float:
        """Largest fraction of ``execution_time`` any inter-router link is busy."""
        if self.execution_time <= 0:
            return 0.0
        best = 0.0
        for resource, occupations in self.occupations.items():
            if not isinstance(resource, LinkResource):
                continue
            busy = sum(o.duration for o in occupations)
            best = max(best, busy / self.execution_time)
        return best

    def bits_through_routers(self) -> int:
        """Total router traversals weighted by bits (dynamic-energy quantity)."""
        return sum(
            sum(o.bits for o in occupations)
            for resource, occupations in self.occupations.items()
            if isinstance(resource, RouterResource)
        )

    def bits_through_links(self) -> int:
        """Total inter-router link traversals weighted by bits."""
        return sum(
            sum(o.bits for o in occupations)
            for resource, occupations in self.occupations.items()
            if isinstance(resource, LinkResource)
        )

    def bits_through_local_links(self) -> int:
        """Total local (core-router) link traversals weighted by bits."""
        return sum(
            sum(o.bits for o in occupations)
            for resource, occupations in self.occupations.items()
            if isinstance(resource, LocalLinkResource)
        )


def contention_resource(resource: Resource, serialize_local: bool) -> bool:
    """Whether *resource* arbitrates between packets (can delay a grant).

    Inter-router links always serialise competing packets; local core-router
    links only do under ``serialize_local_links``; routers never block in
    this model (they are cost-variable records only).
    """
    if isinstance(resource, LinkResource):
        return True
    if isinstance(resource, LocalLinkResource):
        return serialize_local
    return False


def contention_index(
    result: ScheduleResult, serialize_local: bool
) -> Dict[Resource, List[Occupation]]:
    """Per-resource occupation lists of the *contention* resources of a schedule.

    The lists are sorted by start time, which for one arbitrating resource is
    also grant order (each new grant starts at or after the previous grant's
    end), and non-overlapping — the two invariants the bounded-repair path
    (:mod:`repro.eval.repair`) relies on to keep them incrementally updated
    and to query them through :class:`FrozenOccupations`.
    """
    index: Dict[Resource, List[Occupation]] = {}
    for resource, occupations in result.occupations.items():
        if contention_resource(resource, serialize_local):
            index[resource] = sorted(occupations, key=lambda o: o.start)
    return index


class FrozenOccupations:
    """A read-only background of occupations a partial replay cannot move.

    Built from per-resource lists that are sorted by start time and
    non-overlapping (the invariant :func:`contention_index` produces — ends
    are then increasing too, so the latest occupation starting before an
    instant is also the one blocking longest).
    :meth:`CdcmScheduler.schedule_subset` consults it when granting an
    output: a background occupation behaves exactly like an already-granted
    foreground one.
    """

    __slots__ = ("_starts", "_occupations")

    def __init__(self, occupations: TypingMapping[Resource, Sequence[Occupation]]) -> None:
        self._occupations: Dict[Resource, Sequence[Occupation]] = dict(occupations)
        # Start arrays are materialised lazily, per resource, on first
        # lookup — a repair candidate consults only the resources its
        # replayed routes actually cross.
        self._starts: Dict[Resource, List[float]] = {}

    def _starts_of(self, resource: Resource) -> Optional[List[float]]:
        """The (cached) sorted start array of *resource*, or ``None`` if empty."""
        starts = self._starts.get(resource)
        if starts is None:
            occupations = self._occupations.get(resource)
            if not occupations:
                return None
            starts = [o.start for o in occupations]
            self._starts[resource] = starts
        return starts

    def blocking_end(self, resource: Resource, before: float) -> float:
        """End of the latest background occupation of *resource* starting before *before*.

        Returns 0.0 when no background occupation starts earlier — the same
        "free since forever" default the full replay uses for an untouched
        ``free_at`` entry.
        """
        starts = self._starts_of(resource)
        if starts is None:
            return 0.0
        index = bisect_left(starts, before) - 1
        if index < 0:
            return 0.0
        return self._occupations[resource][index].end

    def starting_at_or_after(
        self, resource: Resource, start: float
    ) -> Sequence[Occupation]:
        """Background occupations of *resource* starting at or after *start*.

        These are the grants the full replay would have (re-)arbitrated
        *after* a change at *start* — the repair engine's frontier: if any
        exist on a touched resource, the bounded step is only approximate.
        """
        starts = self._starts_of(resource)
        if starts is None:
            return ()
        index = bisect_left(starts, start)
        occupations = self._occupations[resource]
        return occupations[index:] if index < len(starts) else ()


@dataclass
class SubsetSchedule:
    """Outcome of a bounded partial replay (:meth:`CdcmScheduler.schedule_subset`).

    Attributes
    ----------
    schedules:
        One :class:`PacketSchedule` per replayed packet.
    footprints:
        Per replayed packet, the *contention-resource* occupations it
        reserved, as ``(resource, occupation)`` pairs in route order — what
        the repair engine splices into its incrementally maintained
        :func:`contention_index`.
    """

    schedules: Dict[str, PacketSchedule]
    footprints: Dict[str, List[Tuple[Resource, Occupation]]]


class CdcmScheduler:
    """Replays a CDCG over a mapped platform, producing a :class:`ScheduleResult`.

    Parameters
    ----------
    platform:
        Target architecture (mesh, routing, wormhole parameters, technology).
    route_table:
        Optional pre-built :class:`~repro.eval.route_table.RouteTable`; by
        default the process-wide shared table for *platform* is used, so every
        packet's path is a precomputed O(1) lookup instead of a fresh XY walk
        per replay.
    """

    def __init__(self, platform: Platform, route_table=None) -> None:
        self.platform = platform
        if route_table is None:
            # Imported here rather than at module level: repro.eval builds on
            # the noc layer, so a top-level import would be circular.
            from repro.eval.route_table import get_route_table

            route_table = get_route_table(platform)
        self._route_table = route_table
        # Heap tie-break order of the most recent CDCG, cached because
        # schedule_subset is called per repair delta (hot path) and the
        # packet list of a CDCG instance never changes.
        self._order_cache: Optional[Tuple[CDCG, Dict[str, int]]] = None

    def _order_index(self, cdcg: CDCG) -> Dict[str, int]:
        """Deterministic heap tie-break ranks (CDCG declaration order)."""
        cached = self._order_cache
        if cached is not None and cached[0] is cdcg:
            return cached[1]
        order_index = {p.name: i for i, p in enumerate(cdcg.packets)}
        self._order_cache = (cdcg, order_index)
        return order_index

    @property
    def route_table(self):
        """The route table replays read paths from (shared or custom)."""
        return self._route_table

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self, cdcg: CDCG, mapping: "Mapping | TypingMapping[str, int]") -> ScheduleResult:
        """Replay *cdcg* with cores placed according to *mapping*.

        *mapping* may be a :class:`repro.core.mapping.Mapping` or any mapping
        from core name to tile index.

        Raises
        ------
        MappingError
            If a core of the application has no tile, or two cores share one.
        SchedulingError
            If the CDCG has a dependence cycle (it then never terminates).
        """
        tile_of = _tile_lookup(cdcg, mapping, self.platform)
        params = self.platform.parameters
        tr = params.routing_time
        tl = params.link_time

        # Dependence bookkeeping ------------------------------------------------
        order_index = {p.name: i for i, p in enumerate(cdcg.packets)}
        remaining_preds = {
            p.name: len(cdcg.predecessors(p.name)) for p in cdcg.packets
        }
        ready_time: Dict[str, float] = {
            p.name: 0.0 for p in cdcg.packets if remaining_preds[p.name] == 0
        }

        # Resource availability: next instant a contention resource is free.
        free_at: Dict[Resource, float] = {}
        occupations: Dict[Resource, List[Occupation]] = {}
        schedules: Dict[str, PacketSchedule] = {}

        # Event-driven processing: always schedule next the ready packet with
        # the earliest injection time, which approximates the FCFS arbitration
        # of a real router for independent packets.
        heap: List[Tuple[float, int, str]] = []
        for name, ready in ready_time.items():
            packet = cdcg.packet(name)
            injection = ready + packet.computation_time
            heapq.heappush(heap, (injection, order_index[name], name))

        scheduled_count = 0
        while heap:
            _, _, name = heapq.heappop(heap)
            packet = cdcg.packet(name)
            ready = ready_time[name]
            schedule = self._schedule_packet(
                packet,
                ready,
                tile_of[packet.source],
                tile_of[packet.target],
                tr,
                tl,
                params.flits(packet.bits),
                params.serialize_local_links,
                free_at,
                occupations,
            )
            schedules[name] = schedule
            scheduled_count += 1

            for successor in cdcg.successors(name):
                remaining_preds[successor] -= 1
                current = ready_time.get(successor, 0.0)
                ready_time[successor] = max(current, schedule.delivery_time)
                if remaining_preds[successor] == 0:
                    succ_packet = cdcg.packet(successor)
                    injection = (
                        ready_time[successor] + succ_packet.computation_time
                    )
                    heapq.heappush(
                        heap, (injection, order_index[successor], successor)
                    )

        if scheduled_count != cdcg.num_packets:
            raise SchedulingError(
                f"only {scheduled_count} of {cdcg.num_packets} packets could be "
                f"scheduled; the CDCG of {cdcg.name!r} has a dependence cycle"
            )

        execution_time = max(
            (s.delivery_time for s in schedules.values()), default=0.0
        )
        return ScheduleResult(
            application=cdcg.name,
            execution_time=execution_time,
            packet_schedules=schedules,
            occupations=occupations,
        )

    def schedule_subset(
        self,
        cdcg: CDCG,
        tile_of: TypingMapping[str, int],
        subset: Iterable[str],
        ready_floor: Optional[TypingMapping[str, float]] = None,
        background: Optional[FrozenOccupations] = None,
    ) -> SubsetSchedule:
        """Replay only *subset* of the CDCG against a frozen background.

        The bounded-repair primitive: packets in *subset* are rescheduled
        with the exact full-replay timing rules, competing against each
        other **and** against *background* occupations (which never move).
        Dependences on packets outside the subset enter through
        *ready_floor* — the caller supplies each subset packet's ready time
        as seen from the frozen world (typically the maximum old delivery
        time of its out-of-subset predecessors).

        With *subset* covering every packet, an empty floor and no
        background, this is bit-identical to :meth:`schedule` (same heap
        order, same arithmetic); with a partial subset the result is exact
        whenever no background grant would have been re-arbitrated after the
        replayed changes — the condition the repair engine checks through
        :meth:`FrozenOccupations.starting_at_or_after`.

        Parameters
        ----------
        cdcg:
            The application graph (supplies packets and dependences).
        tile_of:
            Core-to-tile placement of the *candidate* mapping, covering at
            least every core a subset packet touches.  Not re-validated —
            callers hold an already-validated mapping.
        subset:
            Names of the packets to replay.
        ready_floor:
            Per-packet lower bound on the ready time (absolute ns)
            contributed by out-of-subset predecessors; missing entries mean
            0.0.
        background:
            Frozen occupations of the packets *not* being replayed; ``None``
            means an empty network.

        Raises
        ------
        SchedulingError
            If the dependences among the subset packets contain a cycle.
        """
        params = self.platform.parameters
        tr = params.routing_time
        tl = params.link_time
        serialize_local = params.serialize_local_links
        names = set(subset)
        floors = ready_floor or {}

        order_index = self._order_index(cdcg)
        remaining_preds = {
            name: sum(1 for p in cdcg.predecessors(name) if p in names)
            for name in names
        }
        ready_time: Dict[str, float] = {}
        heap: List[Tuple[float, int, str]] = []
        for name in names:
            if remaining_preds[name] == 0:
                ready = floors.get(name, 0.0)
                ready_time[name] = ready
                packet = cdcg.packet(name)
                heapq.heappush(
                    heap, (ready + packet.computation_time, order_index[name], name)
                )

        free_at: Dict[Resource, float] = {}
        schedules: Dict[str, PacketSchedule] = {}
        footprints: Dict[str, List[Tuple[Resource, Occupation]]] = {
            name: [] for name in names
        }
        while heap:
            _, _, name = heapq.heappop(heap)
            packet = cdcg.packet(name)
            schedule = self._schedule_packet_bounded(
                packet,
                ready_time[name],
                tile_of[packet.source],
                tile_of[packet.target],
                tr,
                tl,
                params.flits(packet.bits),
                serialize_local,
                free_at,
                footprints[name],
                background,
            )
            schedules[name] = schedule

            for successor in cdcg.successors(name):
                if successor not in names:
                    continue
                remaining_preds[successor] -= 1
                current = ready_time.get(successor, floors.get(successor, 0.0))
                ready_time[successor] = max(current, schedule.delivery_time)
                if remaining_preds[successor] == 0:
                    succ_packet = cdcg.packet(successor)
                    heapq.heappush(
                        heap,
                        (
                            ready_time[successor] + succ_packet.computation_time,
                            order_index[successor],
                            successor,
                        ),
                    )

        if len(schedules) != len(names):
            raise SchedulingError(
                f"only {len(schedules)} of {len(names)} subset packets could "
                f"be scheduled; the CDCG of {cdcg.name!r} has a dependence "
                f"cycle"
            )
        return SubsetSchedule(schedules=schedules, footprints=footprints)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_packet(
        self,
        packet: Packet,
        ready: float,
        source_tile: int,
        target_tile: int,
        tr: float,
        tl: float,
        num_flits: int,
        serialize_local: bool,
        free_at: Dict[Resource, float],
        occupations: Dict[Resource, List[Occupation]],
    ) -> PacketSchedule:
        """Reserve the resources along one packet's route and time its delivery."""
        path = self._route_table.path(source_tile, target_tile)
        injection = ready + packet.computation_time
        stream_time = num_flits * tl
        contention = 0.0

        # Source local link: the core streams the whole packet to its router.
        source_local = LocalLinkResource(source_tile)
        source_start = injection
        if serialize_local:
            available = free_at.get(source_local, 0.0)
            if available > injection:
                source_start = available
                contention += source_start - injection
            free_at[source_local] = source_start + stream_time
        _record(
            occupations,
            source_local,
            Occupation(
                packet.name,
                packet.bits,
                source_start,
                source_start + stream_time,
                contended=source_start > injection,
            ),
        )

        # Header progresses hop by hop; the tail follows (num_flits - 1) x tl
        # behind the header once the header's output has been granted.
        head_arrival = source_start + tl
        link_start = head_arrival  # placeholder, overwritten in the loop
        for position, router_tile in enumerate(path):
            is_last = position == len(path) - 1
            if is_last:
                output: Resource = LocalLinkResource(target_tile)
                output_contends = serialize_local
            else:
                output = LinkResource(router_tile, path[position + 1])
                output_contends = True

            earliest = head_arrival + tr
            link_start = earliest
            contended_here = False
            if output_contends:
                available = free_at.get(output, 0.0)
                if available > head_arrival:
                    # The header waits in this router's input buffer until the
                    # output link is released, then still pays the routing /
                    # arbitration latency tr before streaming out.
                    link_start = max(link_start, available + tr)
                if link_start > earliest:
                    contended_here = True
                    contention += link_start - earliest
                free_at[output] = link_start + stream_time

            _record(
                occupations,
                RouterResource(router_tile),
                Occupation(
                    packet.name,
                    packet.bits,
                    head_arrival,
                    link_start + (num_flits - 1) * tl,
                    contended=contended_here,
                ),
            )
            _record(
                occupations,
                output,
                Occupation(
                    packet.name,
                    packet.bits,
                    link_start,
                    link_start + stream_time,
                    contended=contended_here,
                ),
            )
            head_arrival = link_start + tl

        delivery = link_start + stream_time
        return PacketSchedule(
            packet=packet,
            source_tile=source_tile,
            target_tile=target_tile,
            path=tuple(path),
            ready_time=ready,
            injection_time=injection,
            delivery_time=delivery,
            contention_delay=contention,
            num_flits=num_flits,
        )

    def _schedule_packet_bounded(
        self,
        packet: Packet,
        ready: float,
        source_tile: int,
        target_tile: int,
        tr: float,
        tl: float,
        num_flits: int,
        serialize_local: bool,
        free_at: Dict[Resource, float],
        footprint: List[Tuple[Resource, Occupation]],
        background: Optional[FrozenOccupations],
    ) -> PacketSchedule:
        """Timing twin of :meth:`_schedule_packet` against a frozen background.

        Identical grant arithmetic, with two differences: (1) besides the
        replayed packets' ``free_at``, a grant also yields to *background*
        occupations — resolved by a small fixpoint, since pushing the start
        later can expose yet-later background grants; (2) only
        contention-resource occupations are recorded (into *footprint*) —
        router records never influence timing and the repair engine prices
        dynamic energy from hop counts, not occupation lists.
        """
        path = self._route_table.path(source_tile, target_tile)
        injection = ready + packet.computation_time
        stream_time = num_flits * tl
        contention = 0.0

        source_local = LocalLinkResource(source_tile)
        source_start = injection
        if serialize_local:
            available = free_at.get(source_local, 0.0)
            if available > injection:
                source_start = available
            if background is not None:
                while True:
                    blocked = background.blocking_end(source_local, source_start)
                    if blocked > source_start:
                        source_start = blocked
                    else:
                        break
            if source_start > injection:
                contention += source_start - injection
            free_at[source_local] = source_start + stream_time
            footprint.append(
                (
                    source_local,
                    Occupation(
                        packet.name,
                        packet.bits,
                        source_start,
                        source_start + stream_time,
                        contended=source_start > injection,
                    ),
                )
            )

        head_arrival = source_start + tl
        link_start = head_arrival  # placeholder, overwritten in the loop
        for position, router_tile in enumerate(path):
            is_last = position == len(path) - 1
            if is_last:
                output: Resource = LocalLinkResource(target_tile)
                output_contends = serialize_local
            else:
                output = LinkResource(router_tile, path[position + 1])
                output_contends = True

            earliest = head_arrival + tr
            link_start = earliest
            contended_here = False
            if output_contends:
                available = free_at.get(output, 0.0)
                if available > head_arrival:
                    link_start = max(link_start, available + tr)
                if background is not None:
                    # Fixpoint: a later start can fall behind further frozen
                    # grants; each push is strictly later and bounded by the
                    # last background end + tr, so the loop terminates.
                    while True:
                        blocked = background.blocking_end(output, link_start)
                        if blocked > head_arrival:
                            moved = max(link_start, blocked + tr)
                            if moved > link_start:
                                link_start = moved
                                continue
                        break
                if link_start > earliest:
                    contended_here = True
                    contention += link_start - earliest
                free_at[output] = link_start + stream_time
                footprint.append(
                    (
                        output,
                        Occupation(
                            packet.name,
                            packet.bits,
                            link_start,
                            link_start + stream_time,
                            contended=contended_here,
                        ),
                    )
                )
            head_arrival = link_start + tl

        delivery = link_start + stream_time
        return PacketSchedule(
            packet=packet,
            source_tile=source_tile,
            target_tile=target_tile,
            path=tuple(path),
            ready_time=ready,
            injection_time=injection,
            delivery_time=delivery,
            contention_delay=contention,
            num_flits=num_flits,
        )


def _record(
    occupations: Dict[Resource, List[Occupation]],
    resource: Resource,
    occupation: Occupation,
) -> None:
    occupations.setdefault(resource, []).append(occupation)


def _tile_lookup(
    cdcg: CDCG,
    mapping: "Mapping | TypingMapping[str, int]",
    platform: Platform,
) -> Dict[str, int]:
    """Normalise *mapping* into a plain ``core -> tile`` dict and validate it."""
    if hasattr(mapping, "assignments"):
        assignments = dict(mapping.assignments())  # repro.core.mapping.Mapping
    else:
        assignments = dict(mapping)

    cores = cdcg.cores()
    missing = [core for core in cores if core not in assignments]
    if missing:
        raise MappingError(
            f"mapping does not place cores {missing} of application {cdcg.name!r}"
        )
    used = {}
    for core in cores:
        tile = assignments[core]
        if not platform.mesh.contains(tile):
            raise MappingError(
                f"core {core!r} mapped to tile {tile}, outside {platform.mesh}"
            )
        if tile in used:
            raise MappingError(
                f"cores {used[tile]!r} and {core!r} are both mapped to tile {tile}"
            )
        used[tile] = core
    return {core: assignments[core] for core in cores}


__all__ = [
    "CdcmScheduler",
    "ScheduleResult",
    "PacketSchedule",
    "SubsetSchedule",
    "FrozenOccupations",
    "contention_resource",
    "contention_index",
]
