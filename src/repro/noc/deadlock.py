"""Turn-model deadlock validation for deterministic routing functions.

Wormhole switching without virtual channels deadlocks whenever the *channel
dependency graph* (CDG) of the routing function contains a cycle (Dally &
Seitz): the CDG has one vertex per directed inter-router link, and an edge
``l1 -> l2`` whenever some route acquires ``l2`` while still holding ``l1``
(i.e. the two links are consecutive on a route).  A cycle means a set of
packets can each hold a link the next one needs — none can advance.

:func:`validate_deadlock_free` builds the CDG induced by a routing function
over a topology (all source/target pairs of the deterministic route set) and
rejects cycles, returning the offending link sequence as a counter-example.
This is the gate irregular and table-backed routings pass **before** any
contention model prices mappings on them:

* XY / YX on a (non-wrapping) mesh are deadlock-free — dimension order
  forbids the cyclic turns;
* the provided turn-model routings
  (:class:`~repro.noc.routing.WestFirstRouting`,
  :class:`~repro.noc.routing.NegativeFirstRouting`) are deadlock-free on
  any non-wrapping grid;
* XY on a torus, and BFS :class:`~repro.noc.routing.TableRouting` on cyclic
  fabrics, generally are **not** — the validator surfaces the wrap/cycle
  dependency loops explicitly instead of letting a schedule silently assume
  them away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.noc.routing import RoutingAlgorithm
from repro.noc.topology import Topology
from repro.utils.errors import ConfigurationError

#: A CDG vertex: one directed inter-router link, as a (from, to) tile pair.
Channel = Tuple[int, int]


@dataclass(frozen=True)
class DeadlockReport:
    """Outcome of a channel-dependency-graph analysis.

    Attributes
    ----------
    deadlock_free:
        True when the CDG is acyclic.
    num_channels:
        Number of directed links the route set uses (CDG vertices).
    num_dependencies:
        Number of distinct link-to-link dependencies (CDG edges).
    cycle:
        A witness cycle as an ordered link sequence (each link's head tile is
        the next link's tail); empty when the CDG is acyclic.
    """

    deadlock_free: bool
    num_channels: int
    num_dependencies: int
    cycle: Tuple[Channel, ...] = ()

    def __bool__(self) -> bool:
        """Truthiness mirrors :attr:`deadlock_free` (``if report:`` reads well)."""
        return self.deadlock_free

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.deadlock_free:
            return (
                f"deadlock-free: {self.num_channels} channels, "
                f"{self.num_dependencies} dependencies, acyclic CDG"
            )
        chain = " -> ".join(f"{a}->{b}" for a, b in self.cycle)
        return f"DEADLOCK: cyclic channel dependency {chain}"


def channel_dependency_graph(
    topology: Topology, routing: RoutingAlgorithm
) -> Dict[Channel, Set[Channel]]:
    """The CDG induced by *routing* over *topology*.

    Every ``(source, target)`` tile pair's route contributes its links as
    vertices and each consecutive link pair as a dependency edge.

    Returns
    -------
    dict
        ``{link: set of links acquired immediately after it}`` — vertices
        with no outgoing dependency map to an empty set.
    """
    graph: Dict[Channel, Set[Channel]] = {}
    for source in topology.tiles():
        for target in topology.tiles():
            if source == target:
                continue
            path = routing.route(topology, source, target)
            hops = list(zip(path, path[1:]))
            for link in hops:
                graph.setdefault(link, set())
            for held, wanted in zip(hops, hops[1:]):
                graph[held].add(wanted)
    return graph


def find_cycle(graph: Dict[Channel, Set[Channel]]) -> Tuple[Channel, ...]:
    """A witness cycle of a dependency graph, or ``()`` when acyclic.

    Deterministic: vertices and edges are visited in sorted order, so the
    same graph always yields the same witness.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Channel, int] = {vertex: WHITE for vertex in graph}
    for root in sorted(graph):
        if colour[root] != WHITE:
            continue
        # Iterative DFS keeping the grey path on an explicit stack.
        stack: List[Tuple[Channel, List[Channel]]] = [(root, sorted(graph[root]))]
        colour[root] = GREY
        path = [root]
        while stack:
            vertex, pending = stack[-1]
            advanced = False
            while pending:
                successor = pending.pop(0)
                state = colour.get(successor, BLACK)
                if state == GREY:
                    return tuple(path[path.index(successor):])
                if state == WHITE:
                    colour[successor] = GREY
                    path.append(successor)
                    stack.append((successor, sorted(graph[successor])))
                    advanced = True
                    break
            if not advanced:
                colour[vertex] = BLACK
                path.pop()
                stack.pop()
    return ()


def validate_deadlock_free(
    topology: Topology,
    routing: RoutingAlgorithm,
    raise_on_cycle: bool = True,
) -> DeadlockReport:
    """Check that *routing* over *topology* cannot wormhole-deadlock.

    Builds the channel dependency graph of the full deterministic route set
    and searches it for cycles.  Use this as a gate before pricing mappings
    with the contention-aware CDCM scheduler on a new topology/routing
    combination — a cyclic CDG means the modelled network could stall in
    ways the scheduler does not represent.

    Parameters
    ----------
    topology:
        The fabric the routes run over.
    routing:
        The deterministic routing function under test.
    raise_on_cycle:
        Raise :class:`~repro.utils.errors.ConfigurationError` (carrying the
        witness cycle) instead of returning a failing report — the right
        default for construction-time gating; pass ``False`` to inspect the
        report programmatically.

    Returns
    -------
    DeadlockReport
        The analysis outcome (always deadlock-free when *raise_on_cycle* is
        left on, since a cycle raises instead).
    """
    graph = channel_dependency_graph(topology, routing)
    cycle = find_cycle(graph)
    report = DeadlockReport(
        deadlock_free=not cycle,
        num_channels=len(graph),
        num_dependencies=sum(len(edges) for edges in graph.values()),
        cycle=cycle,
    )
    if cycle and raise_on_cycle:
        raise ConfigurationError(
            f"routing {routing.name!r} over {topology} is not deadlock-free: "
            f"{report.describe()}"
        )
    return report


__all__ = [
    "Channel",
    "DeadlockReport",
    "channel_dependency_graph",
    "find_cycle",
    "validate_deadlock_free",
]
