"""NoC topologies — the pluggable :class:`Topology` protocol and its instances.

The paper evaluates mappings on regular 2D-mesh NoCs (Definition 3 fixes the
number of tiles to the product of the two mesh dimensions) but notes that
other topologies "can be equally treated".  This module makes that claim
first-class: every consumer of the platform layer (routing functions, route
tables, schedulers, search engines) talks to a :class:`Topology` — an object
exposing tiles, adjacency, a CRG view, wrap capability flags and a stable
``cache_token`` — instead of assuming a mesh.

Three topologies ship:

* :class:`Mesh` — the paper's ``width x height`` 2D mesh;
* :class:`Torus` — the mesh with wrap-around links (``wraps_x`` /
  ``wraps_y`` both True, which is how the dimension-ordered routings decide
  to take the shorter way around — no ``isinstance`` checks);
* :class:`IrregularTopology` — an arbitrary tile graph built from an edge
  list or an existing :class:`~repro.graphs.crg.CRG`, routed by the
  table-backed :class:`~repro.noc.routing.TableRouting`.

Topologies are also *registry-addressable*: :func:`get_topology` resolves
spec strings like ``"mesh:4x4"`` or ``"torus:3x3"``, and
:func:`register_topology` installs custom factories under new spec names —
the same configuration-by-name pattern as the routing and search registries.

Tile numbering is row-major for the grid topologies: tile
``index = y * width + x``, with ``x`` growing to the right and ``y`` growing
downwards.  For the paper's 2x2 example this puts tiles tau0/tau1 on the top
row and tau2/tau3 on the bottom row, matching Figure 1(c, d).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.graphs.crg import CRG
from repro.utils.errors import ConfigurationError


class Topology(ABC):
    """Protocol every NoC topology implements.

    A topology is a *structural* description: which tiles exist, which tiles
    are linked, and two capability flags the dimension-ordered routings use
    to decide whether an axis wraps around.  Everything dynamic (routing,
    timing, energy) consumes topologies through this interface, so meshes,
    tori and irregular fabrics are interchangeable everywhere a
    :class:`~repro.noc.platform.Platform` is accepted.

    Implementations must be immutable, hashable and picklable — route tables
    are shared process-wide keyed by :attr:`cache_token`, and parallel
    pricing ships topologies (inside platforms) across process boundaries.
    """

    #: Whether the X axis wraps around (torus-like).  The dimension-ordered
    #: routings consult this flag — never ``isinstance`` — so a custom
    #: wrap-capable topology routes correctly without subclassing Torus.
    wraps_x: ClassVar[bool] = False

    #: Whether the Y axis wraps around (torus-like).
    wraps_y: ClassVar[bool] = False

    @property
    @abstractmethod
    def num_tiles(self) -> int:
        """Total number of tiles, ``n``."""

    @abstractmethod
    def neighbours(self, index: int) -> List[int]:
        """Tiles reachable from tile *index* through one link.

        The order is part of the topology's contract: deterministic routing
        tables (:class:`~repro.noc.routing.TableRouting`) break shortest-path
        ties by first match in this list.
        """

    @abstractmethod
    def to_crg(self, name: Optional[str] = None) -> CRG:
        """The communication resource graph of this topology (Definition 3)."""

    @property
    @abstractmethod
    def cache_token(self) -> Tuple:
        """Stable, hashable identity used to key shared route tables.

        Two topology objects with equal tokens must produce identical
        adjacency (and therefore identical routes under any deterministic
        routing), because :func:`repro.eval.route_table.get_route_table`
        shares one table per token.  Tokens embed the concrete class, so a
        subclass that changes behaviour (e.g. a wrapping mesh) never aliases
        its parent's tables.
        """

    def tiles(self) -> Iterator[int]:
        """All tile indices, ``0 .. num_tiles - 1``."""
        return iter(range(self.num_tiles))

    def contains(self, index: int) -> bool:
        """Whether *index* is a valid tile index of this topology."""
        return 0 <= index < self.num_tiles

    def links(self) -> List[Tuple[int, int]]:
        """All directed links as ``(source, target)`` tile pairs, sorted."""
        return sorted(
            (index, neighbour)
            for index in self.tiles()
            for neighbour in self.neighbours(index)
        )


@dataclass(frozen=True)
class Mesh(Topology):
    """A ``width x height`` 2D-mesh NoC.

    Attributes
    ----------
    width:
        Number of tiles along the X axis.
    height:
        Number of tiles along the Y axis.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"mesh dimensions must be positive, got {self.width}x{self.height}"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Total number of tiles, ``n = width * height``."""
        return self.width * self.height

    def index_of(self, x: int, y: int) -> int:
        """Tile index of grid position ``(x, y)``."""
        self._check_position(x, y)
        return y * self.width + x

    def position_of(self, index: int) -> Tuple[int, int]:
        """Grid position ``(x, y)`` of tile *index*."""
        self._check_index(index)
        return (index % self.width, index // self.width)

    def neighbours(self, index: int) -> List[int]:
        """Indices of the mesh neighbours of tile *index* (2 to 4 tiles).

        X-axis neighbours come first (west, east, then north, south) — the
        tie-break order that makes table-backed shortest-path routing
        reproduce XY routes exactly.
        """
        x, y = self.position_of(index)
        result = []
        if x > 0:
            result.append(self.index_of(x - 1, y))
        if x < self.width - 1:
            result.append(self.index_of(x + 1, y))
        if y > 0:
            result.append(self.index_of(x, y - 1))
        if y < self.height - 1:
            result.append(self.index_of(x, y + 1))
        return result

    def manhattan_distance(self, source: int, target: int) -> int:
        """Hop distance between two tiles along a minimal mesh path."""
        sx, sy = self.position_of(source)
        tx, ty = self.position_of(target)
        return abs(sx - tx) + abs(sy - ty)

    @property
    def cache_token(self) -> Tuple:
        """Class identity + dimensions + wrap flags (see :class:`Topology`)."""
        cls = type(self)
        return (
            cls.__module__,
            cls.__qualname__,
            self.width,
            self.height,
            self.wraps_x,
            self.wraps_y,
        )

    def _check_position(self, x: int, y: int) -> None:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(
                f"position ({x}, {y}) outside {self.width}x{self.height} mesh"
            )

    def _check_index(self, index: int) -> None:
        if not self.contains(index):
            raise ConfigurationError(
                f"tile index {index} outside {self.width}x{self.height} mesh "
                f"(valid range 0..{self.num_tiles - 1})"
            )

    # ------------------------------------------------------------------
    # CRG construction
    # ------------------------------------------------------------------
    def to_crg(self, name: Optional[str] = None) -> CRG:
        """Build the communication resource graph of this mesh.

        Each pair of adjacent tiles is connected by two unidirectional links
        (one per direction), labelled horizontal or vertical.
        """
        crg = CRG(name or f"mesh_{self.width}x{self.height}")
        for index in self.tiles():
            x, y = self.position_of(index)
            crg.add_tile(index, x, y)
        for index in self.tiles():
            x, y = self.position_of(index)
            if x < self.width - 1:
                east = self.index_of(x + 1, y)
                crg.add_link(index, east, "horizontal")
                crg.add_link(east, index, "horizontal")
            if y < self.height - 1:
                south = self.index_of(x, y + 1)
                crg.add_link(index, south, "vertical")
                crg.add_link(south, index, "vertical")
        return crg

    def __str__(self) -> str:
        return f"{self.width}x{self.height} mesh"


@dataclass(frozen=True)
class Torus(Mesh):
    """A 2D torus: a mesh with wrap-around links.

    Declares ``wraps_x = wraps_y = True``, which is all the dimension-ordered
    routings in :mod:`repro.noc.routing` need to take the shorter of the two
    directions along each axis.
    """

    wraps_x: ClassVar[bool] = True
    wraps_y: ClassVar[bool] = True

    def neighbours(self, index: int) -> List[int]:
        """The four wrap-aware neighbours (fewer on 1- or 2-wide axes), sorted."""
        x, y = self.position_of(index)
        result = {
            self.index_of((x - 1) % self.width, y),
            self.index_of((x + 1) % self.width, y),
            self.index_of(x, (y - 1) % self.height),
            self.index_of(x, (y + 1) % self.height),
        }
        result.discard(index)
        return sorted(result)

    def manhattan_distance(self, source: int, target: int) -> int:
        """Wrap-aware hop distance between two tiles."""
        sx, sy = self.position_of(source)
        tx, ty = self.position_of(target)
        dx = abs(sx - tx)
        dy = abs(sy - ty)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def to_crg(self, name: Optional[str] = None) -> CRG:
        """Build the torus CRG (mesh links plus the wrap-around links)."""
        crg = CRG(name or f"torus_{self.width}x{self.height}")
        for index in self.tiles():
            x, y = self.position_of(index)
            crg.add_tile(index, x, y)
        seen = set()
        for index in self.tiles():
            for neighbour in self.neighbours(index):
                if (index, neighbour) in seen:
                    continue
                ix, iy = self.position_of(index)
                nx_, ny_ = self.position_of(neighbour)
                orientation = "horizontal" if iy == ny_ else "vertical"
                crg.add_link(index, neighbour, orientation)
                seen.add((index, neighbour))
        return crg

    def __str__(self) -> str:
        return f"{self.width}x{self.height} torus"


class IrregularTopology(Topology):
    """An arbitrary tile graph, built from an edge list or a CRG.

    The general case of the paper's "can be equally treated" remark: any
    connected directed tile graph is a valid NoC substrate once a routing
    function exists for it — which the table-backed
    :class:`~repro.noc.routing.TableRouting` (deterministic BFS shortest
    paths) provides for free.

    Instances are immutable, hashable (by :attr:`cache_token`) and
    picklable, so irregular platforms travel through the process-pool
    pricing backend exactly like meshes.

    Parameters
    ----------
    edges:
        ``(source, target)`` tile pairs.  With ``bidirectional=True`` (the
        default, matching the two-unidirectional-links-per-adjacency
        convention of the mesh CRG) each pair also installs the reverse
        link.
    num_tiles:
        Total tile count; defaults to ``max(endpoint) + 1``.  Tiles not
        named by any edge are rejected by validation (the fabric would be
        disconnected).
    name:
        Label used by ``str()`` and the default CRG name.
    bidirectional:
        Install the reverse of every edge too.
    positions:
        Optional ``{tile: (x, y)}`` grid embedding used for the CRG export
        (purely cosmetic — routing never consults it); tiles default to the
        degenerate embedding ``(index, 0)``.
    """

    def __init__(
        self,
        edges: Iterable[Tuple[int, int]],
        num_tiles: Optional[int] = None,
        name: str = "irregular",
        bidirectional: bool = True,
        positions: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> None:
        directed = set()
        for source, target in edges:
            if source == target:
                raise ConfigurationError(
                    f"irregular topology edge endpoints must differ, "
                    f"got {source}->{target}"
                )
            if source < 0 or target < 0:
                raise ConfigurationError(
                    f"tile indices must be non-negative, got {source}->{target}"
                )
            directed.add((source, target))
            if bidirectional:
                directed.add((target, source))
        if not directed:
            raise ConfigurationError("irregular topology needs at least one edge")
        highest = max(max(source, target) for source, target in directed)
        resolved = highest + 1 if num_tiles is None else num_tiles
        if resolved <= highest:
            raise ConfigurationError(
                f"num_tiles={resolved} but edges reference tile {highest}"
            )
        self._edges: Tuple[Tuple[int, int], ...] = tuple(sorted(directed))
        self._num_tiles = resolved
        self.name = name
        self._positions = dict(positions) if positions else None
        out: Dict[int, List[int]] = {}
        for source, target in self._edges:
            out.setdefault(source, []).append(target)
        self._out = {source: sorted(targets) for source, targets in out.items()}
        self._validate_connected()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_crg(cls, crg: CRG, name: Optional[str] = None) -> "IrregularTopology":
        """Topology over an existing CRG (e.g. one loaded from JSON).

        The CRG's directed links become the topology's edges verbatim
        (``bidirectional=False`` — the CRG already lists both directions
        where they exist) and its tile positions are preserved for the
        round-trip back through :meth:`to_crg`.
        """
        crg.validate()
        indices = [tile.index for tile in crg.tiles]
        if indices != list(range(len(indices))):
            raise ConfigurationError(
                f"CRG {crg.name!r} tile indices must be dense 0..n-1 to serve "
                f"as a topology, got {indices}"
            )
        return cls(
            [(link.source, link.target) for link in crg.links],
            num_tiles=crg.num_tiles,
            name=name or crg.name,
            bidirectional=False,
            positions={tile.index: tile.position for tile in crg.tiles},
        )

    # ------------------------------------------------------------------
    # Topology protocol
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Total number of tiles."""
        return self._num_tiles

    def neighbours(self, index: int) -> List[int]:
        """Out-neighbours of tile *index*, sorted ascending."""
        if not self.contains(index):
            raise ConfigurationError(
                f"tile index {index} outside {self} "
                f"(valid range 0..{self._num_tiles - 1})"
            )
        return list(self._out.get(index, ()))

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """All directed edges, sorted (the defining edge set)."""
        return self._edges

    def to_crg(self, name: Optional[str] = None) -> CRG:
        """Export the topology as a CRG (positions preserved when known)."""
        crg = CRG(name or self.name)
        for index in self.tiles():
            if self._positions is not None and index in self._positions:
                x, y = self._positions[index]
            else:
                x, y = index, 0
            crg.add_tile(index, x, y)
        for source, target in self._edges:
            crg.add_link(source, target)
        return crg

    @property
    def cache_token(self) -> Tuple:
        """Class identity + tile count + the sorted directed edge set."""
        cls = type(self)
        return (cls.__module__, cls.__qualname__, self._num_tiles, self._edges)

    # ------------------------------------------------------------------
    def _validate_connected(self) -> None:
        """Strong connectivity: every tile must reach every other tile.

        Checked over the *directed* edges (tile 0 must reach everything and
        everything must reach tile 0 — which composes to any-pair
        reachability), so a one-way fabric whose routes cannot exist fails
        here, at construction, instead of deep inside routing or pricing.
        """
        incoming: Dict[int, set] = {index: set() for index in self.tiles()}
        for source, target in self._edges:
            incoming[target].add(source)

        def reachable(adjacency: Dict[int, List[int]]) -> set:
            seen = {0}
            frontier = [0]
            while frontier:
                tile = frontier.pop()
                for neighbour in adjacency.get(tile, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            return seen

        forward = reachable(self._out)
        if len(forward) != self._num_tiles:
            missing = sorted(set(self.tiles()) - forward)
            raise ConfigurationError(
                f"irregular topology {self.name!r} is not connected; "
                f"tiles {missing} are unreachable from tile 0"
            )
        backward = reachable({tile: sorted(incoming[tile]) for tile in incoming})
        if len(backward) != self._num_tiles:
            missing = sorted(set(self.tiles()) - backward)
            raise ConfigurationError(
                f"irregular topology {self.name!r} is not strongly connected; "
                f"tiles {missing} cannot reach tile 0 over the directed links"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IrregularTopology):
            return NotImplemented
        return self.cache_token == other.cache_token

    def __hash__(self) -> int:
        return hash(self.cache_token)

    def __str__(self) -> str:
        return f"{self._num_tiles}-tile irregular {self.name!r}"

    def __repr__(self) -> str:
        return (
            f"IrregularTopology(name={self.name!r}, tiles={self._num_tiles}, "
            f"edges={len(self._edges)})"
        )


def topology_cache_token(topology: Topology) -> Tuple:
    """The route-table cache token of *topology* (duck-typed fallback).

    Conforming topologies expose :attr:`Topology.cache_token` directly; for
    minimal duck-typed objects (anything with ``num_tiles`` and
    ``neighbours``) the fallback keys on concrete class identity plus tile
    count, which is safe — distinct classes never share tables — if
    coarser than a structural token.
    """
    token = getattr(topology, "cache_token", None)
    if token is not None:
        return token
    cls = type(topology)
    return (cls.__module__, cls.__qualname__, topology.num_tiles)


def build_mesh_crg(width: int, height: int, name: Optional[str] = None) -> CRG:
    """Convenience wrapper: CRG of a ``width x height`` mesh."""
    return Mesh(width, height).to_crg(name)


# ----------------------------------------------------------------------
# Registry: topologies by spec string
# ----------------------------------------------------------------------
def _parse_dims(argument: str, spec: str) -> Tuple[int, int]:
    try:
        width_text, _, height_text = argument.partition("x")
        return int(width_text), int(height_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"topology spec {spec!r} needs WIDTHxHEIGHT dimensions, "
            f"e.g. 'mesh:4x4'"
        ) from exc


_TOPOLOGY_REGISTRY: Dict[str, Callable[[str], Topology]] = {
    "mesh": lambda argument: Mesh(*_parse_dims(argument, f"mesh:{argument}")),
    "torus": lambda argument: Torus(*_parse_dims(argument, f"torus:{argument}")),
}


def available_topologies() -> List[str]:
    """Spec names accepted by :func:`get_topology`, sorted."""
    return sorted(_TOPOLOGY_REGISTRY)


def register_topology(
    name: str, factory: Callable[[str], Topology], overwrite: bool = False
) -> None:
    """Install a topology factory under a spec name.

    Parameters
    ----------
    name:
        Spec name (the part before the ``:`` in ``"name:argument"``).
    factory:
        Callable receiving the argument string (possibly empty) and
        returning a :class:`Topology`.
    overwrite:
        Allow replacing an existing registration (off by default, so two
        libraries cannot silently steal each other's names).
    """
    key = name.lower()
    if not overwrite and key in _TOPOLOGY_REGISTRY:
        raise ConfigurationError(
            f"topology spec {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _TOPOLOGY_REGISTRY[key] = factory


def get_topology(spec: str) -> Topology:
    """Resolve a topology spec string like ``"mesh:4x4"`` or ``"torus:3x3"``.

    The text before the first ``:`` selects the registered factory, the rest
    is passed to it verbatim (:func:`register_topology` adds new names).
    """
    name, _, argument = spec.partition(":")
    try:
        factory = _TOPOLOGY_REGISTRY[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown topology spec {spec!r}; available: {available_topologies()}"
        ) from exc
    return factory(argument)


__all__ = [
    "Topology",
    "Mesh",
    "Torus",
    "IrregularTopology",
    "topology_cache_token",
    "build_mesh_crg",
    "available_topologies",
    "register_topology",
    "get_topology",
]
