"""Regular NoC topologies.

The paper evaluates mappings on regular 2D-mesh NoCs (Definition 3 fixes the
number of tiles to the product of the two mesh dimensions).  :class:`Mesh`
captures that topology; :class:`Torus` is provided as an extension to show
that other regular topologies "can be equally treated", as the paper notes.

Tile numbering is row-major: tile ``index = y * width + x``, with ``x``
growing to the right and ``y`` growing downwards.  For the paper's 2x2
example this puts tiles tau0/tau1 on the top row and tau2/tau3 on the bottom
row, matching Figure 1(c, d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.graphs.crg import CRG
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class Mesh:
    """A ``width x height`` 2D-mesh NoC.

    Attributes
    ----------
    width:
        Number of tiles along the X axis.
    height:
        Number of tiles along the Y axis.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"mesh dimensions must be positive, got {self.width}x{self.height}"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Total number of tiles, ``n = width * height``."""
        return self.width * self.height

    def index_of(self, x: int, y: int) -> int:
        """Tile index of grid position ``(x, y)``."""
        self._check_position(x, y)
        return y * self.width + x

    def position_of(self, index: int) -> Tuple[int, int]:
        """Grid position ``(x, y)`` of tile *index*."""
        self._check_index(index)
        return (index % self.width, index // self.width)

    def tiles(self) -> Iterator[int]:
        """All tile indices in row-major order."""
        return iter(range(self.num_tiles))

    def neighbours(self, index: int) -> List[int]:
        """Indices of the mesh neighbours of tile *index* (2 to 4 tiles)."""
        x, y = self.position_of(index)
        result = []
        if x > 0:
            result.append(self.index_of(x - 1, y))
        if x < self.width - 1:
            result.append(self.index_of(x + 1, y))
        if y > 0:
            result.append(self.index_of(x, y - 1))
        if y < self.height - 1:
            result.append(self.index_of(x, y + 1))
        return result

    def manhattan_distance(self, source: int, target: int) -> int:
        """Hop distance between two tiles along a minimal mesh path."""
        sx, sy = self.position_of(source)
        tx, ty = self.position_of(target)
        return abs(sx - tx) + abs(sy - ty)

    def contains(self, index: int) -> bool:
        return 0 <= index < self.num_tiles

    def _check_position(self, x: int, y: int) -> None:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(
                f"position ({x}, {y}) outside {self.width}x{self.height} mesh"
            )

    def _check_index(self, index: int) -> None:
        if not self.contains(index):
            raise ConfigurationError(
                f"tile index {index} outside {self.width}x{self.height} mesh "
                f"(valid range 0..{self.num_tiles - 1})"
            )

    # ------------------------------------------------------------------
    # CRG construction
    # ------------------------------------------------------------------
    def to_crg(self, name: str | None = None) -> CRG:
        """Build the communication resource graph of this mesh.

        Each pair of adjacent tiles is connected by two unidirectional links
        (one per direction), labelled horizontal or vertical.
        """
        crg = CRG(name or f"mesh_{self.width}x{self.height}")
        for index in self.tiles():
            x, y = self.position_of(index)
            crg.add_tile(index, x, y)
        for index in self.tiles():
            x, y = self.position_of(index)
            if x < self.width - 1:
                east = self.index_of(x + 1, y)
                crg.add_link(index, east, "horizontal")
                crg.add_link(east, index, "horizontal")
            if y < self.height - 1:
                south = self.index_of(x, y + 1)
                crg.add_link(index, south, "vertical")
                crg.add_link(south, index, "vertical")
        return crg

    def __str__(self) -> str:
        return f"{self.width}x{self.height} mesh"


@dataclass(frozen=True)
class Torus(Mesh):
    """A 2D torus: a mesh with wrap-around links.

    Provided as a topology extension; the deterministic XY routing in
    :mod:`repro.noc.routing` handles the wrap-around by taking the shorter of
    the two directions along each axis.
    """

    def neighbours(self, index: int) -> List[int]:
        x, y = self.position_of(index)
        result = {
            self.index_of((x - 1) % self.width, y),
            self.index_of((x + 1) % self.width, y),
            self.index_of(x, (y - 1) % self.height),
            self.index_of(x, (y + 1) % self.height),
        }
        result.discard(index)
        return sorted(result)

    def manhattan_distance(self, source: int, target: int) -> int:
        sx, sy = self.position_of(source)
        tx, ty = self.position_of(target)
        dx = abs(sx - tx)
        dy = abs(sy - ty)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def to_crg(self, name: str | None = None) -> CRG:
        crg = CRG(name or f"torus_{self.width}x{self.height}")
        for index in self.tiles():
            x, y = self.position_of(index)
            crg.add_tile(index, x, y)
        seen = set()
        for index in self.tiles():
            for neighbour in self.neighbours(index):
                if (index, neighbour) in seen:
                    continue
                ix, iy = self.position_of(index)
                nx_, ny_ = self.position_of(neighbour)
                orientation = "horizontal" if iy == ny_ else "vertical"
                crg.add_link(index, neighbour, orientation)
                seen.add((index, neighbour))
        return crg

    def __str__(self) -> str:
        return f"{self.width}x{self.height} torus"


def build_mesh_crg(width: int, height: int, name: str | None = None) -> CRG:
    """Convenience wrapper: CRG of a ``width x height`` mesh."""
    return Mesh(width, height).to_crg(name)


__all__ = ["Mesh", "Torus", "build_mesh_crg"]
