"""Identifiers for the shared NoC resources a packet reserves.

The CDCM algorithm of the paper annotates every CRG vertex (router) and edge
(link) with a *cost variable list*: one entry per packet that used the
resource, holding the bit count and the absolute time interval during which
the packet occupied it (Figure 3).  The classes here are the keys and values
of that bookkeeping:

* :class:`RouterResource` — a router (CRG vertex);
* :class:`LinkResource` — a unidirectional link between two routers (CRG edge);
* :class:`LocalLinkResource` — the link between a router and the IP core of
  its tile;
* :class:`Occupation` — one entry of a cost variable list: which packet,
  how many bits, during which time interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class RouterResource:
    """The router of tile ``tile``."""

    tile: int

    def __str__(self) -> str:
        return f"router(tau{self.tile})"


@dataclass(frozen=True)
class LinkResource:
    """The unidirectional inter-router link from tile ``source`` to ``target``."""

    source: int
    target: int

    def __str__(self) -> str:
        return f"link(tau{self.source}->tau{self.target})"


@dataclass(frozen=True)
class LocalLinkResource:
    """The local link between the router of tile ``tile`` and its IP core."""

    tile: int

    def __str__(self) -> str:
        return f"local(tau{self.tile})"


#: Any reservable NoC resource.
Resource = Union[RouterResource, LinkResource, LocalLinkResource]


@dataclass(frozen=True)
class Occupation:
    """One entry of a resource's cost variable list.

    Attributes
    ----------
    packet:
        Name of the occupying packet.
    bits:
        Number of bits of the packet (used for dynamic-energy bookkeeping).
    start, end:
        Absolute time interval (in nanoseconds) during which the packet
        occupies the resource — from the arrival of its head (or the start of
        its transmission) until its tail has passed.
    contended:
        True when the packet suffered contention *at this resource* (the
        paper marks such entries with ``*`` in Figure 3).
    """

    packet: str
    bits: int
    start: float
    end: float
    contended: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"occupation of {self.packet!r} ends ({self.end}) before it "
                f"starts ({self.start})"
            )

    @property
    def interval(self) -> Tuple[float, float]:
        """The occupation's ``(start, end)`` time pair, in nanoseconds."""
        return (self.start, self.end)

    @property
    def duration(self) -> float:
        """How long the packet occupied the resource, in nanoseconds."""
        return self.end - self.start

    def overlaps(self, other: "Occupation") -> bool:
        """True when the two occupations overlap in time (open intervals)."""
        return self.start < other.end and other.start < self.end

    def __str__(self) -> str:
        marker = "*" if self.contended else ""
        return f"{marker}{self.bits}({self.packet}):[{self.start:g},{self.end:g}]"


__all__ = [
    "RouterResource",
    "LinkResource",
    "LocalLinkResource",
    "Resource",
    "Occupation",
]
