"""Table 2 — CWM vs CDCM: execution-time reduction and energy savings.

This is the paper's headline experiment.  For every benchmark of the suite,
the best mapping found with the CWM objective is compared against the best
mapping found with the CDCM objective, both evaluated under the full CDCM
model, and the metrics are averaged per NoC size:

* **ETR** — execution-time reduction (paper: 27 %-48 %, 40 % on average);
* **ECS 0.35 um** — energy saving for the mature process (paper: below 1 %);
* **ECS 0.07 um** — energy saving for the deep-submicron process
  (paper: 13 %-26 %, 20 % on average).

Expected reproduction: the *shape* — ETR clearly positive and much larger than
ECS(0.35 um), ECS(0.07 um) in between — not the paper's absolute percentages,
which depend on the original (unpublished) benchmarks and technology
calibration.  Quick mode runs the 15 small-NoC benchmarks with a reduced SA
schedule; set ``REPRO_BENCH_FULL=1`` for all 18.
"""

import pytest

from conftest import BENCH_SEED, FULL_RUN, emit
from repro.analysis.report import table2_to_markdown
from repro.analysis.tables import generate_table2, render_table2

#: The paper's Table 2, used for the paper-vs-measured report.
PAPER_TABLE2 = {
    "3 x 2": {"ETR": 36.0, "ECS0.35": 0.50, "ECS0.07": 15.0},
    "2 x 4": {"ETR": 27.0, "ECS0.35": 0.43, "ECS0.07": 13.0},
    "3 x 3": {"ETR": 39.0, "ECS0.35": 0.55, "ECS0.07": 17.0},
    "2 x 5": {"ETR": 42.0, "ECS0.35": 0.72, "ECS0.07": 23.0},
    "3 x 4": {"ETR": 42.0, "ECS0.35": 0.71, "ECS0.07": 22.0},
    "8 x 8": {"ETR": 38.0, "ECS0.35": 0.60, "ECS0.07": 19.0},
    "10 x 10": {"ETR": 46.0, "ECS0.35": 0.80, "ECS0.07": 25.0},
    "12 x 10": {"ETR": 48.0, "ECS0.35": 0.86, "ECS0.07": 26.0},
    "average": {"ETR": 40.0, "ECS0.35": 0.65, "ECS0.07": 20.0},
}


@pytest.mark.benchmark(group="table2")
def test_table2_cwm_vs_cdcm(benchmark, bench_suite, bench_config):
    def run():
        return generate_table2(
            bench_suite, config=bench_config, seed=BENCH_SEED, keep_comparisons=True
        )

    rows, comparisons = benchmark.pedantic(run, rounds=1, iterations=1)

    average = rows[-1]
    assert average.noc_label == "average"
    # Shape checks (paper: ETR = 40 %, ECS0.35 = 0.65 %, ECS0.07 = 20 % on
    # average): the CDCM mappings must be faster on average, the deep-submicron
    # saving must be clearly positive, and the 0.35 um saving must be small in
    # magnitude compared to the execution-time reduction.
    assert average.etr > 0.0
    assert average.ecs_007 > 0.0
    assert abs(average.ecs_035) < average.etr

    scope = "full suite" if FULL_RUN else "small-NoC subset, quick SA schedule"
    body = render_table2(rows)
    body += "\n\npaper-vs-measured (markdown):\n"
    body += table2_to_markdown(rows, PAPER_TABLE2)
    contended = sum(
        1 for c in comparisons if c.execution_time_reduction > 0
    )
    body += (
        f"\n\nCDCM mapping faster than CWM mapping on "
        f"{contended}/{len(comparisons)} benchmarks"
    )
    emit(f"Table 2 - CWM vs CDCM ({scope})", body)
