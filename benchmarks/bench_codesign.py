"""Benchmark: routing×mapping co-design vs fixed-XY mapping-only search.

Pins the co-design subsystem's claims to numbers on the hub gather/scatter
hotspot workload (4x3 mesh, CDCM pricing) — the workload where every gather
converges on the hub tile, so deterministic XY funnels the whole volume onto
one mesh column while a synthesized table can spread it over all minimal
paths:

* **certification throughput** — tables certified per second through the
  deadlock gate (:meth:`~repro.codesign.synthesis.TableSynthesizer.certify`,
  repair policy) over a batch of random minimal tables;
* **front quality** — under a shared reference, the co-design NSGA-III
  front's n-dimensional hypervolume (energy × time × congestion) is at
  least that of a budget-matched fixed-XY mapping-only NSGA-II front — the
  reason the routing belongs in the genome.

The hypervolume bar is a perf-style bar: waive it on constrained or
instrumented interpreters with ``REPRO_BENCH_NO_PERF_BARS=1``.  The
identity assertions (every front routing certifies deadlock-free, front
points reprice bit-identically, gate counters add up) always run.

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_codesign.json`` in the working directory — the file the CI
benchmark-trajectory job uploads.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.analysis.pareto import hypervolume
from repro.codesign import CodesignParameters, CodesignSearch, TableSynthesizer
from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext
from repro.noc.deadlock import validate_deadlock_free
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.nsga2 import NSGA2Search, Nsga2Parameters
from repro.workloads.embedded import hub_gather_scatter

_SKIP_PERF_BARS = os.environ.get("REPRO_BENCH_NO_PERF_BARS", "0") not in (
    "0",
    "",
    "false",
)

FRONT_KEYS = ("energy", "time", "max_link_utilisation")
CODESIGN_PARAMS = CodesignParameters(population_size=16, generations=10)
NUM_TABLES = 64


@pytest.mark.benchmark(group="codesign-gate")
def test_certification_throughput(benchmark):
    mesh = Mesh(4, 3)
    synthesizer = TableSynthesizer(mesh)
    tables = [synthesizer.random_table(rng=BENCH_SEED + i) for i in range(NUM_TABLES)]

    def run():
        start = time.perf_counter()
        results = [synthesizer.certify(table, policy="repair") for table in tables]
        elapsed = time.perf_counter() - start
        return results, elapsed

    results, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = len(results) / elapsed
    repaired = sum(1 for r in results if r.repaired)

    # The gate's contract is not waivable: every repaired-or-clean table
    # must come out certified and actually deadlock-free.
    for result in results:
        assert result.certified
        assert validate_deadlock_free(
            mesh, result.routing, raise_on_cycle=False
        ).deadlock_free

    emit(
        "co-design - deadlock-gate throughput (random minimal tables, 4x3)",
        f"{len(results)} tables certified in {elapsed:.2f}s "
        f"({rate:,.1f} tables/s), {repaired} repaired",
    )
    record_sample(
        "BENCH_codesign.json",
        {
            "bench": "codesign_gate",
            "tables_per_s": rate,
            "tables": len(results),
            "repaired": repaired,
        },
    )


@pytest.mark.benchmark(group="codesign-front")
def test_codesign_front_vs_fixed_xy_nsga2(benchmark):
    cdcg = hub_gather_scatter()
    platform = Platform(mesh=Mesh(4, 3))
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=BENCH_SEED)

    def run():
        engine = CodesignSearch(cdcg, platform, CODESIGN_PARAMS)
        start = time.perf_counter()
        result = engine.search(initial=initial, rng=BENCH_SEED)
        elapsed = time.perf_counter() - start

        # Budget-matched baseline: mapping-only NSGA-II on the fixed XY
        # platform, same population and generations => same evaluations.
        context = CdcmEvaluationContext(cdcg, platform)
        baseline = NSGA2Search(
            Nsga2Parameters(
                population_size=CODESIGN_PARAMS.population_size,
                generations=CODESIGN_PARAMS.generations,
            ),
            keys=FRONT_KEYS,
        ).search(context, initial, rng=BENCH_SEED)
        return result, baseline, elapsed

    result, baseline, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.evaluations == baseline.evaluations

    # Identity assertions (never waived): the gate held, the front routings
    # are deadlock-free and the front reprices bit-identically.
    assert result.tables_certified >= 1
    for point, routing in zip(result.front, result.front_routings):
        assert validate_deadlock_free(
            platform.mesh, routing, raise_on_cycle=False
        ).deadlock_free
        context = CdcmEvaluationContext(cdcg, platform.with_routing(routing))
        assert context.metrics(point.mapping) == point.metrics

    union = list(result.front) + list(baseline.front)
    reference = {key: max(p.metrics[key] for p in union) for key in FRONT_KEYS}
    codesign_hv = hypervolume(result.front, reference=reference, keys=FRONT_KEYS)
    baseline_hv = hypervolume(baseline.front, reference=reference, keys=FRONT_KEYS)
    ratio = codesign_hv / baseline_hv if baseline_hv > 0 else None
    rate = result.evaluations / elapsed

    emit(
        "co-design - NSGA-III front vs budget-matched fixed-XY NSGA-II "
        "(hub gather/scatter hotspot, 4x3)",
        "\n".join(
            [
                f"co-design front: {len(result.front)} point(s), "
                f"{result.evaluations} evaluations in {elapsed:.2f}s "
                f"({rate:,.1f} evals/s)",
                f"gate traffic:    {result.tables_certified} certified, "
                f"{result.tables_repaired} repaired, "
                f"{result.tables_rejected} rejected",
                f"baseline front:  {len(baseline.front)} point(s) "
                f"(fixed XY, mapping-only NSGA-II, same budget)",
                f"hypervolume:     co-design {codesign_hv:,.0f} vs "
                f"fixed-XY {baseline_hv:,.0f} "
                + (
                    f"({ratio:.2f}x, shared reference)"
                    if ratio is not None
                    else "(baseline front fully dominated)"
                ),
            ]
        ),
    )
    record_sample(
        "BENCH_codesign.json",
        {
            "bench": "codesign_front",
            "evals_per_s": rate,
            "front_size": len(result.front),
            "codesign_hypervolume": codesign_hv,
            "baseline_hypervolume": baseline_hv,
            "hypervolume_ratio": ratio,
            "tables_certified": result.tables_certified,
            "tables_repaired": result.tables_repaired,
            "tables_rejected": result.tables_rejected,
        },
    )

    if _SKIP_PERF_BARS:
        emit(
            "co-design - perf bar status",
            "hypervolume bar waived via REPRO_BENCH_NO_PERF_BARS (identity "
            "and deadlock-gate checks ran)",
        )
        return
    # Widening the genome must not lose front quality at matched budget.
    assert codesign_hv >= baseline_hv
