"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md for
the experiment index) and prints the regenerated artefact so the numbers can
be copied into EXPERIMENTS.md.

Two effort levels are supported:

* default — a "quick" configuration: the small-NoC subset of the suite and a
  reduced simulated-annealing schedule, so ``pytest benchmarks/
  --benchmark-only`` completes in minutes on a laptop;
* ``REPRO_BENCH_FULL=1`` — the full 18-application suite (including the 8x8,
  10x10 and 12x10 NoCs) with the default annealing schedule; expect a long
  run, dominated by the CDCM replays of the three large benchmarks.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.comparison import ComparisonConfig  # noqa: E402
from repro.search.annealing import AnnealingSchedule  # noqa: E402
from repro.workloads.suite import table1_suite  # noqa: E402

#: Set REPRO_BENCH_FULL=1 to run the complete Table 2 suite.
FULL_RUN = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")

#: Seed used by every stochastic bench so results are reproducible run to run.
BENCH_SEED = 20050307  # DATE 2005 (7-11 March 2005)

QUICK_SCHEDULE = AnnealingSchedule(
    cooling_factor=0.92,
    max_evaluations=4_000,
    stall_plateaus=10,
)

FULL_SCHEDULE = AnnealingSchedule(
    cooling_factor=0.95,
    max_evaluations=20_000,
    stall_plateaus=20,
)


@pytest.fixture(scope="session")
def bench_config() -> ComparisonConfig:
    """Comparison configuration used by the Table 2 and ablation benches."""
    schedule = FULL_SCHEDULE if FULL_RUN else QUICK_SCHEDULE
    return ComparisonConfig(annealing_schedule=schedule)


@pytest.fixture(scope="session")
def bench_suite():
    """Suite entries used by the Table 1 / Table 2 benches."""
    if FULL_RUN:
        return table1_suite()
    # Quick mode: all small NoCs (the sizes the paper also solves exhaustively).
    return table1_suite(groups=("small",))


def emit(title: str, body: str) -> None:
    """Print a regenerated artefact in a recognisable block."""
    line = "=" * 72
    print(f"\n{line}\n{title}\n{line}\n{body}\n")


def record_sample(path: str, payload: dict) -> None:
    """Append one benchmark sample to a ``BENCH_*.json`` trajectory file.

    No-op unless ``REPRO_BENCH_RECORD=1``: the CI benchmark-trajectory job
    sets the flag, runs the recording benches and uploads the ``BENCH_*``
    files as artifacts, so every PR appends one sample per bench to the perf
    trajectory.  Locally the same flag produces the files in the working
    directory (they are git-ignored).
    """
    if os.environ.get("REPRO_BENCH_RECORD", "0") in ("0", "", "false"):
        return
    history = []
    if os.path.exists(path):
        with open(path) as handle:
            history = json.load(handle)
    history.append(payload)
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2)
