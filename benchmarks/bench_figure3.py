"""Figure 3 — CDCM evaluation of the two reference mappings.

Paper values: mapping (c) -> 400 pJ / 100 ns, mapping (d) -> 399 pJ / 90 ns.
The bench measures the cost of one full CDCM evaluation (schedule replay +
energy pricing), which is the inner loop of the CDCM mapping search, and
regenerates the figure's totals and per-resource interval lists.
"""

import pytest

from conftest import emit
from repro.analysis.figures import figure3_data
from repro.core.cdcm import CdcmEvaluator
from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_mappings,
    paper_example_platform,
)


@pytest.mark.benchmark(group="figure3")
def test_figure3_cdcm_evaluation(benchmark):
    platform = paper_example_platform()
    cdcg = paper_example_cdcg()
    mappings = paper_example_mappings()
    evaluator = CdcmEvaluator(platform)

    def evaluate_both():
        return (
            evaluator.evaluate(cdcg, mappings["c"]),
            evaluator.evaluate(cdcg, mappings["d"]),
        )

    report_c, report_d = benchmark(evaluate_both)
    assert report_c.total_energy == pytest.approx(400.0)
    assert report_c.execution_time == pytest.approx(100.0)
    assert report_d.total_energy == pytest.approx(399.0)
    assert report_d.execution_time == pytest.approx(90.0)

    data = figure3_data()
    annotations = "\n".join(data.annotations("c"))
    emit(
        "Figure 3 - CDCM evaluation (paper: 400 pJ/100 ns vs 399 pJ/90 ns)",
        data.describe() + "\n\nmapping (c) cost-variable lists:\n" + annotations,
    )
