"""Figure 4 — timing diagram of the contended mapping (Figure 1(c)).

Paper: the A->F packet is held in the input buffer of router tau1 while the
B->F packet uses the link towards tau3, delaying it by 7 ns; the application
finishes at 100 ns.  The bench measures the diagram construction and prints
the regenerated ASCII timing chart.
"""

import pytest

from conftest import emit
from repro.analysis.figures import figure4_diagram
from repro.core.cdcm import CdcmEvaluator
from repro.timing.gantt import build_timelines, summarize_timelines
from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_mappings,
    paper_example_platform,
)


@pytest.mark.benchmark(group="figure4")
def test_figure4_timing_diagram(benchmark):
    platform = paper_example_platform()
    cdcg = paper_example_cdcg()
    mapping = paper_example_mappings()["c"]
    evaluator = CdcmEvaluator(platform)

    def build():
        report = evaluator.evaluate(cdcg, mapping)
        return build_timelines(report.schedule, platform.parameters)

    timelines = benchmark(build)
    summary = summarize_timelines(timelines)
    assert summary["makespan"] == pytest.approx(100.0)
    assert summary["contention"] == pytest.approx(7.0)

    emit(
        "Figure 4 - timing diagram of mapping (c) (paper: texec = 100 ns, contention on A->F)",
        figure4_diagram(width=96),
    )
