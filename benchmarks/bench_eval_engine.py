"""Throughput of the evaluation engine — full vs cached vs delta pricing.

The repro.eval refactor claims that mapping pricing, the hot path of every
search, gets dramatically cheaper: route tables remove the per-evaluation XY
walks, the context memo removes repeated pricing of revisited candidates, and
exact O(degree) swap deltas remove the full re-evaluation from every annealing
move.  This bench pins those claims to numbers so the speedup stays tracked in
the perf trajectory:

* ``pricing`` group — evaluations/sec of one CWM pricing call on an 8x8 mesh
  under three regimes: the seed's per-edge route walk ("full"), the
  route-table-backed context ("cached") and the incremental swap delta
  ("delta");
* ``annealing`` group — end-to-end evaluations/sec of CWM simulated annealing
  on the 8x8 mesh, seed path vs delta path, asserting the >= 2x speedup the
  refactor was sized for (measured well above 10x in practice).

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_eval_engine.json`` in the working directory — the CI
benchmark-trajectory job records one sample per PR and uploads the file as
an artifact.
"""

import time

import pytest

from conftest import emit, record_sample
from repro.core.mapping import Mapping
from repro.core.objective import CountingObjective, cwm_objective
from repro.energy.bit_energy import bit_energy_route
from repro.eval.context import CwmEvaluationContext
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

MESH = Mesh(8, 8)
SEED = 20050307


def _workload():
    spec = TgffSpec(
        name="eval-engine",
        num_cores=48,
        num_packets=200,
        total_bits=400_000,
    )
    cdcg = TgffLikeGenerator(7).generate(spec)
    return cdcg, cdcg_to_cwg(cdcg)


def _legacy_cwm_objective(cwg, platform):
    """The seed pricing path: re-derive the XY route on every edge visit."""
    technology = platform.technology

    def cost(mapping):
        tiles = mapping.assignments()
        total = 0.0
        for comm in cwg.communications():
            hops = platform.hop_count(tiles[comm.source], tiles[comm.target])
            total += comm.bits * bit_energy_route(technology, hops, True)
        return total

    return CountingObjective(cost, name=f"legacy-cwm({cwg.name})")


@pytest.mark.benchmark(group="eval-engine-pricing")
def test_pricing_throughput(benchmark):
    _, cwg = _workload()
    platform = Platform(mesh=MESH)
    legacy = _legacy_cwm_objective(cwg, platform)
    context = CwmEvaluationContext(cwg, platform, cache_size=0)
    mappings = [
        Mapping.random(cwg.cores, platform.num_tiles, rng=seed)
        for seed in range(64)
    ]
    swaps = [(i % platform.num_tiles, (i * 7 + 3) % platform.num_tiles) for i in range(64)]

    def throughput(fn, args_list):
        start = time.perf_counter()
        for args in args_list:
            fn(*args)
        elapsed = time.perf_counter() - start
        return len(args_list) / elapsed

    def run():
        reps = 20
        full = throughput(legacy, [(m,) for m in mappings] * reps)
        cached = throughput(context.cost, [(m,) for m in mappings] * reps)
        base = mappings[0]
        delta = throughput(
            context.delta, [(base, a, b) for a, b in swaps] * reps
        )
        return {"full": full, "cached": cached, "delta": delta}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'pricing path':<12} {'evals/sec':>14} {'vs full':>9}"]
    for label in ("full", "cached", "delta"):
        lines.append(
            f"{label:<12} {rates[label]:>14,.0f} {rates[label] / rates['full']:>8.1f}x"
        )
    emit(
        "Evaluation engine - single-pricing throughput on an 8x8 mesh "
        "(full = seed per-edge route walk, cached = shared route table, "
        "delta = incremental swap pricing)",
        "\n".join(lines),
    )
    record_sample(
        "BENCH_eval_engine.json",
        {
            "bench": "eval_engine_pricing",
            "full_evals_per_s": rates["full"],
            "cached_evals_per_s": rates["cached"],
            "delta_evals_per_s": rates["delta"],
            "cached_speedup": rates["cached"] / rates["full"],
            "delta_speedup": rates["delta"] / rates["full"],
        },
    )
    assert rates["cached"] >= 1.5 * rates["full"]
    assert rates["delta"] >= 2.0 * rates["full"]


@pytest.mark.benchmark(group="eval-engine-annealing")
def test_annealing_throughput_speedup(benchmark):
    _, cwg = _workload()
    platform = Platform(mesh=MESH)
    initial = Mapping.random(cwg.cores, platform.num_tiles, rng=3)
    schedule = AnnealingSchedule(
        cooling_factor=0.95, max_evaluations=20_000, stall_plateaus=25
    )

    def run_one(objective, use_delta):
        engine = SimulatedAnnealing(schedule, use_delta=use_delta)
        start = time.perf_counter()
        result = engine.search(objective, initial, rng=SEED)
        elapsed = time.perf_counter() - start
        return result, result.evaluations / elapsed

    def run():
        seed_result, seed_rate = run_one(
            _legacy_cwm_objective(cwg, platform), use_delta=False
        )
        delta_result, delta_rate = run_one(
            cwm_objective(cwg, platform), use_delta=True
        )
        return seed_result, seed_rate, delta_result, delta_rate

    seed_result, seed_rate, delta_result, delta_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    emit(
        "Evaluation engine - CWM annealing on an 8x8 mesh, seed "
        "full-reevaluation path vs incremental delta path",
        "\n".join(
            [
                f"{'path':<10} {'evals/sec':>12} {'best cost (pJ)':>16}",
                f"{'seed':<10} {seed_rate:>12,.0f} {seed_result.best_cost:>16.1f}",
                f"{'delta':<10} {delta_rate:>12,.0f} {delta_result.best_cost:>16.1f}",
                f"speedup: {delta_rate / seed_rate:.1f}x",
            ]
        ),
    )
    record_sample(
        "BENCH_eval_engine.json",
        {
            "bench": "eval_engine_annealing",
            "seed_evals_per_s": seed_rate,
            "delta_evals_per_s": delta_rate,
            "speedup": delta_rate / seed_rate,
            "seed_best_cost": seed_result.best_cost,
            "delta_best_cost": delta_result.best_cost,
        },
    )
    # The acceptance bar of the refactor: at least 2x evaluations/sec.
    assert delta_rate >= 2.0 * seed_rate
    # Same walk, same destination: the delta path must not trade quality.
    assert delta_result.best_cost <= seed_result.best_cost * (1 + 1e-9)
