"""Figure 2 — CWM evaluation of the two reference mappings.

Paper values: ``EDyNoC = 390 pJ`` for *both* mappings of Figure 1(c, d); the
CWM model cannot distinguish them.  The bench measures the cost of one CWM
evaluation (the inner loop of the CWM mapping search) and regenerates the
figure's numbers.
"""

import pytest

from conftest import emit
from repro.analysis.figures import figure2_data
from repro.core.cwm import CwmEvaluator
from repro.graphs.convert import cdcg_to_cwg
from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_mappings,
    paper_example_platform,
)


@pytest.mark.benchmark(group="figure2")
def test_figure2_cwm_evaluation(benchmark):
    platform = paper_example_platform()
    cwg = cdcg_to_cwg(paper_example_cdcg())
    mappings = paper_example_mappings()
    evaluator = CwmEvaluator(platform)

    def evaluate_both():
        return (
            evaluator.cost(cwg, mappings["c"]),
            evaluator.cost(cwg, mappings["d"]),
        )

    cost_c, cost_d = benchmark(evaluate_both)
    assert cost_c == pytest.approx(390.0)
    assert cost_d == pytest.approx(390.0)

    data = figure2_data()
    emit(
        "Figure 2 - CWM energy of the reference mappings (paper: 390 pJ for both)",
        data.describe(),
    )
