"""Table 1 — characteristics of the benchmark suite.

Paper: 18 applications over 8 NoC sizes, characterised by number of cores,
number of packets and total bit volume.  The bench measures the cost of
generating the whole suite and regenerates the table from the *generated*
applications (so any generator drift would show up immediately).

Deviation from the paper: the third 3x4 benchmark is listed with 14 cores in
the paper, which cannot be mapped injectively onto 12 tiles; the suite clamps
it to 12 cores (see DESIGN.md).
"""

import pytest

from conftest import FULL_RUN, emit
from repro.analysis.tables import generate_table1, render_table1
from repro.workloads.suite import table1_suite


@pytest.mark.benchmark(group="table1")
def test_table1_suite_generation(benchmark, bench_suite):
    rows = benchmark(generate_table1, bench_suite)

    by_label = {row.noc_label: row for row in rows}
    assert by_label["3 x 2"].num_cores == [5, 6, 6]
    assert by_label["3 x 2"].num_packets == [43, 17, 43]
    assert by_label["3 x 2"].total_bits == [78_817, 174, 49_003]
    assert by_label["2 x 5"].total_bits == [2_215, 23_244, 322_221]
    if FULL_RUN:
        assert by_label["8 x 8"].num_packets == [344]
        assert by_label["12 x 10"].total_bits == [680_006_120]

    scope = "full 18-application suite" if FULL_RUN else "small-NoC subset"
    emit(f"Table 1 - benchmark suite characteristics ({scope})", render_table1(rows))
