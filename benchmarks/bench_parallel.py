"""Throughput of the parallel batch-pricing backend — serial vs process pool.

The parallel backend claims two things: (1) pooled pricing is *bit-identical*
to serial pricing, so seeded GA/exhaustive results do not depend on
``n_workers``; (2) for workloads whose per-candidate cost dwarfs the IPC
overhead — CDCM replays, the expensive model of the paper — a
``ProcessPoolBackend(n_workers=4)`` at least doubles GA evaluations/sec on a
16x16 mesh.  This bench pins both:

* ``parallel-identity`` group — seeded GA (16x16 CDCM) and exhaustive
  (2x3 CWM) runs priced through ``SerialBackend`` and ``ProcessPoolBackend``
  must return the same cost, the same mapping and the same history;
* ``parallel-throughput`` group — GA evaluations/sec on an 8x8 mesh (CWM,
  where per-candidate pricing is microseconds and the pool is *expected* to
  lose: the numbers are printed so the overhead stays visible) and on a
  16x16 mesh (CDCM, where the pool must win).

The >= 2x assertion needs real parallel hardware; on single-CPU runners the
throughput comparison still prints, but the bar is skipped (matching how the
suite gates GPU- or effort-dependent benches).

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_parallel.json`` in the working directory — the file the README's
benchmark-trajectory section tracks.
"""

import os
import time

import pytest

from conftest import emit, record_sample
from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective, cwm_objective
from repro.eval.parallel import ProcessPoolBackend, SerialBackend
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

SEED = 20050307
N_WORKERS = 4

#: The >= 2x bar only holds where >= 2 CPUs are actually schedulable.
_CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)

GA_PARAMS = GeneticParameters(population_size=16, generations=2)


def _workload(mesh, num_cores, num_packets, generator_seed):
    spec = TgffSpec(
        name=f"parallel-{mesh.width}x{mesh.height}",
        num_cores=num_cores,
        num_packets=num_packets,
        total_bits=num_packets * 2_000,
    )
    cdcg = TgffLikeGenerator(generator_seed).generate(spec)
    return cdcg, cdcg_to_cwg(cdcg), Platform(mesh=mesh)


def _run_ga(objective, initial, backend):
    engine = GeneticSearch(GA_PARAMS, backend=backend)
    start = time.perf_counter()
    result = engine.search(objective, initial, rng=SEED)
    elapsed = time.perf_counter() - start
    return result, result.evaluations / elapsed


def _record(payload):
    record_sample("BENCH_parallel.json", payload)


@pytest.mark.benchmark(group="parallel-identity")
def test_seeded_results_bit_identical_across_backends(benchmark):
    cdcg, _, platform = _workload(Mesh(16, 16), num_cores=96, num_packets=160, generator_seed=11)
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=5)

    tiny_cdcg, tiny_cwg, tiny_platform = _workload(
        Mesh(2, 3), num_cores=4, num_packets=10, generator_seed=2
    )
    tiny_initial = Mapping.random(tiny_cwg.cores, 6, rng=1)

    def run():
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            ga_serial = GeneticSearch(GA_PARAMS, backend=SerialBackend()).search(
                cdcm_objective(cdcg, platform), initial, rng=SEED
            )
            ga_pooled = GeneticSearch(GA_PARAMS, backend=pool).search(
                cdcm_objective(cdcg, platform), initial, rng=SEED
            )
            es_serial = ExhaustiveSearch().search(
                cwm_objective(tiny_cwg, tiny_platform), tiny_initial
            )
            es_pooled = ExhaustiveSearch(batch_size=64, backend=pool).search(
                cwm_objective(tiny_cwg, tiny_platform), tiny_initial
            )
        return ga_serial, ga_pooled, es_serial, es_pooled

    ga_serial, ga_pooled, es_serial, es_pooled = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    emit(
        "Parallel backend - seeded GA (16x16 CDCM) and exhaustive (2x3 CWM) "
        "across backends",
        "\n".join(
            [
                f"GA  serial best: {ga_serial.best_cost:.6f}  pooled best: {ga_pooled.best_cost:.6f}",
                f"ES  serial best: {es_serial.best_cost:.6f}  pooled best: {es_pooled.best_cost:.6f}",
            ]
        ),
    )
    assert ga_pooled.best_cost == ga_serial.best_cost
    assert ga_pooled.best_mapping == ga_serial.best_mapping
    assert ga_pooled.history == ga_serial.history
    assert es_pooled.best_cost == es_serial.best_cost
    assert es_pooled.best_mapping == es_serial.best_mapping
    assert es_pooled.evaluations == es_serial.evaluations


@pytest.mark.benchmark(group="parallel-throughput")
def test_ga_throughput_serial_vs_pool(benchmark):
    # 8x8 / CWM: microsecond pricing, the pool's fixed costs dominate —
    # reported so the overhead stays visible in the trajectory.
    cheap_cdcg, cheap_cwg, cheap_platform = _workload(
        Mesh(8, 8), num_cores=48, num_packets=120, generator_seed=7
    )
    cheap_initial = Mapping.random(cheap_cwg.cores, 64, rng=3)
    # 16x16 / CDCM: millisecond replays, the pool's target workload.
    cdcg, _, platform = _workload(Mesh(16, 16), num_cores=96, num_packets=160, generator_seed=11)
    initial = Mapping.random(cdcg.cores(), 256, rng=3)

    def run():
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            cheap_serial, cheap_serial_rate = _run_ga(
                cwm_objective(cheap_cwg, cheap_platform), cheap_initial, SerialBackend()
            )
            cheap_pooled, cheap_pooled_rate = _run_ga(
                cwm_objective(cheap_cwg, cheap_platform), cheap_initial, pool
            )
            serial, serial_rate = _run_ga(
                cdcm_objective(cdcg, platform), initial, SerialBackend()
            )
            pooled, pooled_rate = _run_ga(
                cdcm_objective(cdcg, platform), initial, pool
            )
        assert cheap_pooled.best_cost == cheap_serial.best_cost
        assert pooled.best_cost == serial.best_cost
        return {
            "cwm_8x8": (cheap_serial_rate, cheap_pooled_rate),
            "cdcm_16x16": (serial_rate, pooled_rate),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'workload':<14} {'serial evals/s':>15} {'pooled evals/s':>15} {'speedup':>8}"]
    for label, (serial_rate, pooled_rate) in rates.items():
        lines.append(
            f"{label:<14} {serial_rate:>15,.1f} {pooled_rate:>15,.1f} "
            f"{pooled_rate / serial_rate:>7.2f}x"
        )
    lines.append(f"schedulable CPUs: {_CPUS}, pool size: {N_WORKERS}")
    emit(
        "Parallel backend - GA pricing throughput, SerialBackend vs "
        "ProcessPoolBackend(4)",
        "\n".join(lines),
    )

    serial_rate, pooled_rate = rates["cdcm_16x16"]
    _record(
        {
            "bench": "bench_parallel",
            "n_workers": N_WORKERS,
            "cpus": _CPUS,
            "cdcm_16x16_serial_evals_per_s": serial_rate,
            "cdcm_16x16_pooled_evals_per_s": pooled_rate,
            "speedup": pooled_rate / serial_rate,
        }
    )
    if _CPUS < 2:
        pytest.skip(
            f"only {_CPUS} schedulable CPU(s): the >= 2x bar needs parallel "
            f"hardware (identity checks above already ran)"
        )
    # The acceptance bar of the parallel backend: at least 2x GA evals/sec on
    # the 16x16 CDCM workload.
    assert pooled_rate >= 2.0 * serial_rate
