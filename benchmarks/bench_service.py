"""Mapping-service throughput — warm-store sweeps and shm vs pickle transport.

The service layer (:mod:`repro.service`) claims two things:

* **identity** — service-priced vectors equal
  :class:`~repro.eval.parallel.SerialBackend` results exactly, whatever mix
  of store hits and misses produced them, and a warm store answers an
  identical weight sweep without re-pricing a single candidate (hit rate
  1.0).  Both are asserted *always*, like the identity halves of the other
  benches;
* **throughput** — a weight sweep re-run against a warm store completes at
  >= 3x the cold jobs/sec on a 16x16 CDCM workload, because every candidate
  is answered from the store instead of re-scheduled.

The operating point is the acceptance workload: a 16x16 mesh, 96 cores and
128 packets, a 32-candidate population, and a three-point energy/time weight
sweep submitted as daemon jobs.  Scalarisation weights live outside the
store key, so the cold pass prices the population exactly once (jobs 2 and 3
already hit) and the warm pass prices nothing.

The shm-vs-pickle half measures the transport in isolation: the same
population priced through :class:`~repro.service.shm.SharedArrayBackend`
with ``transport="shm"`` and ``transport="pickle"``, identity asserted
against serial both ways.  The transport rates are recorded, not barred —
the win is payload size, and on small populations the pool dominates.

The >= 3x bar follows the suite's perf-bar convention: rates are recorded
first, then the bar can be waived on constrained or instrumented
interpreters by setting ``REPRO_BENCH_NO_PERF_BARS=1``.  The identity
assertions always run.

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_service.json`` in the working directory — the file the CI
benchmark-trajectory job uploads.
"""

import os
import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext
from repro.eval.parallel import SerialBackend
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.service import EvalJob, MappingDaemon, ResultStore, SharedArrayBackend
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

_SKIP_PERF_BARS = os.environ.get("REPRO_BENCH_NO_PERF_BARS", "0") not in (
    "0",
    "",
    "false",
)

_N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

#: The energy/time weight sweep submitted as daemon jobs.
_SWEEP = (
    {"energy": 1.0, "time": 0.0},
    {"energy": 0.5, "time": 0.5},
    {"energy": 0.0, "time": 1.0},
)


def _workload():
    spec = TgffSpec(
        name="service-16x16",
        num_cores=96,
        num_packets=128,
        total_bits=128 * 4_096,
        levels=8,
    )
    cdcg = TgffLikeGenerator(BENCH_SEED).generate(spec)
    return cdcg, Platform(mesh=Mesh(16, 16))


def _population(cdcg, platform, count=32):
    return [
        Mapping.random(sorted(cdcg.cores()), platform.num_tiles, rng=BENCH_SEED + i)
        for i in range(count)
    ]


def _run_sweep(daemon, cdcg, platform, population):
    """Submit the weight sweep as jobs; return (results, elapsed seconds)."""
    start = time.perf_counter()
    results = [
        daemon.run(
            EvalJob(
                application=cdcg,
                platform=platform,
                mappings=population,
                model="cdcm",
                weights=weights,
                label=f"w{i}",
            )
        )
        for i, weights in enumerate(_SWEEP)
    ]
    return results, time.perf_counter() - start


@pytest.mark.benchmark(group="service-throughput")
def test_service_warm_sweep_throughput(benchmark, tmp_path):
    cdcg, platform = _workload()
    population = _population(cdcg, platform)
    serial = SerialBackend().evaluate_metrics(
        CdcmEvaluationContext(cdcg, platform, cache_size=0), population
    )
    store = ResultStore(tmp_path / "store")

    def run():
        with MappingDaemon(store=store) as daemon:
            cold_results, cold_elapsed = _run_sweep(
                daemon, cdcg, platform, population
            )
        # A fresh daemon over the same store root = the next day's run:
        # cold contexts, cold memos, warm *store*.
        with MappingDaemon(store=ResultStore(tmp_path / "store")) as daemon:
            warm_results, warm_elapsed = _run_sweep(
                daemon, cdcg, platform, population
            )
        return cold_results, cold_elapsed, warm_results, warm_elapsed

    cold_results, cold_elapsed, warm_results, warm_elapsed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    cold_rate = len(_SWEEP) / cold_elapsed
    warm_rate = len(_SWEEP) / warm_elapsed

    # Identity half, always asserted: service == serial, cold and warm, and
    # the warm sweep re-priced nothing.
    for result in (*cold_results, *warm_results):
        assert list(result.vectors) == serial
    assert cold_results[0].priced == len(population)
    assert all(r.priced == 0 for r in cold_results[1:])  # weights reuse vectors
    assert all(r.priced == 0 for r in warm_results)
    assert all(r.hit_rate == 1.0 for r in warm_results)

    emit(
        "Mapping service - weight-sweep jobs/sec, cold vs warm store "
        "(16x16 mesh, 96 cores, 32 candidates, 3-point sweep)",
        f"{'store':<8} {'jobs/s':>10} {'sweep s':>10} {'priced':>8}\n"
        f"{'cold':<8} {cold_rate:>10.3f} {cold_elapsed:>10.2f} "
        f"{sum(r.priced for r in cold_results):>8}\n"
        f"{'warm':<8} {warm_rate:>10.3f} {warm_elapsed:>10.2f} "
        f"{sum(r.priced for r in warm_results):>8}\n"
        f"speedup: {warm_rate / cold_rate:.2f}x  "
        f"warm hit rate: {warm_results[-1].hit_rate:.2f}",
    )
    record_sample(
        "BENCH_service.json",
        {
            "bench": "bench_service",
            "half": "warm-sweep",
            "cold_jobs_per_s": cold_rate,
            "warm_jobs_per_s": warm_rate,
            "speedup": warm_rate / cold_rate,
            "warm_hit_rate": warm_results[-1].hit_rate,
            "population": len(population),
        },
    )
    if _SKIP_PERF_BARS:
        pytest.skip(
            ">= 3x bar waived via REPRO_BENCH_NO_PERF_BARS (identity checks "
            "above already ran)"
        )
    # The acceptance bar: a warm store answers the identical sweep at >= 3x
    # the cold jobs/sec.
    assert warm_rate >= 3.0 * cold_rate


@pytest.mark.benchmark(group="service-transport")
def test_shm_vs_pickle_transport(benchmark):
    cdcg, platform = _workload()
    population = _population(cdcg, platform)
    serial = SerialBackend().evaluate_metrics(
        CdcmEvaluationContext(cdcg, platform, cache_size=0), population
    )

    def _rate(transport):
        with SharedArrayBackend(
            n_workers=_N_WORKERS, min_batch_size=2, transport=transport
        ) as pool:
            context = CdcmEvaluationContext(cdcg, platform, cache_size=0)
            pool.evaluate_metrics(context, population[:2])  # warm the pool
            start = time.perf_counter()
            got = pool.evaluate_metrics(
                CdcmEvaluationContext(cdcg, platform, cache_size=0), population
            )
            elapsed = time.perf_counter() - start
        return got, len(population) / elapsed

    def run():
        shm_got, shm_rate = _rate("shm")
        pickle_got, pickle_rate = _rate("pickle")
        return shm_got, shm_rate, pickle_got, pickle_rate

    shm_got, shm_rate, pickle_got, pickle_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Identity half, always asserted: both transports price bit-identically.
    assert shm_got == serial
    assert pickle_got == serial

    emit(
        "Mapping service - candidate pricing rate by pool transport "
        f"(16x16 mesh, 96 cores, {_N_WORKERS} workers)",
        f"{'transport':<10} {'candidates/s':>14}\n"
        f"{'shm':<10} {shm_rate:>14,.1f}\n"
        f"{'pickle':<10} {pickle_rate:>14,.1f}\n"
        f"ratio: {shm_rate / pickle_rate:.2f}x",
    )
    record_sample(
        "BENCH_service.json",
        {
            "bench": "bench_service",
            "half": "transport",
            "shm_candidates_per_s": shm_rate,
            "pickle_candidates_per_s": pickle_rate,
            "ratio": shm_rate / pickle_rate,
            "n_workers": _N_WORKERS,
        },
    )
