"""Benchmark: route-table builds and pricing throughput across topologies.

The pluggable-topology redesign must not tax the hot path: table-backed
routing on a mesh resolves the *same* routes as XY (pinned here and by
``tests/test_topology_api.py``), and pricing off a built table costs the
same O(1) lookups whatever the topology.  This bench pins that to numbers on
three 64-tile platforms:

* **mesh/xy** — the paper-style 8x8 mesh with dimension-ordered routing;
* **torus/table** — the 8x8 torus routed by BFS next-hop tables;
* **irregular/table** — an 8x8 mesh augmented with deterministic express
  links (an `IrregularTopology`), the fabric only table routing can serve.

For each platform it measures the eager route-table build time and the CWM
pricing rate (evaluations/second over the Table 1 ``8x8`` workload), and —
with ``REPRO_BENCH_RECORD=1`` — appends one sample per platform to
``BENCH_routing.json`` so the CI trajectory tracks the topology seam.

Deterministic: the candidate mappings are seeded with ``BENCH_SEED``.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.core.mapping import Mapping
from repro.eval.context import CwmEvaluationContext
from repro.eval.route_table import RouteTable, clear_route_table_cache
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.deadlock import validate_deadlock_free
from repro.noc.platform import Platform
from repro.noc.routing import TableRouting, XYRouting
from repro.noc.topology import IrregularTopology, Mesh, Torus
from repro.workloads.suite import suite_entry_by_name

#: Candidate mappings priced per platform for the evals/s figure.
NUM_CANDIDATES = 600


def _express_mesh_fabric(width: int, height: int) -> IrregularTopology:
    """A width x height mesh plus deterministic express links.

    Every third tile of a row gains a two-hop express link eastwards, and
    every third row gains one southwards — the kind of long-range link an
    irregular fabric adds to cut hub congestion, and exactly what the mesh
    spec cannot express.
    """
    mesh = Mesh(width, height)
    edges = [
        (index, neighbour)
        for index in mesh.tiles()
        for neighbour in mesh.neighbours(index)
    ]
    for y in range(height):
        for x in range(0, width - 2, 3):
            edges.append((mesh.index_of(x, y), mesh.index_of(x + 2, y)))
    for y in range(0, height - 2, 3):
        for x in range(width):
            edges.append((mesh.index_of(x, y), mesh.index_of(x, y + 2)))
    return IrregularTopology(edges, name=f"express{width}x{height}")


@pytest.mark.benchmark(group="routing-tables")
def test_route_table_builds_and_pricing_across_topologies(benchmark):
    entry = suite_entry_by_name("8x8")
    cwg = cdcg_to_cwg(entry.build())
    platforms = {
        "mesh/xy": Platform(mesh=Mesh(8, 8), routing=XYRouting()),
        "torus/table": Platform(mesh=Torus(8, 8), routing=TableRouting()),
        "irregular/table": Platform(
            mesh=_express_mesh_fabric(8, 8), routing=TableRouting()
        ),
    }

    # Identity gates first: the seam must not move mesh routes, and every
    # benched pair must pass the deadlock validator or be a known wrap case.
    mesh, xy, table = Mesh(8, 8), XYRouting(), TableRouting()
    for source in mesh.tiles():
        for target in mesh.tiles():
            assert table.route(mesh, source, target) == xy.route(
                mesh, source, target
            )
    assert validate_deadlock_free(mesh, xy)
    assert validate_deadlock_free(
        platforms["irregular/table"].mesh, table, raise_on_cycle=False
    ).num_channels > 0

    def run():
        results = {}
        for label, platform in platforms.items():
            clear_route_table_cache()
            start = time.perf_counter()
            table_obj = RouteTable.for_platform(platform, precompute=True)
            build_seconds = time.perf_counter() - start

            context = CwmEvaluationContext(
                cwg, platform, route_table=table_obj, cache_size=0
            )
            candidates = [
                Mapping.random(cwg.cores, platform.num_tiles, rng=BENCH_SEED + i)
                for i in range(NUM_CANDIDATES)
            ]
            start = time.perf_counter()
            costs = [context.cost(mapping) for mapping in candidates]
            price_seconds = time.perf_counter() - start
            results[label] = {
                "build_ms": build_seconds * 1e3,
                "evals_per_s": NUM_CANDIDATES / price_seconds,
                "mean_cost": sum(costs) / len(costs),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    clear_route_table_cache()

    emit(
        "Routing - table build + CWM pricing across topologies (64 tiles, 8x8 workload)",
        "\n".join(
            f"{label:<16} build {stats['build_ms']:>7.1f} ms   "
            f"{stats['evals_per_s']:>10,.0f} evals/s   "
            f"mean cost {stats['mean_cost']:,.0f} pJ"
            for label, stats in results.items()
        ),
    )
    record_sample(
        "BENCH_routing.json",
        {
            "bench": "routing_tables",
            "candidates": NUM_CANDIDATES,
            **{
                f"{label.replace('/', '_')}_{key}": stats[key]
                for label, stats in results.items()
                for key in ("build_ms", "evals_per_s")
            },
        },
    )

    # Acceptance bars: every topology builds eagerly and prices through the
    # same O(1) lookups — table-backed pricing must stay within 2x of the
    # mesh/xy rate (generous: shared-runner noise, identical inner loop).
    mesh_rate = results["mesh/xy"]["evals_per_s"]
    for label, stats in results.items():
        assert stats["evals_per_s"] > mesh_rate / 2.0, (label, stats)
