"""Throughput of the CWM array pricing kernel — scalar loop vs NumPy batch.

The vectorised kernel (:mod:`repro.eval.vector`) claims two things: (1) the
array path is *bit-identical* to the scalar per-candidate loop, so the
``vectorize`` gate never changes a result; (2) pricing a whole generation as
one ``(pop, cores)`` gather is at least an order of magnitude faster than the
scalar batch path, which is what makes population engines (GA / NSGA-II /
exhaustive chunks) cheap on the CWM model.  This bench pins both on an 8x8
mesh with a 48-core TGFF-like CWG at populations 256 and 4096:

* identity — every population is priced through both a ``vectorize=False``
  and a ``vectorize=True`` context (memo disabled so the kernel does all the
  work) and the metric vectors must compare exactly equal; the raw kernel
  output must equal the scalar costs too;
* throughput — three candidates/sec rates per population:

  - ``scalar``: the per-candidate batch path (``vectorize=False``);
  - ``context``: the vectorised context fed *Mapping objects* — it pays the
    per-candidate dict→row conversion, so it shows the gate's end-to-end win
    for today's engines;
  - ``array``: :meth:`~repro.eval.vector.VectorizedCwmKernel.price` on the
    population already in ``(pop, cores)`` array form — the hot path the
    kernel is built for, with no per-candidate Python objects.

The >= 10x acceptance bar compares the array path against the scalar batch
path at population 4096.  The identity assertions always run; the bar follows
the suite's perf-bar convention (cf. the >= 2x pool bar in
``bench_parallel.py``): rates are recorded first, then the bar can be waived
on constrained or instrumented interpreters by setting
``REPRO_BENCH_NO_PERF_BARS=1``.

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_vector.json`` in the working directory — the file the CI
benchmark-trajectory job uploads.
"""

import os
import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.core.mapping import Mapping
from repro.eval.context import CwmEvaluationContext
from repro.eval.vector import population_to_array
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.utils.rng import ensure_rng
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

POPULATIONS = (256, 4096)

#: Perf bars can be waived (rates are still printed and recorded) on
#: constrained runners — same spirit as the CPU gate in bench_parallel.
_SKIP_PERF_BARS = os.environ.get("REPRO_BENCH_NO_PERF_BARS", "0") not in (
    "0",
    "",
    "false",
)


def _workload():
    spec = TgffSpec(
        name="vector-8x8",
        num_cores=48,
        num_packets=120,
        total_bits=120 * 2_000,
    )
    cdcg = TgffLikeGenerator(BENCH_SEED).generate(spec)
    return cdcg_to_cwg(cdcg), Platform(mesh=Mesh(8, 8))


def _population(cwg, num_tiles, size, rng):
    return [Mapping.random(sorted(cwg.cores), num_tiles, rng) for _ in range(size)]


def _timed(fn, size):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return result, size / elapsed


@pytest.mark.benchmark(group="vector-throughput")
def test_cwm_array_kernel_throughput(benchmark):
    cwg, platform = _workload()
    order = sorted(cwg.cores)
    rng = ensure_rng(BENCH_SEED)
    populations = {
        size: _population(cwg, platform.num_tiles, size, rng) for size in POPULATIONS
    }

    def run():
        results = {}
        for size, population in populations.items():
            # cache_size=0 disables the memo so every candidate actually hits
            # the pricing path under measurement.
            scalar_ctx = CwmEvaluationContext(
                cwg, platform, cache_size=0, vectorize=False
            )
            vector_ctx = CwmEvaluationContext(
                cwg, platform, cache_size=0, vectorize=True
            )
            kernel = vector_ctx.vector_kernel()  # bind outside the timed region
            tiles = population_to_array(
                population, order, num_tiles=platform.num_tiles
            )

            scalar_metrics, scalar_rate = _timed(
                lambda: scalar_ctx.evaluate_metrics_batch(population), size
            )
            vector_metrics, context_rate = _timed(
                lambda: vector_ctx.evaluate_metrics_batch(population), size
            )
            costs, array_rate = _timed(lambda: kernel.price(tiles), size)

            # The gate's contract: bit-identical results, always.
            assert vector_metrics == scalar_metrics
            assert [float(cost) for cost in costs] == [
                metric["dynamic_energy"] for metric in scalar_metrics
            ]
            results[size] = (scalar_rate, context_rate, array_rate)
        return results

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'population':<12} {'scalar cand/s':>14} {'context cand/s':>15} "
        f"{'array cand/s':>14} {'speedup':>8}"
    ]
    for size, (scalar_rate, context_rate, array_rate) in rates.items():
        lines.append(
            f"{size:<12} {scalar_rate:>14,.0f} {context_rate:>15,.0f} "
            f"{array_rate:>14,.0f} {array_rate / scalar_rate:>7.1f}x"
        )
    emit(
        "Array pricing kernel - CWM candidates/sec, scalar batch path vs "
        "vectorised context vs raw (pop, cores) array (8x8 mesh, 48 cores)",
        "\n".join(lines),
    )

    scalar_rate, context_rate, array_rate = rates[4096]
    record_sample(
        "BENCH_vector.json",
        {
            "bench": "bench_vector",
            "pop_256_scalar_cand_per_s": rates[256][0],
            "pop_256_context_cand_per_s": rates[256][1],
            "pop_256_array_cand_per_s": rates[256][2],
            "pop_4096_scalar_cand_per_s": scalar_rate,
            "pop_4096_context_cand_per_s": context_rate,
            "pop_4096_array_cand_per_s": array_rate,
            "speedup_4096": array_rate / scalar_rate,
        },
    )
    if _SKIP_PERF_BARS:
        pytest.skip(
            "REPRO_BENCH_NO_PERF_BARS=1: >= 10x bar waived (identity checks "
            "above already ran)"
        )
    # The acceptance bar of the array kernel: >= 10x candidates/sec over the
    # scalar batch path for a pop-4096 generation in array form.
    assert array_rate >= 10.0 * scalar_rate
