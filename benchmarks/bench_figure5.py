"""Figure 5 — timing diagram of the contention-free mapping (Figure 1(d)).

Paper: no packets compete for the same link, the application finishes at
90 ns (an 11.1 % reduction over mapping (c)).
"""

import pytest

from conftest import emit
from repro.analysis.figures import figure5_diagram
from repro.core.cdcm import CdcmEvaluator
from repro.timing.gantt import build_timelines, summarize_timelines
from repro.workloads.paper_example import (
    paper_example_cdcg,
    paper_example_mappings,
    paper_example_platform,
)


@pytest.mark.benchmark(group="figure5")
def test_figure5_timing_diagram(benchmark):
    platform = paper_example_platform()
    cdcg = paper_example_cdcg()
    mapping = paper_example_mappings()["d"]
    evaluator = CdcmEvaluator(platform)

    def build():
        report = evaluator.evaluate(cdcg, mapping)
        return build_timelines(report.schedule, platform.parameters)

    timelines = benchmark(build)
    summary = summarize_timelines(timelines)
    assert summary["makespan"] == pytest.approx(90.0)
    assert summary["contention"] == pytest.approx(0.0)

    emit(
        "Figure 5 - timing diagram of mapping (d) (paper: texec = 90 ns, no contention)",
        figure5_diagram(width=96),
    )
